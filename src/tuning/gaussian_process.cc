#include "src/tuning/gaussian_process.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace bsched {

GaussianProcess::GaussianProcess(int dims, Hyper hyper) : dims_(dims), hyper_(hyper) {
  BSCHED_CHECK(dims_ >= 1);
  BSCHED_CHECK(hyper_.lengthscale > 0);
  BSCHED_CHECK(hyper_.signal_var > 0);
  BSCHED_CHECK(hyper_.noise_var >= 0);
}

void GaussianProcess::Add(const std::vector<double>& x, double y) {
  BSCHED_CHECK(static_cast<int>(x.size()) == dims_);
  xs_.push_back(x);
  ys_.push_back(y);
  fitted_ = false;
}

double GaussianProcess::best_y() const {
  BSCHED_CHECK(!ys_.empty());
  return *std::max_element(ys_.begin(), ys_.end());
}

double GaussianProcess::Kernel(const std::vector<double>& a, const std::vector<double>& b) const {
  double d2 = 0.0;
  for (int i = 0; i < dims_; ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  const double l2 = hyper_.lengthscale * hyper_.lengthscale;
  return hyper_.signal_var * std::exp(-0.5 * d2 / l2);
}

void GaussianProcess::Fit() const {
  const size_t n = xs_.size();
  // Standardize targets so the kernel hyperparameters are scale-free.
  y_mean_ = 0.0;
  for (double y : ys_) {
    y_mean_ += y;
  }
  y_mean_ /= static_cast<double>(n);
  double var = 0.0;
  for (double y : ys_) {
    var += (y - y_mean_) * (y - y_mean_);
  }
  y_scale_ = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 1.0;
  if (y_scale_ < 1e-12) {
    y_scale_ = 1.0;
  }

  // K + σ²I, then in-place Cholesky (row-major lower triangle).
  chol_.assign(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double k = Kernel(xs_[i], xs_[j]);
      if (i == j) {
        k += hyper_.noise_var + 1e-9;  // jitter for numerical stability
      }
      chol_[i * n + j] = k;
    }
  }
  for (size_t j = 0; j < n; ++j) {
    double diag = chol_[j * n + j];
    for (size_t k = 0; k < j; ++k) {
      diag -= chol_[j * n + k] * chol_[j * n + k];
    }
    BSCHED_CHECK(diag > 0);
    diag = std::sqrt(diag);
    chol_[j * n + j] = diag;
    for (size_t i = j + 1; i < n; ++i) {
      double v = chol_[i * n + j];
      for (size_t k = 0; k < j; ++k) {
        v -= chol_[i * n + k] * chol_[j * n + k];
      }
      chol_[i * n + j] = v / diag;
    }
  }

  // alpha = (K+σ²I)^-1 ỹ via two triangular solves.
  alpha_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double v = (ys_[i] - y_mean_) / y_scale_;
    for (size_t k = 0; k < i; ++k) {
      v -= chol_[i * n + k] * alpha_[k];
    }
    alpha_[i] = v / chol_[i * n + i];
  }
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double v = alpha_[i];
    for (size_t k = i + 1; k < n; ++k) {
      v -= chol_[k * n + i] * alpha_[k];
    }
    alpha_[i] = v / chol_[i * n + i];
  }
  fitted_ = true;
}

GaussianProcess::Prediction GaussianProcess::Predict(const std::vector<double>& x) const {
  BSCHED_CHECK(static_cast<int>(x.size()) == dims_);
  const size_t n = xs_.size();
  if (n == 0) {
    return Prediction{0.0, hyper_.signal_var};
  }
  if (!fitted_) {
    Fit();
  }
  std::vector<double> kstar(n);
  for (size_t i = 0; i < n; ++i) {
    kstar[i] = Kernel(xs_[i], x);
  }
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean += kstar[i] * alpha_[i];
  }
  // v = L^-1 k*, predictive variance = k** - v'v.
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    double s = kstar[i];
    for (size_t k = 0; k < i; ++k) {
      s -= chol_[i * n + k] * v[k];
    }
    v[i] = s / chol_[i * n + i];
  }
  double var = Kernel(x, x);
  for (size_t i = 0; i < n; ++i) {
    var -= v[i] * v[i];
  }
  var = std::max(var, 0.0);
  return Prediction{mean * y_scale_ + y_mean_, var * y_scale_ * y_scale_};
}

double NormalPdf(double z) { return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI); }

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double ExpectedImprovement(double mean, double variance, double best, double xi) {
  const double sigma = std::sqrt(std::max(variance, 0.0));
  if (sigma < 1e-12) {
    return std::max(mean - best - xi, 0.0);
  }
  const double z = (mean - best - xi) / sigma;
  return (mean - best - xi) * NormalCdf(z) + sigma * NormalPdf(z);
}

}  // namespace bsched
