// Gaussian-process regression with a squared-exponential kernel — the
// surrogate model behind the Bayesian-Optimization auto-tuner (§4.3). Inputs
// live in the unit hypercube; observations are internally standardized.
// Dense Cholesky solves are fine here: auto-tuning uses tens of samples.
#ifndef SRC_TUNING_GAUSSIAN_PROCESS_H_
#define SRC_TUNING_GAUSSIAN_PROCESS_H_

#include <cstddef>
#include <vector>

namespace bsched {

class GaussianProcess {
 public:
  struct Hyper {
    // SE kernel length scale (same for every dimension; inputs are in [0,1]).
    double lengthscale = 0.25;
    double signal_var = 1.0;
    // Observation noise variance, in standardized-y units. Training-speed
    // profiling is jittery, so this is deliberately non-negligible.
    double noise_var = 1e-2;
  };

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };

  explicit GaussianProcess(int dims) : GaussianProcess(dims, Hyper()) {}
  GaussianProcess(int dims, Hyper hyper);

  // Adds one observation y at x (x.size() == dims). Invalidates the fit.
  void Add(const std::vector<double>& x, double y);

  // Posterior at x, in the original (un-standardized) y units. With no
  // observations, returns the prior (mean 0, prior variance).
  Prediction Predict(const std::vector<double>& x) const;

  size_t num_samples() const { return xs_.size(); }
  double best_y() const;

 private:
  double Kernel(const std::vector<double>& a, const std::vector<double>& b) const;
  void Fit() const;

  int dims_;
  Hyper hyper_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;

  // Lazily (re)computed fit state.
  mutable bool fitted_ = false;
  mutable double y_mean_ = 0.0;
  mutable double y_scale_ = 1.0;
  mutable std::vector<double> chol_;   // lower-triangular Cholesky of K+σ²I
  mutable std::vector<double> alpha_;  // (K+σ²I)^-1 (y - mean)
};

// Standard normal pdf/cdf used by acquisition functions.
double NormalPdf(double z);
double NormalCdf(double z);

// Expected Improvement of a maximization problem at a point with posterior
// (mean, variance), given the best observed value and exploration weight xi.
double ExpectedImprovement(double mean, double variance, double best, double xi);

}  // namespace bsched

#endif  // SRC_TUNING_GAUSSIAN_PROCESS_H_
