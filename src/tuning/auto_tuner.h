// Auto-tuning of partition size δ and credit size c (§4.3, §5): runs short
// profiling jobs on the simulated cluster at candidate (δ, c) points and
// lets a search strategy (BO by default) pick the next candidate. As in the
// paper, the master Core tunes and broadcasts; PS jobs pay a checkpoint-
// restart cost whenever the partition size changes (re-sharding parameters),
// all-reduce jobs retune live.
#ifndef SRC_TUNING_AUTO_TUNER_H_
#define SRC_TUNING_AUTO_TUNER_H_

#include <vector>

#include "src/common/rng.h"
#include "src/runtime/training_job.h"
#include "src/tuning/search.h"

namespace bsched {

struct AutoTunerOptions {
  int max_trials = 10;
  // Log-scale search ranges for the two knobs.
  Bytes partition_lo = KiB(64);
  Bytes partition_hi = MiB(96);
  Bytes credit_lo = KiB(64);
  Bytes credit_hi = MiB(512);
  // Iterations of each profiling run.
  int profile_warmup = 1;
  int profile_iters = 3;
  // Relative measurement jitter applied to profiled speeds.
  double noise_frac = 0.01;
  uint64_t seed = 1;
  // Wall-clock charged per PS restart (checkpoint + reload), §5.
  double ps_restart_sec = 5.0;
  // Candidates suggested per search round (ParamSearch::SuggestBatch) and
  // profiled concurrently. 1 reproduces the strictly sequential tuner; any
  // value yields results independent of `jobs` (bit-identical sweeps).
  int batch_size = 1;
  // Worker threads for batch evaluation; 0 = SweepRunner default.
  int jobs = 0;
};

class AutoTuner {
 public:
  struct Trial {
    Bytes partition_bytes = 0;
    Bytes credit_bytes = 0;
    double speed = 0.0;
  };

  struct Result {
    TunedParams best{};
    double best_speed = 0.0;
    // Total virtual tuning cost: profiling time plus PS restart overhead.
    double tuning_cost_sec = 0.0;
    std::vector<Trial> trials;
  };

  // `base` describes the job to tune; its mode is forced to ByteScheduler.
  AutoTuner(JobConfig base, AutoTunerOptions options);

  // Runs `options.max_trials` suggestions from `search` (2-D: δ, c).
  Result Tune(ParamSearch& search);

  // Runs BO with the paper's defaults.
  Result TuneWithBo();

  // Profiles one configuration (with measurement jitter); exposed for the
  // figure benches and for search-cost experiments.
  double EvaluateObjective(Bytes partition, Bytes credit);

  // The deterministic part of the objective: profiled speed without jitter.
  // Const and shared-state-free, so batches evaluate concurrently.
  double EvaluateConfigured(Bytes partition, Bytes credit) const;

  // §7 extension "dynamic partition size": per-layer partition sizes.
  struct PerLayerResult {
    std::vector<Bytes> per_layer;
    double speed = 0.0;
    int extra_trials = 0;
  };

  // Profiles a per-layer configuration.
  double EvaluatePerLayer(const std::vector<Bytes>& per_layer, Bytes credit);

  // Greedy coordinate refinement around a tuned uniform configuration: for
  // each layer large enough to partition, tries {δ/2, δ, 2δ} and keeps the
  // best (repeated `rounds` times). Demonstrates the paper's observation
  // that per-layer sizes can win a little more at significant search cost.
  PerLayerResult TunePerLayer(const TunedParams& start, int rounds = 1);

  // Coordinate mapping between the unit cube and byte sizes (log scale).
  Bytes PartitionFromUnit(double u) const;
  Bytes CreditFromUnit(double u) const;

 private:
  JobConfig base_;
  AutoTunerOptions options_;
  Rng rng_;
};

}  // namespace bsched

#endif  // SRC_TUNING_AUTO_TUNER_H_
