#include "src/tuning/auto_tuner.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/exec/sweep_runner.h"

namespace bsched {
namespace {

Bytes LogScale(double u, Bytes lo, Bytes hi) {
  const double lg = std::log(static_cast<double>(lo));
  const double hg = std::log(static_cast<double>(hi));
  return static_cast<Bytes>(std::llround(std::exp(lg + (hg - lg) * std::clamp(u, 0.0, 1.0))));
}

}  // namespace

AutoTuner::AutoTuner(JobConfig base, AutoTunerOptions options)
    : base_(std::move(base)), options_(options), rng_(options.seed) {
  BSCHED_CHECK(options_.partition_lo > 0);
  BSCHED_CHECK(options_.partition_hi >= options_.partition_lo);
  BSCHED_CHECK(options_.credit_hi >= options_.credit_lo);
  base_.mode = SchedMode::kByteScheduler;
  base_.warmup_iters = options_.profile_warmup;
  base_.measure_iters = options_.profile_iters;
}

Bytes AutoTuner::PartitionFromUnit(double u) const {
  return LogScale(u, options_.partition_lo, options_.partition_hi);
}

Bytes AutoTuner::CreditFromUnit(double u) const {
  return LogScale(u, options_.credit_lo, options_.credit_hi);
}

double AutoTuner::EvaluateConfigured(Bytes partition, Bytes credit) const {
  JobConfig job = base_;
  job.partition_bytes = partition;
  // A credit below one partition degenerates to stop-and-wait with a cap;
  // keep it meaningful by flooring at the partition size.
  job.credit_bytes = std::max(credit, partition);
  return RunTrainingJob(job).samples_per_sec;
}

double AutoTuner::EvaluateObjective(Bytes partition, Bytes credit) {
  // Profiled speeds carry run-to-run jitter; the tuner must cope with it.
  return EvaluateConfigured(partition, credit) *
         (1.0 + options_.noise_frac * rng_.NextGaussian());
}

AutoTuner::Result AutoTuner::Tune(ParamSearch& search) {
  BSCHED_CHECK(search.dims() == 2);
  Result result;
  Bytes last_partition = -1;
  SweepRunner runner(options_.jobs);
  const int batch = std::max(1, options_.batch_size);
  for (int done = 0; done < options_.max_trials;) {
    const int k = std::min(batch, options_.max_trials - done);
    const std::vector<std::vector<double>> xs = search.SuggestBatch(k);
    BSCHED_CHECK(static_cast<int>(xs.size()) == k);
    std::vector<Trial> trials(k);
    for (int i = 0; i < k; ++i) {
      trials[i].partition_bytes = PartitionFromUnit(xs[i][0]);
      trials[i].credit_bytes = CreditFromUnit(xs[i][1]);
    }
    // Draw the measurement jitter in suggestion order before dispatching:
    // the profiling runs are deterministic, so the observed speeds — and
    // everything downstream — are bit-identical at any worker count.
    std::vector<double> jitter(k);
    for (int i = 0; i < k; ++i) {
      jitter[i] = 1.0 + options_.noise_frac * rng_.NextGaussian();
    }
    const std::vector<double> speeds = runner.ParallelFor(
        static_cast<size_t>(k), [this, &trials](size_t i) {
          return EvaluateConfigured(trials[i].partition_bytes, trials[i].credit_bytes);
        });

    for (int i = 0; i < k; ++i) {
      Trial& t = trials[i];
      t.speed = speeds[i] * jitter[i];
      search.Observe(xs[i], t.speed);

      // Tuning cost: the profiling time itself, plus a checkpoint/restart for
      // PS jobs whenever the partition size changes (§5 "Auto-tuning
      // support"). Batched trials still pay per-config restarts: the profiled
      // cluster applies each configuration in sequence.
      const double profile_sec = options_.profile_iters *
                                 (t.speed > 0 ? base_.total_gpus() * base_.model.batch_per_gpu /
                                                    t.speed
                                              : 0.0);
      result.tuning_cost_sec += profile_sec;
      if (base_.setup.arch == ArchType::kPs && t.partition_bytes != last_partition &&
          last_partition >= 0) {
        result.tuning_cost_sec += options_.ps_restart_sec;
      }
      last_partition = t.partition_bytes;

      if (t.speed > result.best_speed) {
        result.best_speed = t.speed;
        result.best = TunedParams{t.partition_bytes, std::max(t.credit_bytes, t.partition_bytes)};
      }
      result.trials.push_back(t);
    }
    done += k;
  }
  return result;
}

AutoTuner::Result AutoTuner::TuneWithBo() {
  BayesianOptimizer bo(2, options_.seed);
  return Tune(bo);
}

double AutoTuner::EvaluatePerLayer(const std::vector<Bytes>& per_layer, Bytes credit) {
  JobConfig job = base_;
  job.per_layer_partition = per_layer;
  // The uniform size is still needed for any layer with a zero entry.
  job.partition_bytes = MiB(4);
  job.credit_bytes = credit;
  const JobResult result = RunTrainingJob(job);
  return result.samples_per_sec * (1.0 + options_.noise_frac * rng_.NextGaussian());
}

AutoTuner::PerLayerResult AutoTuner::TunePerLayer(const TunedParams& start, int rounds) {
  BSCHED_CHECK(start.partition_bytes > 0);
  PerLayerResult result;
  result.per_layer.assign(base_.model.layers.size(), start.partition_bytes);
  result.speed = EvaluatePerLayer(result.per_layer, start.credit_bytes);
  ++result.extra_trials;
  for (int round = 0; round < rounds; ++round) {
    for (size_t layer = 0; layer < result.per_layer.size(); ++layer) {
      // Only layers that actually get partitioned have a knob worth turning.
      if (base_.model.layers[layer].param_bytes <= start.partition_bytes) {
        continue;
      }
      const Bytes current = result.per_layer[layer];
      for (const Bytes candidate : {current / 2, current * 2}) {
        if (candidate < options_.partition_lo || candidate > options_.partition_hi) {
          continue;
        }
        std::vector<Bytes> trial = result.per_layer;
        trial[layer] = candidate;
        const double speed = EvaluatePerLayer(trial, start.credit_bytes);
        ++result.extra_trials;
        if (speed > result.speed) {
          result.speed = speed;
          result.per_layer = std::move(trial);
        }
      }
    }
  }
  return result;
}

}  // namespace bsched
