#include "src/tuning/search.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace bsched {
namespace {

double Clip01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

// ---- BayesianOptimizer ------------------------------------------------------

BayesianOptimizer::BayesianOptimizer(int dims, uint64_t seed, Options options)
    : dims_(dims), options_(options), rng_(seed), gp_(dims, options.gp) {
  BSCHED_CHECK(options_.init_samples >= 1);
  BSCHED_CHECK(options_.candidates >= 1);
}

std::vector<double> BayesianOptimizer::Suggest() {
  std::vector<double> x(dims_);
  if (gp_.num_samples() < static_cast<size_t>(options_.init_samples)) {
    for (double& v : x) {
      v = rng_.NextDouble();
    }
    return x;
  }
  // Maximize Expected Improvement over random candidates.
  const double best = gp_.best_y();
  double best_ei = -1.0;
  std::vector<double> cand(dims_);
  for (int c = 0; c < options_.candidates; ++c) {
    for (double& v : cand) {
      v = rng_.NextDouble();
    }
    const GaussianProcess::Prediction p = gp_.Predict(cand);
    // xi is relative to the objective scale; use |best| as the scale anchor.
    const double xi = options_.xi * std::abs(best);
    const double ei = ExpectedImprovement(p.mean, p.variance, best, xi);
    if (ei > best_ei) {
      best_ei = ei;
      x = cand;
    }
  }
  return x;
}

void BayesianOptimizer::Observe(const std::vector<double>& x, double y) { gp_.Add(x, y); }

// ---- RandomSearch -----------------------------------------------------------

RandomSearch::RandomSearch(int dims, uint64_t seed) : dims_(dims), rng_(seed) {}

std::vector<double> RandomSearch::Suggest() {
  std::vector<double> x(dims_);
  for (double& v : x) {
    v = rng_.NextDouble();
  }
  return x;
}

// ---- GridSearch -------------------------------------------------------------

GridSearch::GridSearch(int dims, int points_per_dim)
    : dims_(dims), points_per_dim_(points_per_dim) {
  BSCHED_CHECK(points_per_dim_ >= 2);
}

int GridSearch::total_points() const {
  int64_t total = 1;
  for (int d = 0; d < dims_; ++d) {
    total *= points_per_dim_;
  }
  return static_cast<int>(total);
}

std::vector<double> GridSearch::Suggest() {
  int64_t idx = next_++ % total_points();
  std::vector<double> x(dims_);
  for (int d = 0; d < dims_; ++d) {
    const int i = static_cast<int>(idx % points_per_dim_);
    idx /= points_per_dim_;
    x[d] = static_cast<double>(i) / (points_per_dim_ - 1);
  }
  return x;
}

// ---- SgdMomentumSearch ------------------------------------------------------

SgdMomentumSearch::SgdMomentumSearch(int dims, uint64_t seed, Options options)
    : dims_(dims), options_(options), rng_(seed) {
  Restart();
}

void SgdMomentumSearch::Restart() {
  current_.assign(dims_, 0.0);
  for (double& v : current_) {
    v = rng_.NextDouble();
  }
  velocity_.assign(dims_, 0.0);
  gradient_.assign(dims_, 0.0);
  have_current_ = false;
  probe_dim_ = 0;
  stalls_ = 0;
}

std::vector<double> SgdMomentumSearch::Suggest() {
  if (!have_current_) {
    return current_;
  }
  if (probe_dim_ < dims_) {
    // Forward-difference probe along one axis (flipped near the boundary).
    std::vector<double> probe = current_;
    const double delta =
        (current_[probe_dim_] + options_.probe_delta <= 1.0) ? options_.probe_delta
                                                             : -options_.probe_delta;
    probe[probe_dim_] = Clip01(current_[probe_dim_] + delta);
    return probe;
  }
  // All probes collected: momentum step along the normalized gradient.
  double norm = 0.0;
  for (double g : gradient_) {
    norm += g * g;
  }
  norm = std::sqrt(norm);
  std::vector<double> next(dims_);
  for (int d = 0; d < dims_; ++d) {
    const double dir = norm > 1e-12 ? gradient_[d] / norm : 0.0;
    velocity_[d] = options_.momentum * velocity_[d] + options_.step * dir;
    next[d] = Clip01(current_[d] + velocity_[d]);
  }
  return next;
}

void SgdMomentumSearch::Observe(const std::vector<double>& x, double y) {
  best_seen_ = std::max(best_seen_, y);
  if (!have_current_) {
    current_ = x;
    current_y_ = y;
    have_current_ = true;
    probe_dim_ = 0;
    gradient_.assign(dims_, 0.0);
    return;
  }
  if (probe_dim_ < dims_) {
    const double delta = x[probe_dim_] - current_[probe_dim_];
    gradient_[probe_dim_] = std::abs(delta) > 1e-12 ? (y - current_y_) / delta : 0.0;
    ++probe_dim_;
    return;
  }
  // Step result: accept unconditionally (plain SGD), track stalls, and
  // restart from a random point when stuck in a local optimum.
  if (y <= current_y_) {
    ++stalls_;
  } else {
    stalls_ = 0;
  }
  current_ = x;
  current_y_ = y;
  probe_dim_ = 0;
  gradient_.assign(dims_, 0.0);
  if (stalls_ >= options_.stall_restart) {
    Restart();
  }
}

}  // namespace bsched
