// Search strategies for the (partition, credit) knobs: the paper's Bayesian
// Optimization tuner plus the three classic baselines it is compared against
// in §6.3 / Figure 14 (grid search, random search, SGD with momentum). All
// strategies operate on the unit hypercube; the AutoTuner maps coordinates to
// byte sizes on a log scale.
#ifndef SRC_TUNING_SEARCH_H_
#define SRC_TUNING_SEARCH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tuning/gaussian_process.h"

namespace bsched {

class ParamSearch {
 public:
  virtual ~ParamSearch() = default;

  // Proposes the next point to evaluate, in [0,1]^dims.
  virtual std::vector<double> Suggest() = 0;

  // Proposes `k` points at once, without observations in between, so the
  // batch can be evaluated concurrently (AutoSched-style batched tuning).
  // The default draws Suggest() k times; model-based strategies thus pick
  // the batch from one posterior snapshot. k == 1 is exactly Suggest().
  virtual std::vector<std::vector<double>> SuggestBatch(int k) {
    std::vector<std::vector<double>> xs;
    xs.reserve(k);
    for (int i = 0; i < k; ++i) {
      xs.push_back(Suggest());
    }
    return xs;
  }

  // Feeds back the objective value (higher is better) at a suggested point.
  virtual void Observe(const std::vector<double>& x, double y) = 0;

  virtual const std::string& name() const = 0;
  virtual int dims() const = 0;
};

// Bayesian Optimization: GP surrogate + Expected Improvement, maximized over
// random candidate points. The first `init_samples` suggestions are
// space-filling random draws.
class BayesianOptimizer : public ParamSearch {
 public:
  struct Options {
    int init_samples = 3;
    int candidates = 512;
    // EI exploration weight; the paper uses the common default 0.1.
    double xi = 0.1;
    GaussianProcess::Hyper gp;
  };

  BayesianOptimizer(int dims, uint64_t seed) : BayesianOptimizer(dims, seed, Options()) {}
  BayesianOptimizer(int dims, uint64_t seed, Options options);

  std::vector<double> Suggest() override;
  void Observe(const std::vector<double>& x, double y) override;
  const std::string& name() const override { return name_; }
  int dims() const override { return dims_; }

  // Posterior access (used by the Figure 9 bench to plot the GP belief).
  const GaussianProcess& gp() const { return gp_; }

 private:
  int dims_;
  Options options_;
  Rng rng_;
  GaussianProcess gp_;
  std::string name_ = "bayesian";
};

class RandomSearch : public ParamSearch {
 public:
  RandomSearch(int dims, uint64_t seed);
  std::vector<double> Suggest() override;
  void Observe(const std::vector<double>& /*x*/, double /*y*/) override {}
  const std::string& name() const override { return name_; }
  int dims() const override { return dims_; }

 private:
  int dims_;
  Rng rng_;
  std::string name_ = "random";
};

// Sweeps a regular lattice with `points_per_dim` points per dimension, in
// row-major order; wraps around if asked for more points.
class GridSearch : public ParamSearch {
 public:
  GridSearch(int dims, int points_per_dim);
  std::vector<double> Suggest() override;
  void Observe(const std::vector<double>& /*x*/, double /*y*/) override {}
  const std::string& name() const override { return name_; }
  int dims() const override { return dims_; }
  int total_points() const;

 private:
  int dims_;
  int points_per_dim_;
  int64_t next_ = 0;
  std::string name_ = "grid";
};

// Hill climbing with momentum on a noisy objective: estimates the gradient by
// forward differences (one extra probe per dimension, interleaved with the
// momentum steps) and restarts from a random point when progress stalls —
// the §6.3 "SGD with momentum" baseline.
class SgdMomentumSearch : public ParamSearch {
 public:
  struct Options {
    double step = 0.15;
    double momentum = 0.9;
    double probe_delta = 0.08;
    int stall_restart = 4;  // restarts after this many non-improving steps
  };

  SgdMomentumSearch(int dims, uint64_t seed) : SgdMomentumSearch(dims, seed, Options()) {}
  SgdMomentumSearch(int dims, uint64_t seed, Options options);
  std::vector<double> Suggest() override;
  void Observe(const std::vector<double>& x, double y) override;
  const std::string& name() const override { return name_; }
  int dims() const override { return dims_; }

 private:
  void Restart();

  int dims_;
  Options options_;
  Rng rng_;
  std::string name_ = "sgd-momentum";

  std::vector<double> current_;
  std::vector<double> velocity_;
  double current_y_ = 0.0;
  bool have_current_ = false;
  int probe_dim_ = 0;              // which dimension the pending probe tests
  std::vector<double> gradient_;   // finite-difference estimate being built
  int stalls_ = 0;
  double best_seen_ = 0.0;
};

}  // namespace bsched

#endif  // SRC_TUNING_SEARCH_H_
