// Parameter-server backend (ps-lite-style). Workers push gradient partitions
// to shards and pull updated parameters back over full-duplex links; shards
// aggregate across workers and run the update. Tensor-to-shard assignment is
// round-robin by (layer + partition index): with unpartitioned tensors this
// reproduces the vanilla frameworks' per-tensor round-robin (and its severe
// load imbalance on skewed models, §6.2 "PS load balancing"); partitioned
// tensors stripe across all shards.
//
// Transmission path (store-and-forward at partition granularity):
//   push:  worker uplink (pays sender overhead) -> transport latency ->
//          shard ingress (serialization only) -> aggregation + update
//   pull:  request latency -> [wait until aggregated] -> shard egress (pays
//          sender overhead + latency) -> worker downlink (serialization only)
// Push completion for the scheduler is the *sender-side* flush plus a
// completion latency, as in ps-lite's engine callbacks. A stop-and-wait
// scheduler (P3) pays that per-partition gap serially and cannot fill the
// pipe; the credit mechanism (§4.2) keeps multiple partitions in flight.
//
// Fault tolerance: because a push reports success to the scheduler at sender
// flush, a gradient lost *after* the flush is invisible to the Core — so the
// backend itself guarantees worker->shard delivery. With fault injection
// enabled, every push data leg arms an ack timer keyed by (tensor, partition,
// worker); if the shard has not seen the copy when it fires, the leg is
// retransmitted with exponential backoff and bounded retries. Shards dedupe
// arrivals per worker within an aggregation round, so a retransmit racing a
// merely-delayed original cannot inflate the arrival count. (A stale copy
// surviving into the next round can make that worker's arrival count early —
// a semantic staleness real async PS systems also accept — but never lose or
// double-aggregate a round.) Control messages are assumed reliable.
#ifndef SRC_COMM_PS_BACKEND_H_
#define SRC_COMM_PS_BACKEND_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/comm/backend.h"
#include "src/fault/fault_injector.h"
#include "src/net/link.h"
#include "src/net/net_dynamics.h"
#include "src/net/rate_controller.h"
#include "src/net/transport.h"
#include "src/sim/resource.h"
#include "src/sim/shard_coordinator.h"
#include "src/sim/simulator.h"

namespace bsched {

struct PsConfig {
  int num_workers = 1;
  int num_shards = 1;
  Bandwidth link_rate = Bandwidth::Gbps(100);
  TransportModel transport = TransportModel::Tcp();
  // Synchronous training: a partition becomes pullable once all workers'
  // copies arrived and the update ran. Asynchronous: pulls wait only for the
  // first update of their slot.
  bool synchronous = true;
  // Shard-side gradient update rate (summing + applying the optimizer).
  double update_bytes_per_sec = 20e9;
  // Fixed shard CPU cost per partition update (key lookup, op dispatch);
  // part of the per-partition overhead θ that penalizes tiny partitions.
  SimTime update_fixed_overhead = SimTime::Micros(25);
  // Latency of sender-side completion callbacks and pull-request control
  // messages.
  SimTime control_latency = SimTime::Micros(20);

  // Fault injection (null disables it and all recovery machinery; the
  // fault-free event sequence is then byte-identical to a faultless build).
  FaultInjector* faults = nullptr;
  // Observability (null disables): link metrics plus trace spans/flow steps
  // on net/worker* and ps/shard* tracks. Instrumentation is passive — it
  // never schedules events, so the event sequence is unchanged.
  ObsContext* obs = nullptr;
  // Push data-leg ack timeout; retransmits back off by retry_backoff^attempt
  // up to max_push_retries. Only armed when `faults` is set.
  SimTime push_ack_timeout = SimTime::Millis(25);
  double retry_backoff = 2.0;
  int max_push_retries = 12;

  // Dynamic-network fabric (null disables; the legacy fixed-rate link path is
  // then byte-identical to a build without dynamics). When enabled, every
  // link gets a deterministic RateModel keyed on (seed, link name), worker
  // uplinks optionally get AIMD rate controllers fed by the push ack timers,
  // and cross-rack transfers under the two-tier topology are paced at
  // line_rate / oversubscription. All decisions run on the owning entity's
  // simulator, so sharded runs stay bit-identical at any shard count.
  const NetDynamicsConfig* dynamics = nullptr;

  // Sharded parallel-DES mode. When set, each worker's entities (uplink,
  // downlink, ack timers) live on coordinator shard (worker % shards) and
  // each PS shard's entities (ingress, egress, CPU, slot state) on shard
  // (ps_shard % shards); every hop between a worker and a PS shard crosses
  // via ShardCoordinator::Post with a fixed merge order, so results are
  // bit-identical at any shard count. Requires coord->lookahead() <=
  // min(control_latency, transport.latency) and a trace-free ObsContext
  // (metric counters are commutative sums; flow traces are not). The serial
  // path (coord == nullptr) is byte-for-byte the legacy event sequence.
  ShardCoordinator* coord = nullptr;
};

class PsBackend : public CommBackend {
 public:
  // `sim` hosts every entity in serial mode; it must be null when
  // config.coord is set (entities then live on the coordinator's shards).
  PsBackend(Simulator* sim, const PsConfig& config);

  void Start(const SubCommTask& subtask, std::function<void()> on_finish) override;

  // Clears per-partition aggregation state; call between independent jobs.
  void ResetAggregationState();

  // Human-readable aggregation/pending state for diagnostics.
  std::string DebugString() const;

  // Synchronous mode: invoked once per worker whenever a (tensor, partition)
  // finishes aggregation (all workers' gradients arrived and the update ran).
  // Plugins use this server-side notification to make pull partitions ready —
  // a pull scheduled before its data exists would otherwise park inside the
  // stack while holding sender credit, which can deadlock credit-limited
  // schedulers across workers (each waiting for another's queued push).
  // Multiple listeners are supported (co-scheduled jobs sharing the backend).
  // The worker-indexed signature is what lets sharded mode deliver each
  // worker's notification on that worker's own shard; serial mode invokes
  // workers 0..N-1 synchronously at aggregation time, as before.
  void AddAggregationListener(
      std::function<void(int64_t tensor_id, int partition, int worker)> fn) {
    listeners_.push_back(std::move(fn));
  }

  const PsConfig& config() const { return config_; }

  // Load-balance introspection.
  Bytes shard_bytes_in(int shard) const;
  Bytes shard_bytes_out(int shard) const;
  // Max-over-mean shard egress load; 1.0 == perfectly balanced.
  double ShardLoadImbalance() const;

  Link& worker_uplink(int worker) { return *uplinks_[worker]; }
  Link& worker_downlink(int worker) { return *downlinks_[worker]; }

  // Retransmissions attempted for lost push data legs (0 without faults);
  // summed over workers, so the total is shard-count-invariant.
  uint64_t push_retransmits() const {
    uint64_t total = 0;
    for (uint64_t r : push_retransmits_) total += r;
    return total;
  }

  // AIMD rate-control activity (0 without dynamics); commutative sums over
  // workers/links, so totals are shard-count-invariant.
  uint64_t rate_ctrl_decreases() const {
    uint64_t total = 0;
    for (const auto& c : rate_ctrl_) total += c->decreases();
    return total;
  }
  uint64_t rate_ctrl_increases() const {
    uint64_t total = 0;
    for (const auto& c : rate_ctrl_) total += c->increases();
    return total;
  }
  // In-flight transfers re-paced by controller rate changes, over all links.
  uint64_t link_repaces() const;

  // Stale retransmitted push copies dropped at the shard because their round
  // was already counted (both the original and the retransmit arrived).
  // Summed over shards, so the total is shard-count-invariant.
  uint64_t stale_push_drops() const {
    uint64_t total = 0;
    for (uint64_t d : stale_push_drops_) total += d;
    return total;
  }

  // Exports end-of-run metrics (per-link busy time, per-shard bytes/CPU
  // time, retransmit count) into the obs registry. No-op without obs.
  void ExportMetrics();

 private:
  // A pull admitted before its slot aggregated; replayed on aggregation.
  // Carries the full subtask so the replayed delivery keeps its flow id.
  struct PendingPull {
    SubCommTask subtask;
    std::function<void()> on_finish;
  };

  // Aggregation state for one (layer, partition) slot on its shard.
  struct SlotState {
    // Workers whose gradient copy arrived this aggregation round; a set (not
    // a count) so retransmitted duplicates cannot inflate the round.
    std::set<int> arrived;
    bool aggregated = false;
    // Highest push round accepted per worker. Every data leg carries its
    // sender-side round number; a copy at or below the accepted round is a
    // stale duplicate — its retransmit timer fired while the original was
    // merely slow (a long outage or a heavily derated volatile link), both
    // copies arrived, and counting the second would pollute the *next*
    // aggregation round for this slot.
    std::map<int, uint64_t> accepted_round;
    // Pull deliveries admitted before aggregation completed.
    std::vector<PendingPull> pending_pulls;
  };

  using AckKey = std::pair<int64_t, int>;  // (tensor, partition); maps are per worker

  bool Tracing() const;
  bool Sharded() const { return config_.coord != nullptr; }
  // Simulated clock of the entity (worker NIC stack / shard CPU) hosting the
  // current callback; in serial mode both are the single shared Simulator.
  Simulator* WorkerSim(int worker) const { return worker_sims_[worker]; }
  Simulator* ShardSim(int shard) const { return shard_sims_[shard]; }
  // Cross-shard channel ids: one ordered stream per (message kind, source
  // entity, destination entity). Stable across shard counts by construction.
  static uint64_t Chan(uint64_t kind, int a, int b) {
    return (kind << 32) | (static_cast<uint64_t>(a) << 16) | static_cast<uint64_t>(b);
  }
  void RecordUpdateSpan(int shard, int64_t tensor, int partition, uint64_t flow,
                        SimTime update_time);
  int ShardFor(int64_t tensor_id, int partition) const;
  void HandlePush(const SubCommTask& subtask, std::function<void()> on_finish);
  void HandlePull(const SubCommTask& subtask, std::function<void()> on_finish);
  void OnPushArrived(const SubCommTask& subtask, int shard, uint64_t round);
  // `bytes` is the delivered payload size: the pull's own size on the direct
  // path, the aggregating push's size when replayed from pending_pulls.
  void DeliverPull(int shard, const SubCommTask& subtask, Bytes bytes,
                   std::function<void()> on_finish);
  void SendPushData(const SubCommTask& subtask, int shard, uint64_t round);
  void ArmPushAckTimer(const SubCommTask& subtask, int shard, int attempt, uint64_t round);
  // Pacing multiplier for one worker<->shard transfer (1.0 without the
  // two-tier topology; 1/oversubscription across racks). Applied on the
  // sender-side link, where the per-message overhead is paid.
  double MsgScale(int worker, int shard) const;
  SimTime ScaledUpdateTime(int shard, Bytes bytes) const;
  // Runs `fn` on the destination entity `delay` after the caller's now.
  // Serial: schedule on sim_ (delay 0 runs inline, matching the link wrapper
  // in Link::SendWithFlush). Sharded: ShardCoordinator::Post on `channel`
  // from coordinator shard `src` to `dst`.
  void Forward(int src, int dst, uint64_t channel, SimTime delay, EventFn fn);

  Simulator* sim_;  // null in sharded mode
  PsConfig config_;
  // Entity-to-simulator mapping (all point at sim_ in serial mode).
  std::vector<Simulator*> worker_sims_;
  std::vector<Simulator*> shard_sims_;
  std::vector<int> worker_cshard_;  // coordinator shard index per worker
  std::vector<int> shard_cshard_;   // coordinator shard index per PS shard
  // Sender-side links pay the per-message overhead θ; receiver-side links
  // model serialization into the receiving NIC only.
  std::vector<std::unique_ptr<Link>> uplinks_;     // worker -> network
  std::vector<std::unique_ptr<Link>> downlinks_;   // network -> worker
  std::vector<std::unique_ptr<Link>> ingresses_;   // network -> shard
  std::vector<std::unique_ptr<Link>> egresses_;    // shard -> network
  std::vector<std::unique_ptr<Resource>> shard_cpus_;
  // Aggregation state, partitioned by owning PS shard (only that shard's
  // simulator touches its map, which is what makes sharded mode race-free).
  std::vector<std::map<std::pair<int64_t, int>, SlotState>> slots_;
  std::vector<std::function<void(int64_t tensor_id, int partition, int worker)>> listeners_;
  // Un-acked push data legs awaiting shard arrival (faults enabled only);
  // partitioned by worker, whose simulator owns the timers.
  std::vector<std::map<AckKey, EventHandle>> pending_acks_;
  std::vector<uint64_t> push_retransmits_;  // per worker
  // Sender-side push round per (tensor, partition): (last push task id,
  // round). A new task id is a new aggregation round; a repeated id is a
  // Core-level retry of the same push, which re-enters HandlePush but must
  // keep its original round so the shard can recognise duplicate copies.
  // The round rides the data leg and all its retransmits and is checked
  // against SlotState::accepted_round at the shard. Partitioned by worker.
  std::vector<std::map<AckKey, std::pair<CommTaskId, uint64_t>>> push_rounds_;
  std::vector<uint64_t> stale_push_drops_;  // per shard
  // Per-worker AIMD controllers on the uplinks (empty unless dynamics with
  // aimd.enable); each runs on its worker's simulator.
  std::vector<std::unique_ptr<RateController>> rate_ctrl_;
};

}  // namespace bsched

#endif  // SRC_COMM_PS_BACKEND_H_
