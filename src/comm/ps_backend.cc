#include "src/comm/ps_backend.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/obs/obs.h"

namespace bsched {
namespace {

std::string PartName(int64_t tensor, int partition) {
  return "t" + std::to_string(tensor) + ".p" + std::to_string(partition);
}

// Cross-shard channel kinds (see Chan()). One ordered stream per
// (kind, source entity, destination entity).
constexpr uint64_t kChanPushData = 1;   // worker uplink -> shard ingress
constexpr uint64_t kChanAckCancel = 2;  // shard -> worker (push acknowledged)
constexpr uint64_t kChanPullReq = 3;    // worker -> shard (pull request)
constexpr uint64_t kChanPullData = 4;   // shard egress -> worker downlink
constexpr uint64_t kChanAggNotify = 5;  // shard -> worker (aggregation listener)

}  // namespace

PsBackend::PsBackend(Simulator* sim, const PsConfig& config) : sim_(sim), config_(config) {
  BSCHED_CHECK(config_.num_workers > 0);
  BSCHED_CHECK(config_.num_shards > 0);
  if (Sharded()) {
    // Sharded mode: entities live on the coordinator's per-shard simulators;
    // a separate serial Simulator would be a second, disconnected clock.
    BSCHED_CHECK(sim_ == nullptr);
    // Every cross-entity hop must satisfy the conservative lookahead bound.
    BSCHED_CHECK(config_.coord->lookahead() <= config_.control_latency);
    BSCHED_CHECK(config_.coord->lookahead() <= config_.transport.latency);
    // Flow traces record global interleavings; only commutative metric
    // counters are shard-count-invariant.
    BSCHED_CHECK(config_.obs == nullptr || !config_.obs->tracing());
    const int k = config_.coord->shards();
    for (int w = 0; w < config_.num_workers; ++w) {
      worker_cshard_.push_back(w % k);
      worker_sims_.push_back(config_.coord->shard(w % k));
    }
    for (int s = 0; s < config_.num_shards; ++s) {
      shard_cshard_.push_back(s % k);
      shard_sims_.push_back(config_.coord->shard(s % k));
    }
  } else {
    BSCHED_CHECK(sim_ != nullptr);
    worker_sims_.assign(config_.num_workers, sim_);
    shard_sims_.assign(config_.num_shards, sim_);
    worker_cshard_.assign(config_.num_workers, 0);
    shard_cshard_.assign(config_.num_shards, 0);
  }
  TransportModel receiver = config_.transport;
  receiver.serial_overhead = SimTime();
  receiver.latency = SimTime();
  for (int w = 0; w < config_.num_workers; ++w) {
    const std::string name = "worker" + std::to_string(w);
    uplinks_.push_back(std::make_unique<Link>(WorkerSim(w), name + ".up", config_.link_rate,
                                              config_.transport));
    downlinks_.push_back(
        std::make_unique<Link>(WorkerSim(w), name + ".down", config_.link_rate, receiver));
  }
  for (int s = 0; s < config_.num_shards; ++s) {
    const std::string name = "shard" + std::to_string(s);
    ingresses_.push_back(
        std::make_unique<Link>(ShardSim(s), name + ".in", config_.link_rate, receiver));
    egresses_.push_back(std::make_unique<Link>(ShardSim(s), name + ".out", config_.link_rate,
                                               config_.transport));
    shard_cpus_.push_back(std::make_unique<Resource>(ShardSim(s), name + ".cpu"));
  }
  slots_.resize(static_cast<size_t>(config_.num_shards));
  pending_acks_.resize(static_cast<size_t>(config_.num_workers));
  push_retransmits_.assign(static_cast<size_t>(config_.num_workers), 0);
  push_rounds_.resize(static_cast<size_t>(config_.num_workers));
  stale_push_drops_.assign(static_cast<size_t>(config_.num_shards), 0);
  if (config_.faults != nullptr) {
    BSCHED_CHECK(config_.retry_backoff >= 1.0);
    BSCHED_CHECK(config_.max_push_retries >= 0);
    for (auto& link : uplinks_) link->SetFaultInjector(config_.faults);
    for (auto& link : downlinks_) link->SetFaultInjector(config_.faults);
    for (auto& link : ingresses_) link->SetFaultInjector(config_.faults);
    for (auto& link : egresses_) link->SetFaultInjector(config_.faults);
  }
  if (config_.obs != nullptr) {
    for (auto& link : uplinks_) link->SetObs(config_.obs);
    for (auto& link : downlinks_) link->SetObs(config_.obs);
    for (auto& link : ingresses_) link->SetObs(config_.obs);
    for (auto& link : egresses_) link->SetObs(config_.obs);
  }
  if (config_.dynamics != nullptr && config_.dynamics->enabled()) {
    const NetDynamicsConfig& dyn = *config_.dynamics;
    BSCHED_CHECK(dyn.racks <= 1 || config_.num_workers >= 1);
    // Each link's schedule is keyed on its stable name; the asymmetric
    // down_scale derates the worker receive direction.
    for (auto& link : uplinks_) link->SetRateModel(BuildLinkRateModel(dyn, link->name(), false));
    for (auto& link : downlinks_) link->SetRateModel(BuildLinkRateModel(dyn, link->name(), true));
    for (auto& link : ingresses_) link->SetRateModel(BuildLinkRateModel(dyn, link->name(), false));
    for (auto& link : egresses_) link->SetRateModel(BuildLinkRateModel(dyn, link->name(), false));
    if (dyn.aimd.enable) {
      for (int w = 0; w < config_.num_workers; ++w) {
        rate_ctrl_.push_back(std::make_unique<RateController>(uplinks_[w].get(), dyn.aimd));
      }
    }
  }
}

uint64_t PsBackend::link_repaces() const {
  uint64_t total = 0;
  for (const auto& link : uplinks_) total += link->repace_events();
  for (const auto& link : downlinks_) total += link->repace_events();
  for (const auto& link : ingresses_) total += link->repace_events();
  for (const auto& link : egresses_) total += link->repace_events();
  return total;
}

double PsBackend::MsgScale(int worker, int shard) const {
  return config_.dynamics != nullptr ? CrossRackScale(*config_.dynamics, worker, shard) : 1.0;
}

bool PsBackend::Tracing() const {
  return config_.obs != nullptr && config_.obs->tracing();
}

void PsBackend::Forward(int src, int dst, uint64_t channel, SimTime delay, EventFn fn) {
  if (Sharded()) {
    config_.coord->Post(src, dst, channel, delay, std::move(fn));
    return;
  }
  // Serial path: reproduce Link::SendWithFlush's delivery wrapper exactly —
  // a zero wire flight runs inline, anything else schedules.
  if (delay.nanos() == 0) {
    fn();
  } else {
    sim_->Schedule(delay, std::move(fn));
  }
}

int PsBackend::ShardFor(int64_t tensor_id, int partition) const {
  // Round-robin by tensor; partitions of one tensor stripe across shards.
  // Unpartitioned tensors (single partition 0) land whole on one shard,
  // reproducing the vanilla assignment and its imbalance on skewed models.
  return static_cast<int>((tensor_id + partition) % config_.num_shards);
}

void PsBackend::Start(const SubCommTask& subtask, std::function<void()> on_finish) {
  BSCHED_CHECK(subtask.worker >= 0 && subtask.worker < config_.num_workers);
  BSCHED_CHECK(on_finish != nullptr);
  switch (subtask.type) {
    case CommOpType::kPush:
      HandlePush(subtask, std::move(on_finish));
      return;
    case CommOpType::kPull:
      HandlePull(subtask, std::move(on_finish));
      return;
    case CommOpType::kAllReduce:
      BSCHED_CHECK(false && "PS backend cannot execute all-reduce tasks");
  }
}

void PsBackend::HandlePush(const SubCommTask& subtask, std::function<void()> on_finish) {
  const int shard = ShardFor(subtask.tensor_id, subtask.partition);
  const int worker = subtask.worker;
  Simulator* wsim = WorkerSim(worker);
  const SimTime submit = wsim->Now();
  // Aggregation round for this slot from this worker: the data leg and any
  // retransmits of it all carry this round number, letting the shard drop a
  // stale duplicate whose original also made it through. A fresh push task
  // opens a new round; a Core-level retry re-enters here with the *same*
  // task id and must stay in its round, or its duplicate copy would count
  // as a phantom arrival in the next one.
  auto& prev = push_rounds_[worker][AckKey{subtask.tensor_id, subtask.partition}];
  if (prev.first != subtask.task || prev.second == 0) {
    prev.first = subtask.task;
    ++prev.second;
  }
  const uint64_t round = prev.second;
  uplinks_[worker]->SendCrossShard(
      subtask.bytes, MsgScale(worker, shard),
      /*on_flushed=*/
      [this, subtask, shard, worker, wsim, submit, round,
       on_finish = std::move(on_finish)]() mutable {
        // Sender-side completion (the stack flushed the partition): this is
        // what returns scheduler credit, after a small completion latency.
        // From here the data leg is the backend's responsibility; with faults
        // enabled an ack timer guarantees it eventually reaches the shard.
        if (Tracing()) {
          const std::string track = "net/worker" + std::to_string(worker) + ".up";
          TraceRecorder* trace = config_.obs->trace();
          trace->AddSpan(track, PartName(subtask.tensor_id, subtask.partition) + ".push", submit,
                         wsim->Now(),
                         {TraceArg::Int("bytes", subtask.bytes),
                          TraceArg::Int("layer", subtask.layer),
                          TraceArg::Int("shard", shard)});
          if (subtask.flow != 0) {
            trace->AddFlow(track, "flush", wsim->Now(), subtask.flow, FlowPhase::kStep);
          }
        }
        if (config_.faults != nullptr) {
          ArmPushAckTimer(subtask, shard, /*attempt=*/0, round);
        }
        // Flush notification goes to this worker's own scheduler core — a
        // same-entity hop, so it stays a local schedule in sharded mode too.
        wsim->Schedule(config_.control_latency, std::move(on_finish));
      },
      /*deliver=*/
      [this, subtask, shard, worker, round](SimTime wire) {
        // Store-and-forward: after the wire flight the partition serializes
        // into the shard NIC, where copies from all workers contend.
        Forward(worker_cshard_[worker], shard_cshard_[shard],
                Chan(kChanPushData, worker, shard), wire, [this, subtask, shard, round] {
                  ingresses_[shard]->Send(subtask.bytes, [this, subtask, shard, round] {
                    OnPushArrived(subtask, shard, round);
                  });
                });
      });
}

void PsBackend::SendPushData(const SubCommTask& subtask, int shard, uint64_t round) {
  // Retransmission path: re-occupies the uplink (a resend spends real
  // bandwidth) but carries no flush callback — credit was already returned.
  // Shares the first transmission's channel: both ride the same FIFO uplink,
  // so their flush order (and thus channel order) matches wire order.
  const int worker = subtask.worker;
  uplinks_[worker]->SendCrossShard(
      subtask.bytes, MsgScale(worker, shard), /*on_flushed=*/nullptr,
      [this, subtask, shard, worker, round](SimTime wire) {
        Forward(worker_cshard_[worker], shard_cshard_[shard],
                Chan(kChanPushData, worker, shard), wire, [this, subtask, shard, round] {
                  ingresses_[shard]->Send(subtask.bytes, [this, subtask, shard, round] {
                    OnPushArrived(subtask, shard, round);
                  });
                });
      });
}

void PsBackend::ArmPushAckTimer(const SubCommTask& subtask, int shard, int attempt,
                                uint64_t round) {
  // Runs on (and schedules on) the owning worker's simulator.
  const int worker = subtask.worker;
  const AckKey key{subtask.tensor_id, subtask.partition};
  EventHandle& pending = pending_acks_[worker][key];
  // Supersede a stale timer left by a previous aggregation round of the same
  // (tensor, partition, worker) slot (async mode reuses keys freely).
  pending.Cancel();
  double scale = 1.0;
  for (int i = 0; i < attempt; ++i) {
    scale *= config_.retry_backoff;
  }
  const SimTime timeout = SimTime(
      static_cast<int64_t>(static_cast<double>(config_.push_ack_timeout.nanos()) * scale));
  pending = WorkerSim(worker)->Schedule(timeout, [this, subtask, shard, worker, attempt,
                                                  round]() {
    pending_acks_[worker].erase(AckKey{subtask.tensor_id, subtask.partition});
    BSCHED_CHECK(attempt < config_.max_push_retries &&
                 "push data leg exhausted its retransmit budget");
    ++push_retransmits_[worker];
    if (config_.faults != nullptr) {
      config_.faults->RecordBackendRetransmit(worker, subtask.layer, subtask.partition,
                                              attempt + 1);
    }
    if (!rate_ctrl_.empty()) {
      // Loss signal: the data leg timed out, so back off this worker's
      // uplink before spending bandwidth on the retransmit.
      rate_ctrl_[worker]->OnLoss();
    }
    ArmPushAckTimer(subtask, shard, attempt + 1, round);
    SendPushData(subtask, shard, round);
  });
}

SimTime PsBackend::ScaledUpdateTime(int shard, Bytes bytes) const {
  const SimTime update_time =
      SimTime::Seconds(static_cast<double>(bytes) / config_.update_bytes_per_sec) +
      config_.update_fixed_overhead;
  if (config_.faults != nullptr) {
    // The owning shard's clock decides which slowdown episode is active.
    return config_.faults->ScaleShard(shard, update_time, ShardSim(shard)->Now());
  }
  return update_time;
}

// Records the shard-CPU update execution window. Called from the update's
// completion callback, so the window is [now - update_time, now] (the shard
// CPU is a FIFO resource: the job ran contiguously and just ended). Tracing
// is serial-mode-only, so sim_ is the right clock here.
void PsBackend::RecordUpdateSpan(int shard, int64_t tensor, int partition, uint64_t flow,
                                 SimTime update_time) {
  if (!Tracing()) {
    return;
  }
  const std::string track = "ps/shard" + std::to_string(shard);
  const SimTime end = sim_->Now();
  TraceRecorder* trace = config_.obs->trace();
  trace->AddSpan(track, PartName(tensor, partition) + ".update", end - update_time, end,
                 {TraceArg::Int("shard", shard)});
  if (flow != 0) {
    trace->AddFlow(track, "update", end, flow, FlowPhase::kStep);
  }
}

void PsBackend::OnPushArrived(const SubCommTask& subtask, int shard, uint64_t round) {
  // Runs on the PS shard's simulator.
  const int worker = subtask.worker;
  {
    // Round guard: drop a copy whose round was already counted — its ack
    // timer fired while the original was merely slow (long outage window or
    // a heavily derated volatile link) and both copies arrived. Counting it
    // would seed the slot's *next* aggregation round with a phantom arrival.
    // Checked before the ack-cancel below: any pending timer now belongs to
    // a newer round and must keep running.
    uint64_t& accepted =
        slots_[shard][{subtask.tensor_id, subtask.partition}].accepted_round[worker];
    if (round <= accepted) {
      ++stale_push_drops_[shard];
      return;
    }
    accepted = round;
  }
  if (config_.faults != nullptr) {
    if (!Sharded()) {
      auto& acks = pending_acks_[worker];
      auto ack = acks.find(AckKey{subtask.tensor_id, subtask.partition});
      if (ack != acks.end()) {
        ack->second.Cancel();
        acks.erase(ack);
        if (!rate_ctrl_.empty()) {
          rate_ctrl_[worker]->OnAck();
        }
      }
    } else {
      // The ack timer lives on the worker's shard: send an explicit ack
      // message back. It pays a control latency, so a timer may fire while
      // the ack is in flight — a spurious but deterministic retransmit, the
      // same race a real unreliable-datagram PS pays.
      config_.coord->Post(
          shard_cshard_[shard], worker_cshard_[worker], Chan(kChanAckCancel, shard, worker),
          config_.control_latency,
          [this, worker, key = AckKey{subtask.tensor_id, subtask.partition}] {
            auto& acks = pending_acks_[worker];
            auto it = acks.find(key);
            if (it != acks.end()) {
              it->second.Cancel();
              acks.erase(it);
              // Clean ack: recover the uplink's pacing. Runs on the worker's
              // own shard, like the timer it cancels.
              if (!rate_ctrl_.empty()) {
                rate_ctrl_[worker]->OnAck();
              }
            }
          });
    }
  }
  if (Tracing() && subtask.flow != 0) {
    config_.obs->trace()->AddFlow("ps/shard" + std::to_string(shard), "arrive", sim_->Now(),
                                  subtask.flow, FlowPhase::kStep);
  }
  SlotState& slot = slots_[shard][{subtask.tensor_id, subtask.partition}];
  const SimTime update_time = ScaledUpdateTime(shard, subtask.bytes);
  if (!config_.synchronous) {
    // Async PS: apply each worker's gradient on arrival; parameters become
    // pullable after the first update.
    shard_cpus_[shard]->Submit(update_time, [this, shard, tensor = subtask.tensor_id,
                                             partition = subtask.partition,
                                             bytes = subtask.bytes, flow = subtask.flow,
                                             update_time] {
      RecordUpdateSpan(shard, tensor, partition, flow, update_time);
      SlotState& s = slots_[shard][{tensor, partition}];
      if (!s.aggregated) {
        s.aggregated = true;
      }
      auto pending = std::move(s.pending_pulls);
      s.pending_pulls.clear();
      for (auto& p : pending) {
        DeliverPull(shard, p.subtask, bytes, std::move(p.on_finish));
      }
    });
    return;
  }
  // A set, not a counter: a retransmitted copy racing its merely-delayed
  // original must not count the same worker twice within a round.
  slot.arrived.insert(worker);
  if (static_cast<int>(slot.arrived.size()) < config_.num_workers) {
    return;
  }
  slot.arrived.clear();
  // All workers' gradients for this partition arrived: run the update, then
  // release any pulls that were admitted early.
  shard_cpus_[shard]->Submit(update_time, [this, shard, tensor = subtask.tensor_id,
                                           partition = subtask.partition, bytes = subtask.bytes,
                                           flow = subtask.flow, update_time] {
    RecordUpdateSpan(shard, tensor, partition, flow, update_time);
    SlotState& s = slots_[shard][{tensor, partition}];
    s.aggregated = true;
    auto pending = std::move(s.pending_pulls);
    s.pending_pulls.clear();
    for (auto& p : pending) {
      DeliverPull(shard, p.subtask, bytes, std::move(p.on_finish));
    }
    if (listeners_.empty()) {
      return;
    }
    if (!Sharded()) {
      // Listener-major, worker-minor: matches the legacy order, where each
      // single listener looped workers 0..N-1 internally.
      for (const auto& listener : listeners_) {
        for (int w = 0; w < config_.num_workers; ++w) {
          listener(tensor, partition, w);
        }
      }
      return;
    }
    // Sharded: the notification is a shard -> worker control message, so
    // each worker's listeners run on that worker's own shard.
    for (int w = 0; w < config_.num_workers; ++w) {
      config_.coord->Post(shard_cshard_[shard], worker_cshard_[w],
                          Chan(kChanAggNotify, shard, w), config_.control_latency,
                          [this, tensor, partition, w] {
                            for (const auto& listener : listeners_) {
                              listener(tensor, partition, w);
                            }
                          });
    }
  });
}

void PsBackend::HandlePull(const SubCommTask& subtask, std::function<void()> on_finish) {
  const int shard = ShardFor(subtask.tensor_id, subtask.partition);
  const int worker = subtask.worker;
  // Pull request reaches the shard after a control-message latency (a
  // worker -> shard hop, so it crosses via Post in sharded mode).
  Forward(worker_cshard_[worker], shard_cshard_[shard], Chan(kChanPullReq, worker, shard),
          config_.control_latency,
          [this, subtask, shard, on_finish = std::move(on_finish)]() mutable {
            SlotState& slot = slots_[shard][{subtask.tensor_id, subtask.partition}];
            if (!slot.aggregated) {
              slot.pending_pulls.push_back(PendingPull{subtask, std::move(on_finish)});
              return;
            }
            DeliverPull(shard, subtask, subtask.bytes, std::move(on_finish));
          });
}

void PsBackend::DeliverPull(int shard, const SubCommTask& subtask, Bytes bytes,
                            std::function<void()> on_finish) {
  // Runs on the PS shard's simulator.
  const int worker = subtask.worker;
  if (Tracing()) {
    // Wrap the completion so the downlink span and the flow hop are stamped
    // at actual delivery time (after egress + downlink serialization).
    const SimTime submit = sim_->Now();
    on_finish = [this, subtask, bytes, submit, on_finish = std::move(on_finish)]() mutable {
      const std::string track = "net/worker" + std::to_string(subtask.worker) + ".down";
      TraceRecorder* trace = config_.obs->trace();
      trace->AddSpan(track, PartName(subtask.tensor_id, subtask.partition) + ".pull", submit,
                     sim_->Now(), {TraceArg::Int("bytes", bytes)});
      if (subtask.flow != 0) {
        trace->AddFlow(track, "deliver", sim_->Now(), subtask.flow, FlowPhase::kStep);
      }
      on_finish();
    };
  }
  egresses_[shard]->SendCrossShard(
      bytes, MsgScale(worker, shard), /*on_flushed=*/nullptr,
      [this, shard, worker, bytes, on_finish = std::move(on_finish)](SimTime wire) mutable {
        Forward(shard_cshard_[shard], worker_cshard_[worker],
                Chan(kChanPullData, shard, worker), wire,
                [this, worker, bytes, on_finish = std::move(on_finish)]() mutable {
                  downlinks_[worker]->Send(bytes, std::move(on_finish));
                });
      });
}

void PsBackend::ResetAggregationState() {
  for (auto& shard_slots : slots_) {
    shard_slots.clear();
  }
  for (auto& worker_acks : pending_acks_) {
    for (auto& [key, handle] : worker_acks) {
      handle.Cancel();
    }
    worker_acks.clear();
  }
  for (auto& worker_rounds : push_rounds_) {
    worker_rounds.clear();
  }
}

Bytes PsBackend::shard_bytes_in(int shard) const {
  BSCHED_CHECK(shard >= 0 && shard < config_.num_shards);
  return ingresses_[shard]->bytes_sent();
}

Bytes PsBackend::shard_bytes_out(int shard) const {
  BSCHED_CHECK(shard >= 0 && shard < config_.num_shards);
  return egresses_[shard]->bytes_sent();
}

double PsBackend::ShardLoadImbalance() const {
  Bytes max_out = 0;
  Bytes total = 0;
  for (int s = 0; s < config_.num_shards; ++s) {
    max_out = std::max(max_out, shard_bytes_out(s));
    total += shard_bytes_out(s);
  }
  if (total == 0) {
    return 1.0;
  }
  const double mean = static_cast<double>(total) / config_.num_shards;
  return static_cast<double>(max_out) / mean;
}

void PsBackend::ExportMetrics() {
  if (config_.obs == nullptr || config_.obs->metrics() == nullptr) {
    return;
  }
  for (auto& link : uplinks_) link->ExportMetrics();
  for (auto& link : downlinks_) link->ExportMetrics();
  for (auto& link : ingresses_) link->ExportMetrics();
  for (auto& link : egresses_) link->ExportMetrics();
  MetricsRegistry* m = config_.obs->metrics();
  for (int s = 0; s < config_.num_shards; ++s) {
    const std::string prefix = "ps.shard" + std::to_string(s);
    m->gauge(prefix + ".bytes_in")->Set(shard_bytes_in(s));
    m->gauge(prefix + ".bytes_out")->Set(shard_bytes_out(s));
    m->gauge(prefix + ".cpu_busy_ns")->Set(shard_cpus_[s]->busy_time().nanos());
  }
  m->counter("ps.push_retransmits")->Inc(push_retransmits());
  // Always exported (zero without dynamics) so the metric key set is stable
  // across configurations, like the fault.* counters.
  m->counter("net.rate_ctrl.decreases")->Inc(rate_ctrl_decreases());
  m->counter("net.rate_ctrl.increases")->Inc(rate_ctrl_increases());
  m->counter("net.link_repaces")->Inc(link_repaces());
  m->counter("net.stale_push_drops")->Inc(stale_push_drops());
}

std::string PsBackend::DebugString() const {
  int pending_pulls = 0;
  int waiting_slots = 0;
  for (const auto& shard_slots : slots_) {
    for (const auto& [key, slot] : shard_slots) {
      pending_pulls += static_cast<int>(slot.pending_pulls.size());
      if (!slot.arrived.empty()) {
        ++waiting_slots;
      }
    }
  }
  std::string out = "ps pending_pulls=" + std::to_string(pending_pulls) +
                    " slots_awaiting_arrivals=" + std::to_string(waiting_slots);
  if (config_.faults != nullptr) {
    size_t unacked = 0;
    for (const auto& worker_acks : pending_acks_) {
      unacked += worker_acks.size();
    }
    out += " unacked_pushes=" + std::to_string(unacked) +
           " retransmits=" + std::to_string(push_retransmits());
  }
  return out;
}

}  // namespace bsched
