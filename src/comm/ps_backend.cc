#include "src/comm/ps_backend.h"

#include <algorithm>
#include <string>

#include "src/common/check.h"

namespace bsched {

PsBackend::PsBackend(Simulator* sim, const PsConfig& config) : sim_(sim), config_(config) {
  BSCHED_CHECK(sim_ != nullptr);
  BSCHED_CHECK(config_.num_workers > 0);
  BSCHED_CHECK(config_.num_shards > 0);
  TransportModel receiver = config_.transport;
  receiver.serial_overhead = SimTime();
  receiver.latency = SimTime();
  for (int w = 0; w < config_.num_workers; ++w) {
    const std::string name = "worker" + std::to_string(w);
    uplinks_.push_back(std::make_unique<Link>(sim, name + ".up", config_.link_rate,
                                              config_.transport));
    downlinks_.push_back(std::make_unique<Link>(sim, name + ".down", config_.link_rate, receiver));
  }
  for (int s = 0; s < config_.num_shards; ++s) {
    const std::string name = "shard" + std::to_string(s);
    ingresses_.push_back(std::make_unique<Link>(sim, name + ".in", config_.link_rate, receiver));
    egresses_.push_back(std::make_unique<Link>(sim, name + ".out", config_.link_rate,
                                               config_.transport));
    shard_cpus_.push_back(std::make_unique<Resource>(sim, name + ".cpu"));
  }
}

int PsBackend::ShardFor(int64_t tensor_id, int partition) const {
  // Round-robin by tensor; partitions of one tensor stripe across shards.
  // Unpartitioned tensors (single partition 0) land whole on one shard,
  // reproducing the vanilla assignment and its imbalance on skewed models.
  return static_cast<int>((tensor_id + partition) % config_.num_shards);
}

void PsBackend::Start(const SubCommTask& subtask, std::function<void()> on_finish) {
  BSCHED_CHECK(subtask.worker >= 0 && subtask.worker < config_.num_workers);
  BSCHED_CHECK(on_finish != nullptr);
  switch (subtask.type) {
    case CommOpType::kPush:
      HandlePush(subtask, std::move(on_finish));
      return;
    case CommOpType::kPull:
      HandlePull(subtask, std::move(on_finish));
      return;
    case CommOpType::kAllReduce:
      BSCHED_CHECK(false && "PS backend cannot execute all-reduce tasks");
  }
}

void PsBackend::HandlePush(const SubCommTask& subtask, std::function<void()> on_finish) {
  const int shard = ShardFor(subtask.tensor_id, subtask.partition);
  uplinks_[subtask.worker]->SendWithFlush(
      subtask.bytes,
      /*on_flushed=*/
      [this, on_finish = std::move(on_finish)]() mutable {
        // Sender-side completion (the stack flushed the partition): this is
        // what returns scheduler credit, after a small completion latency.
        sim_->Schedule(config_.control_latency, std::move(on_finish));
      },
      /*on_delivered=*/
      [this, subtask, shard]() {
        // Store-and-forward: the partition now serializes into the shard NIC,
        // where copies from all workers contend.
        ingresses_[shard]->Send(subtask.bytes,
                                [this, subtask, shard] { OnPushArrived(subtask, shard); });
      });
}

void PsBackend::OnPushArrived(const SubCommTask& subtask, int shard) {
  SlotState& slot = slots_[{subtask.tensor_id, subtask.partition}];
  const SimTime update_time =
      SimTime::Seconds(static_cast<double>(subtask.bytes) / config_.update_bytes_per_sec) +
      config_.update_fixed_overhead;
  if (!config_.synchronous) {
    // Async PS: apply each worker's gradient on arrival; parameters become
    // pullable after the first update.
    shard_cpus_[shard]->Submit(update_time, [this, shard, tensor = subtask.tensor_id,
                                             partition = subtask.partition,
                                             bytes = subtask.bytes] {
      SlotState& s = slots_[{tensor, partition}];
      if (!s.aggregated) {
        s.aggregated = true;
      }
      auto pending = std::move(s.pending_pulls);
      s.pending_pulls.clear();
      for (auto& [worker, cb] : pending) {
        DeliverPull(shard, worker, bytes, std::move(cb));
      }
    });
    return;
  }
  ++slot.arrivals;
  if (slot.arrivals < config_.num_workers) {
    return;
  }
  slot.arrivals = 0;
  // All workers' gradients for this partition arrived: run the update, then
  // release any pulls that were admitted early.
  shard_cpus_[shard]->Submit(update_time, [this, shard, tensor = subtask.tensor_id,
                                           partition = subtask.partition, bytes = subtask.bytes] {
    SlotState& s = slots_[{tensor, partition}];
    s.aggregated = true;
    auto pending = std::move(s.pending_pulls);
    s.pending_pulls.clear();
    for (auto& [worker, cb] : pending) {
      DeliverPull(shard, worker, bytes, std::move(cb));
    }
    for (const auto& listener : listeners_) {
      listener(tensor, partition);
    }
  });
}

void PsBackend::HandlePull(const SubCommTask& subtask, std::function<void()> on_finish) {
  const int shard = ShardFor(subtask.tensor_id, subtask.partition);
  // Pull request reaches the shard after a control-message latency.
  sim_->Schedule(config_.control_latency, [this, subtask, shard,
                                           on_finish = std::move(on_finish)]() mutable {
    SlotState& slot = slots_[{subtask.tensor_id, subtask.partition}];
    if (!slot.aggregated) {
      slot.pending_pulls.emplace_back(subtask.worker, std::move(on_finish));
      return;
    }
    DeliverPull(shard, subtask.worker, subtask.bytes, std::move(on_finish));
  });
}

void PsBackend::DeliverPull(int shard, int worker, Bytes bytes, std::function<void()> on_finish) {
  egresses_[shard]->Send(bytes, [this, worker, bytes, on_finish = std::move(on_finish)]() mutable {
    downlinks_[worker]->Send(bytes, std::move(on_finish));
  });
}

void PsBackend::ResetAggregationState() { slots_.clear(); }

Bytes PsBackend::shard_bytes_in(int shard) const {
  BSCHED_CHECK(shard >= 0 && shard < config_.num_shards);
  return ingresses_[shard]->bytes_sent();
}

Bytes PsBackend::shard_bytes_out(int shard) const {
  BSCHED_CHECK(shard >= 0 && shard < config_.num_shards);
  return egresses_[shard]->bytes_sent();
}

double PsBackend::ShardLoadImbalance() const {
  Bytes max_out = 0;
  Bytes total = 0;
  for (int s = 0; s < config_.num_shards; ++s) {
    max_out = std::max(max_out, shard_bytes_out(s));
    total += shard_bytes_out(s);
  }
  if (total == 0) {
    return 1.0;
  }
  const double mean = static_cast<double>(total) / config_.num_shards;
  return static_cast<double>(max_out) / mean;
}

std::string PsBackend::DebugString() const {
  int pending_pulls = 0;
  int waiting_slots = 0;
  for (const auto& [key, slot] : slots_) {
    pending_pulls += static_cast<int>(slot.pending_pulls.size());
    if (slot.arrivals > 0) {
      ++waiting_slots;
    }
  }
  return "ps pending_pulls=" + std::to_string(pending_pulls) +
         " slots_awaiting_arrivals=" + std::to_string(waiting_slots);
}

}  // namespace bsched
