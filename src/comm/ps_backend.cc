#include "src/comm/ps_backend.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/obs/obs.h"

namespace bsched {
namespace {

std::string PartName(int64_t tensor, int partition) {
  return "t" + std::to_string(tensor) + ".p" + std::to_string(partition);
}

}  // namespace

PsBackend::PsBackend(Simulator* sim, const PsConfig& config) : sim_(sim), config_(config) {
  BSCHED_CHECK(sim_ != nullptr);
  BSCHED_CHECK(config_.num_workers > 0);
  BSCHED_CHECK(config_.num_shards > 0);
  TransportModel receiver = config_.transport;
  receiver.serial_overhead = SimTime();
  receiver.latency = SimTime();
  for (int w = 0; w < config_.num_workers; ++w) {
    const std::string name = "worker" + std::to_string(w);
    uplinks_.push_back(std::make_unique<Link>(sim, name + ".up", config_.link_rate,
                                              config_.transport));
    downlinks_.push_back(std::make_unique<Link>(sim, name + ".down", config_.link_rate, receiver));
  }
  for (int s = 0; s < config_.num_shards; ++s) {
    const std::string name = "shard" + std::to_string(s);
    ingresses_.push_back(std::make_unique<Link>(sim, name + ".in", config_.link_rate, receiver));
    egresses_.push_back(std::make_unique<Link>(sim, name + ".out", config_.link_rate,
                                               config_.transport));
    shard_cpus_.push_back(std::make_unique<Resource>(sim, name + ".cpu"));
  }
  if (config_.faults != nullptr) {
    BSCHED_CHECK(config_.retry_backoff >= 1.0);
    BSCHED_CHECK(config_.max_push_retries >= 0);
    for (auto& link : uplinks_) link->SetFaultInjector(config_.faults);
    for (auto& link : downlinks_) link->SetFaultInjector(config_.faults);
    for (auto& link : ingresses_) link->SetFaultInjector(config_.faults);
    for (auto& link : egresses_) link->SetFaultInjector(config_.faults);
  }
  if (config_.obs != nullptr) {
    for (auto& link : uplinks_) link->SetObs(config_.obs);
    for (auto& link : downlinks_) link->SetObs(config_.obs);
    for (auto& link : ingresses_) link->SetObs(config_.obs);
    for (auto& link : egresses_) link->SetObs(config_.obs);
  }
}

bool PsBackend::Tracing() const {
  return config_.obs != nullptr && config_.obs->tracing();
}

int PsBackend::ShardFor(int64_t tensor_id, int partition) const {
  // Round-robin by tensor; partitions of one tensor stripe across shards.
  // Unpartitioned tensors (single partition 0) land whole on one shard,
  // reproducing the vanilla assignment and its imbalance on skewed models.
  return static_cast<int>((tensor_id + partition) % config_.num_shards);
}

void PsBackend::Start(const SubCommTask& subtask, std::function<void()> on_finish) {
  BSCHED_CHECK(subtask.worker >= 0 && subtask.worker < config_.num_workers);
  BSCHED_CHECK(on_finish != nullptr);
  switch (subtask.type) {
    case CommOpType::kPush:
      HandlePush(subtask, std::move(on_finish));
      return;
    case CommOpType::kPull:
      HandlePull(subtask, std::move(on_finish));
      return;
    case CommOpType::kAllReduce:
      BSCHED_CHECK(false && "PS backend cannot execute all-reduce tasks");
  }
}

void PsBackend::HandlePush(const SubCommTask& subtask, std::function<void()> on_finish) {
  const int shard = ShardFor(subtask.tensor_id, subtask.partition);
  const SimTime submit = sim_->Now();
  uplinks_[subtask.worker]->SendWithFlush(
      subtask.bytes,
      /*on_flushed=*/
      [this, subtask, shard, submit, on_finish = std::move(on_finish)]() mutable {
        // Sender-side completion (the stack flushed the partition): this is
        // what returns scheduler credit, after a small completion latency.
        // From here the data leg is the backend's responsibility; with faults
        // enabled an ack timer guarantees it eventually reaches the shard.
        if (Tracing()) {
          const std::string track = "net/worker" + std::to_string(subtask.worker) + ".up";
          TraceRecorder* trace = config_.obs->trace();
          trace->AddSpan(track, PartName(subtask.tensor_id, subtask.partition) + ".push", submit,
                         sim_->Now(),
                         {TraceArg::Int("bytes", subtask.bytes),
                          TraceArg::Int("layer", subtask.layer),
                          TraceArg::Int("shard", shard)});
          if (subtask.flow != 0) {
            trace->AddFlow(track, "flush", sim_->Now(), subtask.flow, FlowPhase::kStep);
          }
        }
        if (config_.faults != nullptr) {
          ArmPushAckTimer(subtask, shard, /*attempt=*/0);
        }
        sim_->Schedule(config_.control_latency, std::move(on_finish));
      },
      /*on_delivered=*/
      [this, subtask, shard]() {
        // Store-and-forward: the partition now serializes into the shard NIC,
        // where copies from all workers contend.
        ingresses_[shard]->Send(subtask.bytes,
                                [this, subtask, shard] { OnPushArrived(subtask, shard); });
      });
}

void PsBackend::SendPushData(const SubCommTask& subtask, int shard) {
  // Retransmission path: re-occupies the uplink (a resend spends real
  // bandwidth) but carries no flush callback — credit was already returned.
  uplinks_[subtask.worker]->Send(subtask.bytes, [this, subtask, shard]() {
    ingresses_[shard]->Send(subtask.bytes,
                            [this, subtask, shard] { OnPushArrived(subtask, shard); });
  });
}

void PsBackend::ArmPushAckTimer(const SubCommTask& subtask, int shard, int attempt) {
  const AckKey key{subtask.tensor_id, subtask.partition, subtask.worker};
  EventHandle& pending = pending_acks_[key];
  // Supersede a stale timer left by a previous aggregation round of the same
  // (tensor, partition, worker) slot (async mode reuses keys freely).
  pending.Cancel();
  double scale = 1.0;
  for (int i = 0; i < attempt; ++i) {
    scale *= config_.retry_backoff;
  }
  const SimTime timeout = SimTime(
      static_cast<int64_t>(static_cast<double>(config_.push_ack_timeout.nanos()) * scale));
  pending = sim_->Schedule(timeout, [this, subtask, shard, attempt]() {
    pending_acks_.erase(AckKey{subtask.tensor_id, subtask.partition, subtask.worker});
    BSCHED_CHECK(attempt < config_.max_push_retries &&
                 "push data leg exhausted its retransmit budget");
    ++push_retransmits_;
    if (config_.faults != nullptr) {
      config_.faults->RecordBackendRetransmit(subtask.worker, subtask.layer, subtask.partition,
                                              attempt + 1);
    }
    ArmPushAckTimer(subtask, shard, attempt + 1);
    SendPushData(subtask, shard);
  });
}

SimTime PsBackend::ScaledUpdateTime(int shard, Bytes bytes) const {
  const SimTime update_time =
      SimTime::Seconds(static_cast<double>(bytes) / config_.update_bytes_per_sec) +
      config_.update_fixed_overhead;
  if (config_.faults != nullptr) {
    return config_.faults->ScaleShard(shard, update_time);
  }
  return update_time;
}

// Records the shard-CPU update execution window. Called from the update's
// completion callback, so the window is [now - update_time, now] (the shard
// CPU is a FIFO resource: the job ran contiguously and just ended).
void PsBackend::RecordUpdateSpan(int shard, int64_t tensor, int partition, uint64_t flow,
                                 SimTime update_time) {
  if (!Tracing()) {
    return;
  }
  const std::string track = "ps/shard" + std::to_string(shard);
  const SimTime end = sim_->Now();
  TraceRecorder* trace = config_.obs->trace();
  trace->AddSpan(track, PartName(tensor, partition) + ".update", end - update_time, end,
                 {TraceArg::Int("shard", shard)});
  if (flow != 0) {
    trace->AddFlow(track, "update", end, flow, FlowPhase::kStep);
  }
}

void PsBackend::OnPushArrived(const SubCommTask& subtask, int shard) {
  if (config_.faults != nullptr) {
    auto ack = pending_acks_.find(AckKey{subtask.tensor_id, subtask.partition, subtask.worker});
    if (ack != pending_acks_.end()) {
      ack->second.Cancel();
      pending_acks_.erase(ack);
    }
  }
  if (Tracing() && subtask.flow != 0) {
    config_.obs->trace()->AddFlow("ps/shard" + std::to_string(shard), "arrive", sim_->Now(),
                                  subtask.flow, FlowPhase::kStep);
  }
  SlotState& slot = slots_[{subtask.tensor_id, subtask.partition}];
  const SimTime update_time = ScaledUpdateTime(shard, subtask.bytes);
  if (!config_.synchronous) {
    // Async PS: apply each worker's gradient on arrival; parameters become
    // pullable after the first update.
    shard_cpus_[shard]->Submit(update_time, [this, shard, tensor = subtask.tensor_id,
                                             partition = subtask.partition,
                                             bytes = subtask.bytes, flow = subtask.flow,
                                             update_time] {
      RecordUpdateSpan(shard, tensor, partition, flow, update_time);
      SlotState& s = slots_[{tensor, partition}];
      if (!s.aggregated) {
        s.aggregated = true;
      }
      auto pending = std::move(s.pending_pulls);
      s.pending_pulls.clear();
      for (auto& p : pending) {
        DeliverPull(shard, p.subtask, bytes, std::move(p.on_finish));
      }
    });
    return;
  }
  // A set, not a counter: a retransmitted copy racing its merely-delayed
  // original must not count the same worker twice within a round.
  slot.arrived.insert(subtask.worker);
  if (static_cast<int>(slot.arrived.size()) < config_.num_workers) {
    return;
  }
  slot.arrived.clear();
  // All workers' gradients for this partition arrived: run the update, then
  // release any pulls that were admitted early.
  shard_cpus_[shard]->Submit(update_time, [this, shard, tensor = subtask.tensor_id,
                                           partition = subtask.partition, bytes = subtask.bytes,
                                           flow = subtask.flow, update_time] {
    RecordUpdateSpan(shard, tensor, partition, flow, update_time);
    SlotState& s = slots_[{tensor, partition}];
    s.aggregated = true;
    auto pending = std::move(s.pending_pulls);
    s.pending_pulls.clear();
    for (auto& p : pending) {
      DeliverPull(shard, p.subtask, bytes, std::move(p.on_finish));
    }
    for (const auto& listener : listeners_) {
      listener(tensor, partition);
    }
  });
}

void PsBackend::HandlePull(const SubCommTask& subtask, std::function<void()> on_finish) {
  const int shard = ShardFor(subtask.tensor_id, subtask.partition);
  // Pull request reaches the shard after a control-message latency.
  sim_->Schedule(config_.control_latency, [this, subtask, shard,
                                           on_finish = std::move(on_finish)]() mutable {
    SlotState& slot = slots_[{subtask.tensor_id, subtask.partition}];
    if (!slot.aggregated) {
      slot.pending_pulls.push_back(PendingPull{subtask, std::move(on_finish)});
      return;
    }
    DeliverPull(shard, subtask, subtask.bytes, std::move(on_finish));
  });
}

void PsBackend::DeliverPull(int shard, const SubCommTask& subtask, Bytes bytes,
                            std::function<void()> on_finish) {
  const int worker = subtask.worker;
  if (Tracing()) {
    // Wrap the completion so the downlink span and the flow hop are stamped
    // at actual delivery time (after egress + downlink serialization).
    const SimTime submit = sim_->Now();
    on_finish = [this, subtask, bytes, submit, on_finish = std::move(on_finish)]() mutable {
      const std::string track = "net/worker" + std::to_string(subtask.worker) + ".down";
      TraceRecorder* trace = config_.obs->trace();
      trace->AddSpan(track, PartName(subtask.tensor_id, subtask.partition) + ".pull", submit,
                     sim_->Now(), {TraceArg::Int("bytes", bytes)});
      if (subtask.flow != 0) {
        trace->AddFlow(track, "deliver", sim_->Now(), subtask.flow, FlowPhase::kStep);
      }
      on_finish();
    };
  }
  egresses_[shard]->Send(bytes, [this, worker, bytes, on_finish = std::move(on_finish)]() mutable {
    downlinks_[worker]->Send(bytes, std::move(on_finish));
  });
}

void PsBackend::ResetAggregationState() {
  slots_.clear();
  for (auto& [key, handle] : pending_acks_) {
    handle.Cancel();
  }
  pending_acks_.clear();
}

Bytes PsBackend::shard_bytes_in(int shard) const {
  BSCHED_CHECK(shard >= 0 && shard < config_.num_shards);
  return ingresses_[shard]->bytes_sent();
}

Bytes PsBackend::shard_bytes_out(int shard) const {
  BSCHED_CHECK(shard >= 0 && shard < config_.num_shards);
  return egresses_[shard]->bytes_sent();
}

double PsBackend::ShardLoadImbalance() const {
  Bytes max_out = 0;
  Bytes total = 0;
  for (int s = 0; s < config_.num_shards; ++s) {
    max_out = std::max(max_out, shard_bytes_out(s));
    total += shard_bytes_out(s);
  }
  if (total == 0) {
    return 1.0;
  }
  const double mean = static_cast<double>(total) / config_.num_shards;
  return static_cast<double>(max_out) / mean;
}

void PsBackend::ExportMetrics() {
  if (config_.obs == nullptr || config_.obs->metrics() == nullptr) {
    return;
  }
  for (auto& link : uplinks_) link->ExportMetrics();
  for (auto& link : downlinks_) link->ExportMetrics();
  for (auto& link : ingresses_) link->ExportMetrics();
  for (auto& link : egresses_) link->ExportMetrics();
  MetricsRegistry* m = config_.obs->metrics();
  for (int s = 0; s < config_.num_shards; ++s) {
    const std::string prefix = "ps.shard" + std::to_string(s);
    m->gauge(prefix + ".bytes_in")->Set(shard_bytes_in(s));
    m->gauge(prefix + ".bytes_out")->Set(shard_bytes_out(s));
    m->gauge(prefix + ".cpu_busy_ns")->Set(shard_cpus_[s]->busy_time().nanos());
  }
  m->counter("ps.push_retransmits")->Inc(push_retransmits_);
}

std::string PsBackend::DebugString() const {
  int pending_pulls = 0;
  int waiting_slots = 0;
  for (const auto& [key, slot] : slots_) {
    pending_pulls += static_cast<int>(slot.pending_pulls.size());
    if (!slot.arrived.empty()) {
      ++waiting_slots;
    }
  }
  std::string out = "ps pending_pulls=" + std::to_string(pending_pulls) +
                    " slots_awaiting_arrivals=" + std::to_string(waiting_slots);
  if (config_.faults != nullptr) {
    out += " unacked_pushes=" + std::to_string(pending_acks_.size()) +
           " retransmits=" + std::to_string(push_retransmits_);
  }
  return out;
}

}  // namespace bsched
