#include "src/comm/allreduce_backend.h"

#include <cmath>
#include <utility>

#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/obs/obs.h"

namespace bsched {

AllReduceConfig AllReduceConfig::Nccl(int num_workers, Bandwidth link_rate,
                                      const TransportModel& transport) {
  AllReduceConfig cfg;
  cfg.num_workers = num_workers;
  cfg.link_rate = link_rate;
  cfg.transport = transport;
  if (transport.name == "rdma") {
    cfg.launch_overhead = SimTime::Micros(100);
    cfg.step_latency = SimTime::Micros(3);
  } else if (transport.name == "tcp") {
    cfg.launch_overhead = SimTime::Micros(250);
    cfg.step_latency = SimTime::Micros(15);
  } else {
    cfg.launch_overhead = SimTime();
    cfg.step_latency = SimTime();
  }
  return cfg;
}

AllReduceBackend::AllReduceBackend(Simulator* sim, const AllReduceConfig& config)
    : sim_(sim), config_(config), ring_(std::make_unique<Resource>(sim, "ring")) {
  BSCHED_CHECK(sim_ != nullptr);
  BSCHED_CHECK(config_.num_workers >= 1);
  if (config_.faults != nullptr) {
    ring_site_hash_ = FaultPlan::HashSite("ring");
  }
}

SimTime AllReduceBackend::RingTime(Bytes bytes) const {
  const int w = config_.num_workers;
  if (w == 1) {
    return SimTime();
  }
  const Bandwidth rate = config_.transport.EffectiveRate(config_.link_rate);
  const double chunk = static_cast<double>(bytes) / w;
  const double step_sec =
      config_.step_latency.ToSeconds() + chunk / rate.bytes_per_sec();
  return SimTime::Seconds(2.0 * (w - 1) * step_sec);
}

void AllReduceBackend::Start(const SubCommTask& subtask, std::function<void()> on_finish) {
  BSCHED_CHECK(subtask.type == CommOpType::kAllReduce);
  BSCHED_CHECK(on_finish != nullptr);
  // Optional negotiation quantization: the operation is agreed upon by all
  // workers only at the next coordination-cycle boundary.
  SimTime wait;
  if (config_.nego_cycle.nanos() > 0) {
    const int64_t cycle = config_.nego_cycle.nanos();
    const int64_t now = sim_->Now().nanos();
    wait = SimTime(((now + cycle - 1) / cycle) * cycle - now);
  }
  if (config_.faults != nullptr) {
    const FaultInjector::MessageFault fate =
        config_.faults->OnMessageSend(ring_site_hash_, sim_->Now());
    if (fate.drop) {
      // The collective launch is lost (e.g. a worker missed the negotiation);
      // the master Core's timeout recovery relaunches the operation.
      return;
    }
    wait += fate.delay;
  }
  // The launch/negotiation phase runs host-side, concurrently with whatever
  // the ring is currently transferring; the ring pass itself serializes.
  if (getenv("BSCHED_DEBUG_RING") != nullptr) {
    std::fprintf(stderr, "ring op layer=%d bytes=%lld wait=%s ring=%s W=%d rate=%.1fGbps\n",
                 subtask.layer, static_cast<long long>(subtask.bytes), wait.ToString().c_str(),
                 RingTime(subtask.bytes).ToString().c_str(), config_.num_workers,
                 config_.transport.EffectiveRate(config_.link_rate).ToGbps());
  }
  if (config_.obs != nullptr && config_.obs->tracing()) {
    // Instrumented launch: the extra captures push this lambda past EventFn's
    // inline buffer, so it stays a separate path — the lean lambda below is
    // untouched when tracing is off.
    sim_->Schedule(wait + config_.launch_overhead,
                   [this, bytes = subtask.bytes, layer = subtask.layer,
                    partition = subtask.partition, flow = subtask.flow,
                    on_finish = std::move(on_finish)]() mutable {
                     const SimTime ring_time = RingTime(bytes);
                     ring_->Submit(ring_time, [this, bytes, layer, partition, flow, ring_time,
                                               on_finish = std::move(on_finish)]() mutable {
                       const SimTime end = sim_->Now();
                       TraceRecorder* trace = config_.obs->trace();
                       trace->AddSpan("ring",
                                      "L" + std::to_string(layer) + ".p" +
                                          std::to_string(partition),
                                      end - ring_time, end,
                                      {TraceArg::Int("bytes", bytes),
                                       TraceArg::Int("layer", layer)});
                       if (flow != 0) {
                         trace->AddFlow("ring", "ring_done", end, flow, FlowPhase::kStep);
                       }
                       on_finish();
                     });
                   });
    return;
  }
  sim_->Schedule(wait + config_.launch_overhead,
                 [this, bytes = subtask.bytes, on_finish = std::move(on_finish)]() mutable {
                   ring_->Submit(RingTime(bytes), std::move(on_finish));
                 });
}

void AllReduceBackend::ExportMetrics() {
  if (config_.obs == nullptr || config_.obs->metrics() == nullptr) {
    return;
  }
  MetricsRegistry* m = config_.obs->metrics();
  m->gauge("ring.busy_ns")->Set(ring_busy_time().nanos());
  m->counter("ring.ops")->Inc(ops_completed());
}

}  // namespace bsched
