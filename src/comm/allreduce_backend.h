// Ring all-reduce backend (NCCL/Horovod-style). All workers execute the same
// sequence of all-reduce operations; the paper's master Core decides that
// order and broadcasts it, so this backend is driven by a single scheduling
// Core. One operation over W workers costs
//
//   launch_overhead + 2(W-1) * (step_latency + (bytes/W) / effective_rate)
//
// — the classic segmented-ring cost: 2(W-1) steps, each moving a 1/W chunk
// plus a per-step synchronization latency. The W-dependent fixed cost is why
// all-reduce prefers much larger partitions than PS (Table 1), and the
// launch overhead is pipelined only when more than one operation is in
// flight — which is what sender credits buy over stop-and-wait.
#ifndef SRC_COMM_ALLREDUCE_BACKEND_H_
#define SRC_COMM_ALLREDUCE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/comm/backend.h"
#include "src/fault/fault_injector.h"
#include "src/net/transport.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace bsched {

class ObsContext;

struct AllReduceConfig {
  int num_workers = 2;  // ring size (total GPUs)
  Bandwidth link_rate = Bandwidth::Gbps(100);
  TransportModel transport = TransportModel::Rdma();
  // Host-side cost to launch/negotiate one collective; overlaps with the
  // ring occupancy of earlier operations.
  SimTime launch_overhead;
  // Per-ring-step synchronization latency.
  SimTime step_latency;
  // Horovod-style coordination: tensors are negotiated across workers in
  // periodic cycles (hvd cycle_time), so an operation enters the ring only at
  // the next cycle boundary after submission. ByteScheduler's master Core
  // pre-decides one global order (§5), which removes the per-tensor
  // negotiation; set 0 to disable.
  SimTime nego_cycle;

  // Fault injection (null disables it). A dropped "message" models a failed
  // collective launch: the operation never completes and the scheduling
  // Core's timeout/retry recovery relaunches it. Delays model transient ring
  // congestion before the operation enters the ring.
  FaultInjector* faults = nullptr;
  // Observability (null disables): ring occupancy spans + flow hops on the
  // "ring" track, ring metrics at export. Passive; never schedules events.
  ObsContext* obs = nullptr;

  // NCCL-like presets; latencies depend on the transport.
  static AllReduceConfig Nccl(int num_workers, Bandwidth link_rate,
                              const TransportModel& transport);
};

class AllReduceBackend : public CommBackend {
 public:
  AllReduceBackend(Simulator* sim, const AllReduceConfig& config);

  void Start(const SubCommTask& subtask, std::function<void()> on_finish) override;

  // Ring time for one operation of `bytes` (excludes the launch overhead).
  SimTime RingTime(Bytes bytes) const;

  const AllReduceConfig& config() const { return config_; }
  SimTime ring_busy_time() const { return ring_->busy_time(); }
  uint64_t ops_completed() const { return ring_->jobs_completed(); }

  // Exports end-of-run ring metrics (ring.busy_ns, ring.ops) into the obs
  // registry. No-op without obs.
  void ExportMetrics();

 private:
  Simulator* sim_;
  AllReduceConfig config_;
  std::unique_ptr<Resource> ring_;
  uint64_t ring_site_hash_ = 0;
};

}  // namespace bsched

#endif  // SRC_COMM_ALLREDUCE_BACKEND_H_
