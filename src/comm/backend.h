// Communication-backend interface. The Core is communication-method-agnostic:
// SubCommTask.start() hands a partition to a backend (PS push/pull or ring
// all-reduce), and the backend invokes the completion callback when the
// underlying operation finishes for that worker. Backends serialize admitted
// work in FIFO order — the Core controls only admission order and in-flight
// bytes, exactly as in the paper.
#ifndef SRC_COMM_BACKEND_H_
#define SRC_COMM_BACKEND_H_

#include <functional>

#include "src/core/comm_task.h"

namespace bsched {

class CommBackend {
 public:
  virtual ~CommBackend() = default;

  // Admits one partition into the underlying stack. `on_finish` must be
  // invoked exactly once, when the operation completes from the perspective
  // of `subtask.worker` (push: ack received; pull: data delivered;
  // all-reduce: ring pass complete).
  virtual void Start(const SubCommTask& subtask, std::function<void()> on_finish) = 0;
};

}  // namespace bsched

#endif  // SRC_COMM_BACKEND_H_
