// Layer-wise DNN profiles. The scheduler's behaviour depends only on the
// timing structure of a model: the per-layer gradient/parameter tensor sizes
// and the per-layer forward/backward compute durations. A ModelProfile
// captures exactly that (no learning semantics), standing in for the GPU
// execution of real models on the paper's V100 testbed.
#ifndef SRC_MODEL_PROFILE_H_
#define SRC_MODEL_PROFILE_H_

#include <string>
#include <vector>

#include "src/common/units.h"

namespace bsched {

// One DNN layer as seen by the communication scheduler: a parameter tensor
// plus FP/BP compute costs. Layer index 0 is nearest the input, so under
// priority scheduling layer 0's communication is most urgent (Theorem 1).
struct Layer {
  std::string name;
  Bytes param_bytes = 0;
  SimTime fp_time;
  SimTime bp_time;
  // Whether vanilla ps-lite may split this tensor across servers (its
  // big-array splitting). Row-sparse tensors — notably embedding gradients —
  // are not splittable and land whole on one shard, which is the paper's
  // severe PS-load-imbalance case (§6.2).
  bool splittable = true;
};

struct ModelProfile {
  std::string name;
  // Unit reported by the harness, e.g. "images" or "tokens" (Transformer).
  std::string sample_unit = "samples";
  // Batch (in sample units) per GPU that the compute times correspond to.
  int batch_per_gpu = 32;
  // Ordered input -> output.
  std::vector<Layer> layers;

  int num_layers() const { return static_cast<int>(layers.size()); }
  Bytes TotalParamBytes() const;
  SimTime TotalFpTime() const;
  SimTime TotalBpTime() const;
  SimTime TotalComputeTime() const { return TotalFpTime() + TotalBpTime(); }
  Bytes MaxTensorBytes() const;

  // Same model with compute scaled to a different per-GPU batch size
  // (compute scales linearly with batch; tensor sizes do not change).
  ModelProfile WithBatch(int new_batch) const;
};

// Declarative spec used by the zoo: parameter count in millions of floats and
// a relative compute weight (forward GFLOPs); MakeModel calibrates absolute
// times so one batch takes batch/samples_per_sec seconds of compute, split
// 1:2 between FP and BP (the usual FP:BP cost ratio).
struct LayerSpec {
  std::string name;
  double params_millions = 0.0;
  double gflops = 0.0;
};

ModelProfile MakeModel(const std::string& name, const std::string& sample_unit, int batch_per_gpu,
                       double per_gpu_samples_per_sec, const std::vector<LayerSpec>& specs);

}  // namespace bsched

#endif  // SRC_MODEL_PROFILE_H_
