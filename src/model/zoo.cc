#include "src/model/zoo.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/check.h"

namespace bsched {
namespace {

// VGG16 conv/fc stack; params in millions of floats, forward GFLOPs/image.
std::vector<LayerSpec> Vgg16Specs() {
  return {
      {"conv1_1", 0.002, 0.17}, {"conv1_2", 0.037, 3.70},  {"conv2_1", 0.074, 1.85},
      {"conv2_2", 0.148, 3.70}, {"conv3_1", 0.295, 1.85},  {"conv3_2", 0.590, 3.70},
      {"conv3_3", 0.590, 3.70}, {"conv4_1", 1.180, 1.85},  {"conv4_2", 2.360, 3.70},
      {"conv4_3", 2.360, 3.70}, {"conv5_1", 2.360, 0.92},  {"conv5_2", 2.360, 0.92},
      {"conv5_3", 2.360, 0.92}, {"fc6", 102.760, 0.21},    {"fc7", 16.780, 0.03},
      {"fc8", 4.100, 0.01},
  };
}

}  // namespace

ModelProfile Vgg16() {
  // ~190 images/s on one V100 at batch 32.
  return MakeModel("vgg16", "images", 32, 190.0, Vgg16Specs());
}

ModelProfile Vgg19() {
  std::vector<LayerSpec> specs = Vgg16Specs();
  // Insert the three extra convolutions of configuration E.
  specs.insert(specs.begin() + 7, {"conv3_4", 0.590, 3.70});
  specs.insert(specs.begin() + 11, {"conv4_4", 2.360, 3.70});
  specs.insert(specs.begin() + 15, {"conv5_4", 2.360, 0.92});
  ModelProfile m = MakeModel("vgg19", "images", 32, 155.0, specs);
  return m;
}

ModelProfile AlexNet() {
  const std::vector<LayerSpec> specs = {
      {"conv1", 0.035, 0.21}, {"conv2", 0.307, 0.45}, {"conv3", 0.885, 0.30},
      {"conv4", 0.664, 0.22}, {"conv5", 0.443, 0.15}, {"fc6", 37.750, 0.075},
      {"fc7", 16.780, 0.034}, {"fc8", 4.100, 0.008},
  };
  return MakeModel("alexnet", "images", 32, 1500.0, specs);
}

ModelProfile ResNet50() {
  // Stages aggregated at bottleneck-block granularity (16 blocks + stem + fc).
  const std::vector<LayerSpec> specs = {
      {"conv1", 0.0095, 0.24},   {"s1_b1", 0.073, 0.23},  {"s1_b2", 0.069, 0.23},
      {"s1_b3", 0.069, 0.23},    {"s2_b1", 0.377, 0.26},  {"s2_b2", 0.279, 0.25},
      {"s2_b3", 0.279, 0.25},    {"s2_b4", 0.279, 0.25},  {"s3_b1", 1.507, 0.25},
      {"s3_b2", 1.112, 0.24},    {"s3_b3", 1.112, 0.24},  {"s3_b4", 1.112, 0.24},
      {"s3_b5", 1.112, 0.24},    {"s3_b6", 1.112, 0.24},  {"s4_b1", 6.030, 0.27},
      {"s4_b2", 4.460, 0.26},    {"s4_b3", 4.460, 0.26},  {"fc", 2.049, 0.004},
  };
  // ~340 images/s on one V100 at batch 32.
  return MakeModel("resnet50", "images", 32, 340.0, specs);
}

ModelProfile Transformer() {
  // Transformer "big" (d_model = 1024), the variant large enough to be
  // communication-bound on the paper's testbed.
  std::vector<LayerSpec> specs;
  // Shared source/target embedding: the dominant tensor, at the input.
  specs.push_back({"embed", 37.90, 0.9});
  for (int i = 1; i <= 6; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "enc%d", i);
    specs.push_back({name, 12.60, 1.0});
  }
  for (int i = 1; i <= 6; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "dec%d", i);
    specs.push_back({name, 16.80, 1.3});
  }
  // Output projection is weight-tied with the embedding (Transformer base),
  // so only its bias contributes a separate tensor.
  specs.push_back({"generator", 0.037, 0.9});
  // ~3800 tokens/s/GPU at per-GPU batch of 512 tokens.
  ModelProfile m = MakeModel("transformer", "tokens", 512, 3800.0, specs);
  // Embedding gradients are row-sparse in MXNet: ps-lite does not split them
  // across servers, so the 150 MB tensor lands whole on one shard.
  m.layers[0].splittable = false;
  return m;
}

ModelProfile BertLarge() {
  std::vector<LayerSpec> specs;
  // Token + position + segment embeddings (row-sparse gradients).
  specs.push_back({"embed", 31.3, 0.3});
  for (int i = 1; i <= 24; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "enc%d", i);
    // Per encoder layer: attention (4 x 1024^2) + FFN (2 x 1024 x 4096).
    specs.push_back({name, 12.60, 1.0});
  }
  specs.push_back({"pooler", 1.05, 0.05});
  // ~1050 tokens/s/GPU at a 256-token per-GPU batch (seq 128 x batch 2-ish).
  ModelProfile m = MakeModel("bert-large", "tokens", 256, 1050.0, specs);
  m.layers[0].splittable = false;  // row-sparse embedding gradients
  return m;
}

ModelProfile ModelByName(const std::string& name) {
  if (name == "vgg16") {
    return Vgg16();
  }
  if (name == "vgg19") {
    return Vgg19();
  }
  if (name == "alexnet") {
    return AlexNet();
  }
  if (name == "resnet50") {
    return ResNet50();
  }
  if (name == "transformer") {
    return Transformer();
  }
  if (name == "bert-large") {
    return BertLarge();
  }
  std::fprintf(stderr, "unknown model: %s\n", name.c_str());
  std::abort();
}

ModelProfile ContrivedFig2Model() {
  ModelProfile m;
  m.name = "contrived-fig2";
  m.sample_unit = "samples";
  m.batch_per_gpu = 1;
  // Three layers with deliberately mismatched compute/communication so FIFO
  // transmission order (layer 2 first) delays next-iteration FP badly, while
  // priority order + partitioning hides most communication.
  m.layers = {
      {"l0", MiB(8), SimTime::Millis(2), SimTime::Millis(4)},
      {"l1", MiB(2), SimTime::Millis(3), SimTime::Millis(5)},
      {"l2", MiB(12), SimTime::Millis(3), SimTime::Millis(5)},
  };
  return m;
}

ModelProfile SyntheticModel(const SyntheticSpec& spec, Rng& rng) {
  BSCHED_CHECK(spec.num_layers > 0);
  BSCHED_CHECK(spec.min_layer_bytes > 0);
  BSCHED_CHECK(spec.max_layer_bytes >= spec.min_layer_bytes);
  ModelProfile m;
  m.name = "synthetic";
  m.batch_per_gpu = 1;
  const double log_lo = std::log(static_cast<double>(spec.min_layer_bytes));
  const double log_hi = std::log(static_cast<double>(spec.max_layer_bytes));
  std::vector<double> weights(spec.num_layers);
  double weight_sum = 0.0;
  for (double& w : weights) {
    w = rng.Uniform(0.2, 1.0);
    weight_sum += w;
  }
  for (int i = 0; i < spec.num_layers; ++i) {
    Layer layer;
    layer.name = "l" + std::to_string(i);
    layer.param_bytes = static_cast<Bytes>(std::llround(std::exp(rng.Uniform(log_lo, log_hi))));
    const double frac = weights[i] / weight_sum;
    layer.fp_time = SimTime(
        static_cast<int64_t>(std::llround(spec.total_compute.nanos() / 3.0 * frac)));
    layer.bp_time = SimTime(
        static_cast<int64_t>(std::llround(spec.total_compute.nanos() * 2.0 / 3.0 * frac)));
    m.layers.push_back(std::move(layer));
  }
  return m;
}

}  // namespace bsched
