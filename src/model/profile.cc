#include "src/model/profile.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace bsched {

Bytes ModelProfile::TotalParamBytes() const {
  Bytes total = 0;
  for (const Layer& l : layers) {
    total += l.param_bytes;
  }
  return total;
}

SimTime ModelProfile::TotalFpTime() const {
  SimTime total;
  for (const Layer& l : layers) {
    total += l.fp_time;
  }
  return total;
}

SimTime ModelProfile::TotalBpTime() const {
  SimTime total;
  for (const Layer& l : layers) {
    total += l.bp_time;
  }
  return total;
}

Bytes ModelProfile::MaxTensorBytes() const {
  Bytes m = 0;
  for (const Layer& l : layers) {
    m = std::max(m, l.param_bytes);
  }
  return m;
}

ModelProfile ModelProfile::WithBatch(int new_batch) const {
  BSCHED_CHECK(new_batch > 0);
  BSCHED_CHECK(batch_per_gpu > 0);
  ModelProfile out = *this;
  out.batch_per_gpu = new_batch;
  const double scale = static_cast<double>(new_batch) / static_cast<double>(batch_per_gpu);
  for (Layer& l : out.layers) {
    l.fp_time = SimTime(static_cast<int64_t>(std::llround(l.fp_time.nanos() * scale)));
    l.bp_time = SimTime(static_cast<int64_t>(std::llround(l.bp_time.nanos() * scale)));
  }
  return out;
}

ModelProfile MakeModel(const std::string& name, const std::string& sample_unit, int batch_per_gpu,
                       double per_gpu_samples_per_sec, const std::vector<LayerSpec>& specs) {
  BSCHED_CHECK(!specs.empty());
  BSCHED_CHECK(per_gpu_samples_per_sec > 0);
  double total_gflops = 0.0;
  for (const LayerSpec& s : specs) {
    total_gflops += s.gflops;
  }
  BSCHED_CHECK(total_gflops > 0);

  const double iter_compute_sec = batch_per_gpu / per_gpu_samples_per_sec;
  const double fp_total_sec = iter_compute_sec / 3.0;
  const double bp_total_sec = iter_compute_sec * 2.0 / 3.0;

  ModelProfile profile;
  profile.name = name;
  profile.sample_unit = sample_unit;
  profile.batch_per_gpu = batch_per_gpu;
  profile.layers.reserve(specs.size());
  for (const LayerSpec& s : specs) {
    Layer layer;
    layer.name = s.name;
    layer.param_bytes = static_cast<Bytes>(std::llround(s.params_millions * 1e6)) * 4;  // fp32
    const double frac = s.gflops / total_gflops;
    layer.fp_time = SimTime::Seconds(fp_total_sec * frac);
    layer.bp_time = SimTime::Seconds(bp_total_sec * frac);
    profile.layers.push_back(std::move(layer));
  }
  return profile;
}

}  // namespace bsched
