// Model zoo: layer-wise profiles of the DNNs the paper evaluates (VGG16,
// ResNet50, Transformer in the main figures; AlexNet and VGG19 in §6.2 text),
// plus a parameterized synthetic generator for property tests.
//
// Parameter counts follow the published architectures; per-layer compute
// weights follow published per-layer FLOP breakdowns; absolute compute time is
// calibrated to typical single-V100 throughput so the communication/compute
// ratio — the quantity every result depends on — is realistic.
#ifndef SRC_MODEL_ZOO_H_
#define SRC_MODEL_ZOO_H_

#include <string>

#include "src/common/rng.h"
#include "src/model/profile.h"

namespace bsched {

// ~138 M params (552 MB fp32); giant fc6 tensor (411 MB) near the output.
ModelProfile Vgg16();

// ~144 M params; VGG16 plus three extra conv layers.
ModelProfile Vgg19();

// ~61 M params, very fast compute: the most communication-bound CNN here.
ModelProfile AlexNet();

// ~25.5 M params, compute-heavy: the least communication-bound model.
ModelProfile ResNet50();

// ~214 M params (transformer-big); huge embedding tensor at the input.
// sample_unit is "tokens", default batch 512 tokens/GPU as in the paper.
ModelProfile Transformer();

// BERT-large-like encoder stack: ~334 M params (1.3 GB fp32), 24 uniform
// encoder layers behind a large row-sparse embedding. Not part of the
// paper's evaluation; included for users studying deeper uniform models.
ModelProfile BertLarge();

// Returns the zoo model with the given name ("vgg16", "vgg19", "alexnet",
// "resnet50", "transformer", "bert-large"); aborts on unknown names.
ModelProfile ModelByName(const std::string& name);

// The 3-layer contrived DNN of the paper's Figure 2 (sizes/durations chosen
// so the optimal schedule beats FIFO by ~44 %).
ModelProfile ContrivedFig2Model();

// Random layered model for property/fuzz tests: layer sizes are log-uniform
// in [min_bytes, max_bytes], compute weights uniform.
struct SyntheticSpec {
  int num_layers = 10;
  Bytes min_layer_bytes = KiB(64);
  Bytes max_layer_bytes = MiB(64);
  SimTime total_compute = SimTime::Millis(100);
};
ModelProfile SyntheticModel(const SyntheticSpec& spec, Rng& rng);

}  // namespace bsched

#endif  // SRC_MODEL_ZOO_H_
