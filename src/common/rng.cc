#include "src/common/rng.h"

#include <cmath>

namespace bsched {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

Rng Rng::Fork() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace bsched
