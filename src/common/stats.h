// Small statistics helpers used by the harness (speed averaging) and the
// auto-tuner (noise estimation, search-cost summaries).
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace bsched {

// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  // Folds `other` into this accumulator (Chan et al. parallel combination),
  // as if every sample fed to `other` had been fed here. Lets SweepRunner
  // workers keep private accumulators and combine them after the join.
  void Merge(const RunningStats& other);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set with linear interpolation; p in [0, 100].
// Returns 0 for an empty vector.
double Percentile(std::vector<double> values, double p);

// Same, but selects in place over the caller's storage (partial reorder via
// std::nth_element, O(n) instead of a full sort) — no copy, no allocation.
// Percentile() above forwards here with a by-value copy for callers that
// need their vector untouched.
double PercentileInPlace(std::span<double> values, double p);

double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

}  // namespace bsched

#endif  // SRC_COMMON_STATS_H_
