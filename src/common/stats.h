// Small statistics helpers used by the harness (speed averaging) and the
// auto-tuner (noise estimation, search-cost summaries).
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace bsched {

// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set with linear interpolation; p in [0, 100].
// Returns 0 for an empty vector.
double Percentile(std::vector<double> values, double p);

double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

}  // namespace bsched

#endif  // SRC_COMMON_STATS_H_
