// Strongly-typed units used across the simulator: virtual time, byte counts,
// and bandwidths. Keeping these as distinct vocabulary types (rather than bare
// int64_t/double) prevents the classic unit-mixing bugs in timing code.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace bsched {

// Virtual simulation time with nanosecond resolution. Arithmetic is checked
// only by type discipline; the simulator never produces negative times.
class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}
  constexpr explicit SimTime(int64_t ns) : ns_(ns) {}

  static constexpr SimTime Nanos(int64_t v) { return SimTime(v); }
  static constexpr SimTime Micros(int64_t v) { return SimTime(v * 1000); }
  static constexpr SimTime Millis(int64_t v) { return SimTime(v * 1000 * 1000); }
  static constexpr SimTime Seconds(double v) {
    return SimTime(static_cast<int64_t>(v * 1e9));
  }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double ToMicros() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr SimTime operator+(SimTime o) const { return SimTime(ns_ + o.ns_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ns_ - o.ns_); }
  SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime operator*(int64_t k) const { return SimTime(ns_ * k); }
  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  int64_t ns_;
};

// A byte count. Plain alias: byte counts mix with sizes frequently enough that
// a wrapper class costs more than it protects.
using Bytes = int64_t;

constexpr Bytes KiB(int64_t v) { return v * 1024; }
constexpr Bytes MiB(int64_t v) { return v * 1024 * 1024; }
constexpr Bytes GiB(int64_t v) { return v * 1024 * 1024 * 1024; }

std::string FormatBytes(Bytes b);

// Link bandwidth. Stored as bytes per second; constructed from network-style
// decimal gigabits (1 Gbps == 1e9 bits/s) to match the paper's units.
class Bandwidth {
 public:
  constexpr Bandwidth() : bytes_per_sec_(0) {}
  static constexpr Bandwidth BytesPerSec(double v) {
    Bandwidth b;
    b.bytes_per_sec_ = v;
    return b;
  }
  static constexpr Bandwidth Gbps(double v) { return BytesPerSec(v * 1e9 / 8.0); }
  static constexpr Bandwidth Mbps(double v) { return BytesPerSec(v * 1e6 / 8.0); }

  constexpr double bytes_per_sec() const { return bytes_per_sec_; }
  constexpr double ToGbps() const { return bytes_per_sec_ * 8.0 / 1e9; }

  // Time to serialize `size` bytes at this rate (no per-message overhead).
  SimTime TransmitTime(Bytes size) const;

  constexpr auto operator<=>(const Bandwidth&) const = default;

 private:
  double bytes_per_sec_;
};

}  // namespace bsched

#endif  // SRC_COMMON_UNITS_H_
