// Execution-trace recording. The runtime can log per-op and per-tensor spans
// into a TraceRecorder, which exports Chrome trace-event JSON (load it in
// chrome://tracing or Perfetto to see compute/communication overlap — the
// quantity ByteScheduler optimizes).
#ifndef SRC_COMMON_TRACE_H_
#define SRC_COMMON_TRACE_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace bsched {

class TraceRecorder {
 public:
  // Records a complete span [start, end] on a named track (one trace "tid"
  // per track). Spans may be added in any order.
  void AddSpan(const std::string& track, const std::string& name, SimTime start, SimTime end);

  // Records a zero-duration instant marker.
  void AddInstant(const std::string& track, const std::string& name, SimTime at);

  size_t num_events() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  // Chrome trace-event JSON (array form); timestamps in microseconds.
  void WriteChromeTrace(std::ostream& os) const;

  // Total span time per track (utilization summaries in tests/tools).
  SimTime TrackBusyTime(const std::string& track) const;
  std::vector<std::string> Tracks() const;

 private:
  struct Event {
    std::string track;
    std::string name;
    SimTime start;
    SimTime end;  // == start for instants
    bool instant = false;
  };

  int TrackId(const std::string& track);

  std::vector<Event> events_;
  std::map<std::string, int> track_ids_;
};

}  // namespace bsched

#endif  // SRC_COMMON_TRACE_H_
