// Execution-trace recording. The runtime can log per-op and per-tensor spans
// into a TraceRecorder, which exports Chrome trace-event JSON (load it in
// chrome://tracing or Perfetto to see compute/communication overlap — the
// quantity ByteScheduler optimizes).
//
// Beyond plain spans and instants, the recorder supports:
//  - typed span metadata (TraceArg), rendered as the event's "args" object;
//  - flow events (Chrome phases "s"/"t"/"f"): points sharing a flow id are
//    drawn as one connected arc across tracks, which is how a partition's
//    life (queue admit -> link transit -> shard update -> pull -> finish)
//    stays followable in Perfetto.
// Track ids are assigned deterministically in first-use order, and the
// thread-name metadata is emitted in that same order.
#ifndef SRC_COMMON_TRACE_H_
#define SRC_COMMON_TRACE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace bsched {

// One typed key/value entry of a span's "args" metadata.
struct TraceArg {
  enum class Kind { kInt, kDouble, kString };

  std::string key;
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;

  static TraceArg Int(std::string key, int64_t v);
  static TraceArg Double(std::string key, double v);
  static TraceArg Str(std::string key, std::string v);
};

// Position of a flow point within its arc.
enum class FlowPhase {
  kStart,  // "s": opens the arc
  kStep,   // "t": intermediate hop
  kEnd,    // "f": closes the arc
};

class TraceRecorder {
 public:
  // Records a complete span [start, end] on a named track (one trace "tid"
  // per track). Spans may be added in any order.
  void AddSpan(const std::string& track, const std::string& name, SimTime start, SimTime end);
  void AddSpan(const std::string& track, const std::string& name, SimTime start, SimTime end,
               std::vector<TraceArg> args);

  // Records a zero-duration instant marker.
  void AddInstant(const std::string& track, const std::string& name, SimTime at);

  // Records one point of a flow arc. All points of one arc share `flow_id`
  // (which must be non-zero); Perfetto draws an arrow chain start -> steps ->
  // end across whatever tracks the points landed on.
  void AddFlow(const std::string& track, const std::string& name, SimTime at, uint64_t flow_id,
               FlowPhase phase);

  size_t num_events() const { return events_.size(); }
  size_t num_flow_events() const { return num_flow_events_; }
  bool empty() const { return events_.empty(); }

  // Chrome trace-event JSON (array form); timestamps in microseconds.
  void WriteChromeTrace(std::ostream& os) const;

  // Total span time per track (utilization summaries in tests/tools). Flow
  // points and instants contribute nothing.
  SimTime TrackBusyTime(const std::string& track) const;
  // Track names in lexicographic order.
  std::vector<std::string> Tracks() const;

 private:
  enum class EventKind { kSpan, kInstant, kFlow };

  struct Event {
    std::string track;
    std::string name;
    SimTime start;
    SimTime end;  // == start for instants and flow points
    EventKind kind = EventKind::kSpan;
    std::vector<TraceArg> args;
    uint64_t flow_id = 0;
    FlowPhase flow_phase = FlowPhase::kStart;
  };

  int TrackId(const std::string& track);

  std::vector<Event> events_;
  size_t num_flow_events_ = 0;
  // Track name -> tid, assigned in first-use order.
  std::map<std::string, int> track_ids_;
};

}  // namespace bsched

#endif  // SRC_COMMON_TRACE_H_
