#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

namespace bsched {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddNumericRow(const std::string& label, const std::vector<double>& values,
                          int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    cells.push_back(Num(v, precision));
  }
  AddRow(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::RenderAscii(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

void Table::RenderCsv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << row[c];
    }
    os << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

}  // namespace bsched
