#include "src/common/flags.h"

#include <cstdlib>

namespace bsched {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (!arg.empty() && arg[0] == '-') {
        errors_.push_back(arg);
      } else {
        positional_.push_back(arg);
      }
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      errors_.push_back(arg);
      continue;
    }
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" if the next token is not itself a flag; else bare bool.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::GetString(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it != values_.end() ? it->second : def;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  return it != values_.end() ? std::strtoll(it->second.c_str(), nullptr, 10) : def;
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it != values_.end() ? std::strtod(it->second.c_str(), nullptr) : def;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return def;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

namespace {

// "--trace" parses as the boolean "true"; treat that (and an explicit empty
// value) as "enabled with the default path".
std::string PathOrDefault(const Flags& flags, const std::string& name, const char* def) {
  if (!flags.Has(name)) {
    return "";
  }
  const std::string value = flags.GetString(name, "");
  if (value.empty() || value == "true") {
    return def;
  }
  return value;
}

}  // namespace

ObsFlags ParseObsFlags(const Flags& flags) {
  ObsFlags obs;
  obs.trace_path = PathOrDefault(flags, "trace", "trace.json");
  obs.metrics_path = PathOrDefault(flags, "metrics", "metrics.json");
  obs.timeseries_path = PathOrDefault(flags, "timeseries", "timeseries.csv");
  if (flags.GetBool("obs", false)) {
    if (obs.trace_path.empty()) {
      obs.trace_path = "trace.json";
    }
    if (obs.metrics_path.empty()) {
      obs.metrics_path = "metrics.json";
    }
    if (obs.timeseries_path.empty()) {
      obs.timeseries_path = "timeseries.csv";
    }
  }
  // --sample-every alone implies time-series sampling at that cadence.
  const int64_t sample_every_us = flags.GetInt("sample-every", 0);
  if (sample_every_us > 0 && obs.timeseries_path.empty()) {
    obs.timeseries_path = "timeseries.csv";
  }
  if (!obs.timeseries_path.empty()) {
    obs.sample_every_us = sample_every_us > 0 ? sample_every_us : 100;
  }
  return obs;
}

}  // namespace bsched
