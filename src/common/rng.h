// Deterministic pseudo-random number generation. Every stochastic element in
// the simulator (measurement jitter, random search, GP noise) draws from an
// explicitly-seeded Rng so experiments regenerate bit-identically.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace bsched {

// xoshiro256** — small, fast, high-quality, and fully reproducible across
// platforms (unlike std::mt19937's distribution implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Forks an independent stream; child streams are decorrelated from the
  // parent regardless of how many draws the parent later makes.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace bsched

#endif  // SRC_COMMON_RNG_H_
