// Lightweight invariant-checking macros. BSCHED_CHECK is always on (the
// simulator is cheap relative to the cost of silently-corrupt schedules);
// BSCHED_DCHECK compiles out in NDEBUG builds for hot paths.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace bsched {
namespace check_internal {

[[noreturn]] inline void CheckFail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace check_internal
}  // namespace bsched

#define BSCHED_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::bsched::check_internal::CheckFail(#cond, __FILE__, __LINE__);   \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define BSCHED_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define BSCHED_DCHECK(cond) BSCHED_CHECK(cond)
#endif

#endif  // SRC_COMMON_CHECK_H_
