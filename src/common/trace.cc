#include "src/common/trace.h"

#include "src/common/check.h"

namespace bsched {
namespace {

// Minimal JSON string escaping (quotes and backslashes; our names are ASCII).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void TraceRecorder::AddSpan(const std::string& track, const std::string& name, SimTime start,
                            SimTime end) {
  BSCHED_CHECK(end >= start);
  events_.push_back(Event{track, name, start, end, false});
  TrackId(track);
}

void TraceRecorder::AddInstant(const std::string& track, const std::string& name, SimTime at) {
  events_.push_back(Event{track, name, at, at, true});
  TrackId(track);
}

int TraceRecorder::TrackId(const std::string& track) {
  auto [it, inserted] = track_ids_.emplace(track, static_cast<int>(track_ids_.size()));
  return it->second;
}

void TraceRecorder::WriteChromeTrace(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  for (const auto& [track, tid] : track_ids_) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << R"({"ph":"M","pid":1,"tid":)" << tid
       << R"(,"name":"thread_name","args":{"name":")" << Escape(track) << "\"}}";
  }
  for (const Event& ev : events_) {
    const int tid = track_ids_.at(ev.track);
    if (!first) {
      os << ",\n";
    }
    first = false;
    if (ev.instant) {
      os << R"({"ph":"i","pid":1,"tid":)" << tid << R"(,"ts":)" << ev.start.ToMicros()
         << R"(,"s":"t","name":")" << Escape(ev.name) << "\"}";
    } else {
      os << R"({"ph":"X","pid":1,"tid":)" << tid << R"(,"ts":)" << ev.start.ToMicros()
         << R"(,"dur":)" << (ev.end - ev.start).ToMicros() << R"(,"name":")" << Escape(ev.name)
         << "\"}";
    }
  }
  os << "\n]\n";
}

SimTime TraceRecorder::TrackBusyTime(const std::string& track) const {
  SimTime total;
  for (const Event& ev : events_) {
    if (ev.track == track && !ev.instant) {
      total += ev.end - ev.start;
    }
  }
  return total;
}

std::vector<std::string> TraceRecorder::Tracks() const {
  std::vector<std::string> tracks;
  tracks.reserve(track_ids_.size());
  for (const auto& [track, id] : track_ids_) {
    tracks.push_back(track);
  }
  return tracks;
}

}  // namespace bsched
