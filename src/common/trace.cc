#include "src/common/trace.h"

#include <cstdio>

#include "src/common/check.h"

namespace bsched {
namespace {

// Full JSON string escaping: quotes, backslashes, and control characters
// (tensor names like grad["fc1"] or layer\tname must survive round-trip).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xFF);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Fixed-precision microsecond timestamps: default double formatting drops
// sub-microsecond digits past 6 significant figures, which breaks span
// ordering for long runs.
std::string Micros(SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", t.ToMicros());
  return buf;
}

void WriteArgs(std::ostream& os, const std::vector<TraceArg>& args) {
  os << R"(,"args":{)";
  bool first = true;
  for (const TraceArg& arg : args) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << '"' << Escape(arg.key) << "\":";
    switch (arg.kind) {
      case TraceArg::Kind::kInt:
        os << arg.int_value;
        break;
      case TraceArg::Kind::kDouble:
        os << arg.double_value;
        break;
      case TraceArg::Kind::kString:
        os << '"' << Escape(arg.string_value) << '"';
        break;
    }
  }
  os << "}";
}

}  // namespace

TraceArg TraceArg::Int(std::string key, int64_t v) {
  TraceArg arg;
  arg.key = std::move(key);
  arg.kind = Kind::kInt;
  arg.int_value = v;
  return arg;
}

TraceArg TraceArg::Double(std::string key, double v) {
  TraceArg arg;
  arg.key = std::move(key);
  arg.kind = Kind::kDouble;
  arg.double_value = v;
  return arg;
}

TraceArg TraceArg::Str(std::string key, std::string v) {
  TraceArg arg;
  arg.key = std::move(key);
  arg.kind = Kind::kString;
  arg.string_value = std::move(v);
  return arg;
}

void TraceRecorder::AddSpan(const std::string& track, const std::string& name, SimTime start,
                            SimTime end) {
  AddSpan(track, name, start, end, {});
}

void TraceRecorder::AddSpan(const std::string& track, const std::string& name, SimTime start,
                            SimTime end, std::vector<TraceArg> args) {
  BSCHED_CHECK(end >= start);
  Event ev;
  ev.track = track;
  ev.name = name;
  ev.start = start;
  ev.end = end;
  ev.kind = EventKind::kSpan;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
  TrackId(track);
}

void TraceRecorder::AddInstant(const std::string& track, const std::string& name, SimTime at) {
  Event ev;
  ev.track = track;
  ev.name = name;
  ev.start = at;
  ev.end = at;
  ev.kind = EventKind::kInstant;
  events_.push_back(std::move(ev));
  TrackId(track);
}

void TraceRecorder::AddFlow(const std::string& track, const std::string& name, SimTime at,
                            uint64_t flow_id, FlowPhase phase) {
  BSCHED_CHECK(flow_id != 0);
  Event ev;
  ev.track = track;
  ev.name = name;
  ev.start = at;
  ev.end = at;
  ev.kind = EventKind::kFlow;
  ev.flow_id = flow_id;
  ev.flow_phase = phase;
  events_.push_back(std::move(ev));
  ++num_flow_events_;
  TrackId(track);
}

int TraceRecorder::TrackId(const std::string& track) {
  auto [it, inserted] = track_ids_.emplace(track, static_cast<int>(track_ids_.size()));
  return it->second;
}

void TraceRecorder::WriteChromeTrace(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  // Thread-name metadata in ascending tid order (== first-use order), so the
  // file layout is deterministic and matches Perfetto's track numbering.
  std::vector<const std::string*> by_tid(track_ids_.size());
  for (const auto& [track, tid] : track_ids_) {
    by_tid[static_cast<size_t>(tid)] = &track;
  }
  for (size_t tid = 0; tid < by_tid.size(); ++tid) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << R"({"ph":"M","pid":1,"tid":)" << tid
       << R"(,"name":"thread_name","args":{"name":")" << Escape(*by_tid[tid]) << "\"}}";
  }
  for (const Event& ev : events_) {
    const int tid = track_ids_.at(ev.track);
    if (!first) {
      os << ",\n";
    }
    first = false;
    switch (ev.kind) {
      case EventKind::kInstant:
        os << R"({"ph":"i","pid":1,"tid":)" << tid << R"(,"ts":)" << Micros(ev.start)
           << R"(,"s":"t","name":")" << Escape(ev.name) << "\"}";
        break;
      case EventKind::kSpan:
        os << R"({"ph":"X","pid":1,"tid":)" << tid << R"(,"ts":)" << Micros(ev.start)
           << R"(,"dur":)" << Micros(ev.end - ev.start) << R"(,"name":")" << Escape(ev.name)
           << '"';
        if (!ev.args.empty()) {
          WriteArgs(os, ev.args);
        }
        os << "}";
        break;
      case EventKind::kFlow: {
        const char* ph = ev.flow_phase == FlowPhase::kStart  ? "s"
                         : ev.flow_phase == FlowPhase::kStep ? "t"
                                                             : "f";
        os << R"({"ph":")" << ph << R"(","cat":"flow","id":)" << ev.flow_id
           << R"(,"pid":1,"tid":)" << tid << R"(,"ts":)" << Micros(ev.start);
        if (ev.flow_phase == FlowPhase::kEnd) {
          // Bind to the enclosing slice so the arrow lands on the span that
          // contains this point rather than the next slice to start.
          os << R"(,"bp":"e")";
        }
        os << R"(,"name":")" << Escape(ev.name) << "\"}";
        break;
      }
    }
  }
  os << "\n]\n";
}

SimTime TraceRecorder::TrackBusyTime(const std::string& track) const {
  SimTime total;
  for (const Event& ev : events_) {
    if (ev.track == track && ev.kind == EventKind::kSpan) {
      total += ev.end - ev.start;
    }
  }
  return total;
}

std::vector<std::string> TraceRecorder::Tracks() const {
  std::vector<std::string> tracks;
  tracks.reserve(track_ids_.size());
  for (const auto& [track, id] : track_ids_) {
    tracks.push_back(track);
  }
  return tracks;
}

}  // namespace bsched
