#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace bsched {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) {
    s.Add(v);
  }
  return s.mean();
}

double StdDev(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) {
    s.Add(v);
  }
  return s.stddev();
}

}  // namespace bsched
