#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace bsched {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  const size_t n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / static_cast<double>(n);
  n_ = n;
}

double Percentile(std::vector<double> values, double p) {
  return PercentileInPlace(values, p);
}

double PercentileInPlace(std::span<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  if (values.size() == 1) {
    return values[0];
  }
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(lo), values.end());
  const double lo_value = values[lo];
  if (hi == lo || frac == 0.0) {
    return lo_value;
  }
  // The hi-neighbor is the minimum of the partition right of lo.
  const double hi_value =
      *std::min_element(values.begin() + static_cast<ptrdiff_t>(lo) + 1, values.end());
  return lo_value * (1.0 - frac) + hi_value * frac;
}

double Mean(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) {
    s.Add(v);
  }
  return s.mean();
}

double StdDev(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) {
    s.Add(v);
  }
  return s.stddev();
}

}  // namespace bsched
