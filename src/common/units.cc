#include "src/common/units.h"

#include <cmath>
#include <cstdio>

namespace bsched {

std::string SimTime::ToString() const {
  char buf[64];
  if (ns_ >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds());
  } else if (ns_ >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ToMillis());
  } else if (ns_ >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ToMicros());
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string FormatBytes(Bytes b) {
  char buf[64];
  if (b >= GiB(1)) {
    std::snprintf(buf, sizeof(buf), "%.2fGiB", static_cast<double>(b) / GiB(1));
  } else if (b >= MiB(1)) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB", static_cast<double>(b) / MiB(1));
  } else if (b >= KiB(1)) {
    std::snprintf(buf, sizeof(buf), "%.2fKiB", static_cast<double>(b) / KiB(1));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldB", static_cast<long long>(b));
  }
  return buf;
}

SimTime Bandwidth::TransmitTime(Bytes size) const {
  if (bytes_per_sec_ <= 0) {
    return SimTime::Max();
  }
  double sec = static_cast<double>(size) / bytes_per_sec_;
  return SimTime(static_cast<int64_t>(std::llround(sec * 1e9)));
}

}  // namespace bsched
