// Tiny command-line flag parser for the example/bench executables.
// Accepts --key=value and --key value; bare --key is a boolean true.
#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace bsched {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  // Arguments that were not --flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }
  // Tokens that looked malformed (e.g. "-x"), for error reporting.
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

// Observability artifact paths parsed from the shared --trace / --metrics /
// --timeseries / --sample-every / --obs flags. Every figure binary that
// accepts these can emit a Chrome trace, a metrics snapshot and a sim-time
// series CSV next to its normal output.
struct ObsFlags {
  std::string trace_path;       // empty = tracing off
  std::string metrics_path;     // empty = metrics off
  std::string timeseries_path;  // empty = time-series sampling off
  // Sampling cadence in simulated microseconds (only meaningful when
  // timeseries_path is set; defaults to 100us).
  int64_t sample_every_us = 0;

  bool enabled() const {
    return !trace_path.empty() || !metrics_path.empty() || !timeseries_path.empty();
  }
};

// --trace[=path], --metrics[=path] and --timeseries[=path] enable the
// respective sink (default paths "trace.json" / "metrics.json" /
// "timeseries.csv" when no value is given); bare --obs enables all three
// with default paths. --sample-every=<us> sets the sampling cadence (and
// implies --timeseries when given alone; default 100us).
ObsFlags ParseObsFlags(const Flags& flags);

}  // namespace bsched

#endif  // SRC_COMMON_FLAGS_H_
