// Console table / CSV emitter used by the benchmark harness to print the
// rows and series that each paper figure reports.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace bsched {

// Accumulates rows of string cells and renders them either as an aligned
// ASCII table (for terminal inspection) or CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds one row; the row is padded or truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats each double with the given precision.
  void AddNumericRow(const std::string& label, const std::vector<double>& values,
                     int precision = 1);

  size_t num_rows() const { return rows_.size(); }

  void RenderAscii(std::ostream& os) const;
  void RenderCsv(std::ostream& os) const;

  // Formats a double compactly (fixed precision, no trailing spaces).
  static std::string Num(double v, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bsched

#endif  // SRC_COMMON_TABLE_H_
