// Parallel execution of independent simulations. Every experiment grid in
// this repo (auto-tuner trial batches, the Figure 10-14 setup x scale x mode
// sweeps, the chaos seed x plan grid) runs complete Simulator instances that
// share no state, so they can evaluate concurrently as long as results are
// consumed in input order — which keeps every sweep bit-identical to its
// serial execution regardless of the worker count.
#ifndef SRC_EXEC_SWEEP_RUNNER_H_
#define SRC_EXEC_SWEEP_RUNNER_H_

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/exec/thread_pool.h"

namespace bsched {

class SweepRunner {
 public:
  // `jobs` worker threads; 0 picks the process-wide default (see
  // SetDefaultJobs), which itself defaults to the hardware concurrency.
  // jobs == 1 runs everything inline on the calling thread.
  explicit SweepRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  // Runs fn(i) for every i in [0, n) and returns the results in input order.
  // With jobs > 1 the closures execute concurrently on the pool; fn must not
  // touch shared mutable state. If any closure throws, the exception of the
  // lowest-index failure is rethrown after every launched closure finished
  // (with jobs == 1, items after the first failure never start).
  template <typename Fn>
  auto ParallelFor(size_t n, Fn&& fn) {
    using R = std::invoke_result_t<Fn&, size_t>;
    if constexpr (std::is_void_v<R>) {
      RunAll(n, [&fn](size_t i) { fn(i); });
    } else {
      std::vector<std::optional<R>> slots(n);
      RunAll(n, [&fn, &slots](size_t i) { slots[i].emplace(fn(i)); });
      std::vector<R> results;
      results.reserve(n);
      for (std::optional<R>& slot : slots) {
        results.push_back(std::move(*slot));
      }
      return results;
    }
  }

  // Pool execution stats (per-worker task counts, idle time, task
  // durations). Empty when everything ran inline (jobs == 1 or no parallel
  // RunAll happened yet).
  PoolStats Stats() const { return pool_ != nullptr ? pool_->Stats() : PoolStats{}; }

  // Process-wide default worker count used when a SweepRunner (or one of the
  // sweep entry points taking a `jobs` parameter) is given jobs == 0.
  // Installed by the --jobs flag of the bench/example binaries.
  // 0 restores the built-in default (hardware concurrency).
  static void SetDefaultJobs(int jobs);
  static int DefaultJobs();

 private:
  // Dispatches fn(i) over the pool (or inline when jobs_ == 1) and blocks
  // until all n items finished; rethrows the lowest-index exception.
  void RunAll(size_t n, const std::function<void(size_t)>& fn);

  int jobs_;
  std::unique_ptr<ThreadPool> pool_;  // created on first parallel RunAll
};

}  // namespace bsched

#endif  // SRC_EXEC_SWEEP_RUNNER_H_
