#include "src/exec/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace bsched {
namespace {

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

uint64_t PoolStats::total_tasks() const {
  uint64_t total = 0;
  for (const PoolWorkerStats& w : workers) {
    total += w.tasks;
  }
  return total;
}

double PoolStats::total_idle_sec() const {
  double total = 0.0;
  for (const PoolWorkerStats& w : workers) {
    total += w.idle_sec;
  }
  return total;
}

RunningStats PoolStats::merged_task_sec() const {
  RunningStats merged;
  for (const PoolWorkerStats& w : workers) {
    merged.Merge(w.task_sec);
  }
  return merged;
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  stats_.resize(n);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

PoolStats ThreadPool::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats snapshot;
  snapshot.workers = stats_;
  return snapshot;
}

void ThreadPool::WorkerLoop(int index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto wait_start = std::chrono::steady_clock::now();
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      stats_[index].idle_sec += SecondsBetween(wait_start, std::chrono::steady_clock::now());
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    const auto task_start = std::chrono::steady_clock::now();
    task();
    const double elapsed = SecondsBetween(task_start, std::chrono::steady_clock::now());
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_[index].tasks;
      stats_[index].task_sec.Add(elapsed);
    }
  }
}

}  // namespace bsched
