#include "src/exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace bsched {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace bsched
