#include "src/exec/sweep_runner.h"

#include <atomic>
#include <thread>

namespace bsched {
namespace {

std::atomic<int> g_default_jobs{0};

int HardwareJobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace

void SweepRunner::SetDefaultJobs(int jobs) { g_default_jobs.store(jobs, std::memory_order_relaxed); }

int SweepRunner::DefaultJobs() {
  const int configured = g_default_jobs.load(std::memory_order_relaxed);
  return configured > 0 ? configured : HardwareJobs();
}

SweepRunner::SweepRunner(int jobs) : jobs_(jobs > 0 ? jobs : DefaultJobs()) {}

void SweepRunner::RunAll(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (jobs_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(jobs_);
  }

  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
    // Lowest-index exception wins so propagation is deterministic.
    size_t first_error_index;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  shared->remaining = n;
  shared->first_error_index = n;

  for (size_t i = 0; i < n; ++i) {
    pool_->Submit([shared, &fn, i] {
      std::exception_ptr error;
      try {
        fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(shared->mu);
      if (error != nullptr && i < shared->first_error_index) {
        shared->first_error_index = i;
        shared->error = error;
      }
      if (--shared->remaining == 0) {
        shared->cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&shared] { return shared->remaining == 0; });
  if (shared->error != nullptr) {
    std::rethrow_exception(shared->error);
  }
}

}  // namespace bsched
