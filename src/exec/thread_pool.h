// Fixed-size worker pool backing the parallel sweep layer. Tasks are opaque
// closures executed FIFO; completion ordering is the caller's concern (see
// SweepRunner, which collects results by input index).
#ifndef SRC_EXEC_THREAD_POOL_H_
#define SRC_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/stats.h"

namespace bsched {

// Per-worker execution stats (wall-clock, host-side — unrelated to SimTime).
struct PoolWorkerStats {
  uint64_t tasks = 0;
  double idle_sec = 0.0;        // time spent waiting for work
  RunningStats task_sec;        // per-task execution time distribution
};

struct PoolStats {
  std::vector<PoolWorkerStats> workers;

  uint64_t total_tasks() const;
  double total_idle_sec() const;
  // All workers' task-time distributions folded into one accumulator.
  RunningStats merged_task_sec() const;
};

class ThreadPool {
 public:
  // Spawns `threads` workers (at least 1).
  explicit ThreadPool(int threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  // Blocks until queued tasks drain, then joins the workers.
  ~ThreadPool();

  // Enqueues a task; it runs on some worker thread. Must not be called after
  // destruction has begun.
  void Submit(std::function<void()> task);

  int size() const { return static_cast<int>(workers_.size()); }

  // Snapshot of per-worker task counts, idle time, and task durations.
  // Callable at any time; in-progress tasks are not yet counted.
  PoolStats Stats() const;

 private:
  void WorkerLoop(int index);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  // Written by each worker under mu_ (wait exit / task completion).
  std::vector<PoolWorkerStats> stats_;
  std::vector<std::thread> workers_;
};

}  // namespace bsched

#endif  // SRC_EXEC_THREAD_POOL_H_
