// Fixed-size worker pool backing the parallel sweep layer. Tasks are opaque
// closures executed FIFO; completion ordering is the caller's concern (see
// SweepRunner, which collects results by input index).
#ifndef SRC_EXEC_THREAD_POOL_H_
#define SRC_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bsched {

class ThreadPool {
 public:
  // Spawns `threads` workers (at least 1).
  explicit ThreadPool(int threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  // Blocks until queued tasks drain, then joins the workers.
  ~ThreadPool();

  // Enqueues a task; it runs on some worker thread. Must not be called after
  // destruction has begun.
  void Submit(std::function<void()> task);

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bsched

#endif  // SRC_EXEC_THREAD_POOL_H_
