#include "src/net/rate_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace bsched {
namespace {

// Collapse adjacent steps with equal scale so NextChangeAfter never reports a
// breakpoint where nothing changes (keeps the Link's re-pace walk minimal).
std::vector<RateStep> Dedup(std::vector<RateStep> steps) {
  std::vector<RateStep> out;
  out.reserve(steps.size());
  for (const RateStep& s : steps) {
    if (!out.empty() && out.back().scale == s.scale) continue;
    out.push_back(s);
  }
  return out;
}

}  // namespace

RateModel::RateModel() : steps_{{SimTime(), 1.0}} {}

RateModel RateModel::Constant(double scale) {
  BSCHED_CHECK(scale >= 0.0 && "rate scale must be non-negative");
  RateModel m;
  m.steps_ = {{SimTime(), scale}};
  return m;
}

RateModel RateModel::Piecewise(std::vector<RateStep> steps) {
  RateModel m;
  if (steps.empty()) return m;
  for (size_t i = 0; i < steps.size(); ++i) {
    BSCHED_CHECK(steps[i].scale >= 0.0 && "rate scale must be non-negative");
    if (i > 0) BSCHED_CHECK(steps[i - 1].start < steps[i].start && "steps must be sorted, unique");
  }
  if (steps.front().start > SimTime()) {
    steps.insert(steps.begin(), RateStep{SimTime(), 1.0});
  }
  m.steps_ = Dedup(std::move(steps));
  return m;
}

RateModel RateModel::RandomWalk(uint64_t seed, double amplitude, SimTime period,
                                SimTime horizon) {
  BSCHED_CHECK(amplitude >= 0.0 && amplitude <= 1.0 && "amplitude must lie in [0, 1]");
  if (amplitude == 0.0 || period <= SimTime() || horizon <= SimTime()) return RateModel();
  const double lo = std::max(1.0 - amplitude, kMinScale);
  Rng rng(seed ^ 0x7a7e9a11d51f7ULL);
  std::vector<RateStep> steps;
  double scale = 1.0;
  for (SimTime t; t < horizon; t += period) {
    steps.push_back({t, scale});
    // Reflected step: wander within [lo, 1] without sticking to the walls.
    scale += rng.Uniform(-1.0, 1.0) * amplitude * 0.35;
    if (scale > 1.0) scale = 2.0 - scale;
    if (scale < lo) scale = 2.0 * lo - scale;
    scale = std::min(1.0, std::max(lo, scale));
  }
  return Piecewise(std::move(steps));
}

RateModel RateModel::CrossTraffic(uint64_t seed, int flows, double load, SimTime period,
                                  double duty, SimTime horizon) {
  BSCHED_CHECK(load >= 0.0 && load < 1.0 && "per-flow load must lie in [0, 1)");
  BSCHED_CHECK(duty >= 0.0 && duty <= 1.0 && "duty cycle must lie in [0, 1]");
  if (flows <= 0 || load == 0.0 || duty == 0.0 || period <= SimTime() || horizon <= SimTime()) {
    return RateModel();
  }
  RateModel composite;
  for (int f = 0; f < flows; ++f) {
    Rng rng(seed ^ (0xc0551f10ULL + static_cast<uint64_t>(f) * 0x9e3779b97f4a7c15ULL));
    std::vector<RateStep> steps;
    // Each flow free-runs its own jittered on/off cycle from a random phase.
    SimTime t = SimTime(rng.UniformInt(0, period.nanos()));
    if (t > SimTime()) steps.push_back({SimTime(), 1.0});
    while (t < horizon) {
      const SimTime cycle = SimTime(llround(static_cast<double>(period.nanos()) * rng.Uniform(0.7, 1.3)));
      SimTime on = SimTime(llround(static_cast<double>(cycle.nanos()) * duty * rng.Uniform(0.6, 1.4)));
      on = std::min(on, cycle);
      if (on > SimTime()) {
        steps.push_back({t, 1.0 - load});
        steps.push_back({t + on, 1.0});
      }
      t += cycle;
    }
    composite = Compose(composite, Piecewise(std::move(steps)));
  }
  // Foreground progress floor: stacked flows must not starve the link.
  std::vector<RateStep> floored = composite.steps_;
  for (RateStep& s : floored) s.scale = std::max(s.scale, kMinScale);
  composite.steps_ = Dedup(std::move(floored));
  return composite;
}

RateModel RateModel::Compose(const RateModel& a, const RateModel& b) {
  if (a.IsIdentity()) return b;
  if (b.IsIdentity()) return a;
  std::vector<RateStep> merged;
  merged.reserve(a.steps_.size() + b.steps_.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.steps_.size() || j < b.steps_.size()) {
    SimTime t;
    if (j >= b.steps_.size()) {
      t = a.steps_[i].start;
    } else if (i >= a.steps_.size()) {
      t = b.steps_[j].start;
    } else {
      t = std::min(a.steps_[i].start, b.steps_[j].start);
    }
    while (i < a.steps_.size() && a.steps_[i].start == t) ++i;
    while (j < b.steps_.size() && b.steps_[j].start == t) ++j;
    merged.push_back({t, a.steps_[i - 1].scale * b.steps_[j - 1].scale});
  }
  RateModel m;
  m.steps_ = Dedup(std::move(merged));
  return m;
}

double RateModel::ScaleAt(SimTime now) const {
  // Last step with start <= now; steps_[0].start == 0 guarantees a hit.
  auto it = std::upper_bound(steps_.begin(), steps_.end(), now,
                             [](SimTime t, const RateStep& s) { return t < s.start; });
  return (it - 1)->scale;
}

SimTime RateModel::NextChangeAfter(SimTime now) const {
  auto it = std::upper_bound(steps_.begin(), steps_.end(), now,
                             [](SimTime t, const RateStep& s) { return t < s.start; });
  return it == steps_.end() ? SimTime::Max() : it->start;
}

}  // namespace bsched
