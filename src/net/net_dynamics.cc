#include "src/net/net_dynamics.h"

namespace bsched {
namespace {

// FNV-1a + finalizer; independent of FaultPlan::HashSite so fault and rate
// streams stay decorrelated even when both key on the same link name.
uint64_t HashLinkName(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

RateModel BuildLinkRateModel(const NetDynamicsConfig& config, const std::string& link_name,
                             bool down) {
  const uint64_t site = HashLinkName(link_name);
  RateModel model;
  if (config.volatility_amplitude > 0.0) {
    model = RateModel::Compose(
        model, RateModel::RandomWalk(config.seed ^ site ^ 0xd71f7a11ULL,
                                     config.volatility_amplitude, config.volatility_period,
                                     config.horizon));
  }
  if (config.cross_flows > 0) {
    model = RateModel::Compose(
        model, RateModel::CrossTraffic(config.seed ^ site ^ 0xc7055ee4ULL, config.cross_flows,
                                       config.cross_load, config.cross_period, config.cross_duty,
                                       config.horizon));
  }
  if (down && config.down_scale != 1.0) {
    model = RateModel::Compose(model, RateModel::Constant(config.down_scale));
  }
  return model;
}

double CrossRackScale(const NetDynamicsConfig& config, int worker, int shard) {
  if (!config.topology()) return 1.0;
  const bool same_rack = (worker % config.racks) == (shard % config.racks);
  return same_rack ? 1.0 : 1.0 / config.oversubscription;
}

}  // namespace bsched
