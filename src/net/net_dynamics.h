// Job-level configuration for the dynamic-network fabric: seeded random-walk
// bandwidth drift, CASSINI-style cross traffic, asymmetric up/down rates, an
// oversubscribed two-tier rack topology, and loss-driven AIMD rate control.
// Everything derives deterministically from (seed, link name), mirroring the
// FaultPlan discipline, so enabling dynamics keeps results bit-identical at
// any --shards K / --jobs N. A default-constructed config is fully disabled
// and leaves the legacy fixed-rate Link path untouched (zero cost).
#ifndef SRC_NET_NET_DYNAMICS_H_
#define SRC_NET_NET_DYNAMICS_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"
#include "src/net/rate_controller.h"
#include "src/net/rate_model.h"

namespace bsched {

struct NetDynamicsConfig {
  uint64_t seed = 1;

  // Random-walk bandwidth drift: every link wanders within
  // [1 - volatility_amplitude, 1] of its line rate, stepping every period.
  double volatility_amplitude = 0.0;
  SimTime volatility_period = SimTime::Millis(2);

  // Cross traffic: seeded on/off background flows per link, each claiming
  // cross_load of capacity while on (duty cycle of the jittered period).
  int cross_flows = 0;
  double cross_load = 0.4;
  SimTime cross_period = SimTime::Millis(3);
  double cross_duty = 0.5;

  // Asymmetric rates: receive-direction links (worker downlinks) run at this
  // fraction of the line rate. 1.0 = symmetric.
  double down_scale = 1.0;

  // Schedules span [0, horizon) and hold their last value afterwards.
  SimTime horizon = SimTime::Millis(600);

  // Two-tier topology: with racks > 1, worker w lives in rack w % racks and
  // PS shard s in rack s % racks; cross-rack transfers traverse the
  // oversubscribed spine and are paced at line_rate / oversubscription.
  int racks = 1;
  double oversubscription = 4.0;

  AimdConfig aimd;

  // Install identity rate models even when no knob is active. The zero-cost
  // regression tests and the enabled-but-idle perf gates measure exactly this
  // path: dynamic pacing machinery on, schedules flat.
  bool force_enable = false;

  bool volatile_links() const {
    return volatility_amplitude > 0.0 || cross_flows > 0 || down_scale != 1.0;
  }
  bool topology() const { return racks > 1 && oversubscription > 1.0; }
  bool enabled() const {
    return force_enable || volatile_links() || topology() || aimd.enable;
  }
};

// Deterministic schedule for one named link: random-walk drift composed with
// cross traffic, each salted by a hash of the link name; `down` additionally
// applies the asymmetric down_scale derating.
RateModel BuildLinkRateModel(const NetDynamicsConfig& config, const std::string& link_name,
                             bool down);

// Pacing multiplier for one worker<->shard transfer under the two-tier
// topology: 1.0 within a rack, 1 / oversubscription across the spine.
double CrossRackScale(const NetDynamicsConfig& config, int worker, int shard);

}  // namespace bsched

#endif  // SRC_NET_NET_DYNAMICS_H_
