// Loss-driven AIMD rate control on top of a Link's RateModel seam. The PS
// backend's ack/retransmit machinery is the feedback signal: a push whose ack
// timer fires (loss) multiplicatively decreases the sender's pacing scale; a
// clean ack additively recovers it toward full rate. The controller only
// touches its own worker's uplink on that worker's simulator, so decisions
// replay bit-identically at any shard count.
#ifndef SRC_NET_RATE_CONTROLLER_H_
#define SRC_NET_RATE_CONTROLLER_H_

#include <cstdint>

namespace bsched {

class Link;

struct AimdConfig {
  bool enable = false;
  // Scale recovered per clean ack and retained floor after decreases.
  double additive_increase = 0.05;
  double multiplicative_decrease = 0.5;
  double min_scale = 0.1;
};

class RateController {
 public:
  RateController(Link* link, const AimdConfig& config);

  // Ack timer fired: back off multiplicatively (floored at min_scale).
  void OnLoss();
  // Ack arrived in time: recover additively toward full rate.
  void OnAck();

  double scale() const { return scale_; }
  uint64_t decreases() const { return decreases_; }
  uint64_t increases() const { return increases_; }

 private:
  Link* link_;
  AimdConfig config_;
  double scale_ = 1.0;
  uint64_t decreases_ = 0;
  uint64_t increases_ = 0;
};

}  // namespace bsched

#endif  // SRC_NET_RATE_CONTROLLER_H_
