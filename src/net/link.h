// Directional network links. A Link serializes message transmissions in FIFO
// order at the transport's effective rate; a DuplexLink bundles the two
// directions of a full-duplex NIC, which is what makes the paper's
// push/pull pipelining argument observable (partitioned tensors keep both
// directions busy; unpartitioned ones waste half the bandwidth).
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <functional>
#include <string>

#include "src/common/units.h"
#include "src/fault/fault_injector.h"
#include "src/net/transport.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace bsched {

class ObsContext;
class Counter;
class Gauge;
class Histogram;

class Link {
 public:
  Link(Simulator* sim, std::string name, Bandwidth line_rate, const TransportModel& transport);

  // Enqueues a message of `size` bytes. `on_delivered` fires when the message
  // reaches the far end: occupancy (serialization + serial overhead) plus the
  // transport's pipelined latency. The link frees at occupancy end, so
  // subsequent messages overlap with in-flight latency.
  void Send(Bytes size, std::function<void()> on_delivered);

  // Like Send, but also reports the sender-side flush (occupancy end, when
  // the stack accepts the next message). ps-lite-style push completions are
  // flush-time events; delivery-time events drive the receiving side.
  void SendWithFlush(Bytes size, std::function<void()> on_flushed,
                     std::function<void()> on_delivered);

  // Sharded-mode variant: identical sender-side behavior (occupancy, flush,
  // obs counters, fault fate), but instead of scheduling the delivery on this
  // link's own Simulator, hands the computed wire flight (pipelined latency
  // plus any injected delay) to `deliver` at flush time. The caller forwards
  // it across the shard boundary (ShardCoordinator::Post). Dropped messages
  // never invoke `deliver`, exactly as they never invoke on_delivered.
  void SendCrossShard(Bytes size, std::function<void()> on_flushed,
                      std::function<void(SimTime wire_flight)> deliver);

  // Time a message of `size` occupies this link (excludes pipelined latency).
  SimTime MessageTime(Bytes size) const { return transport_.MessageTime(line_rate_, size); }

  Bandwidth effective_rate() const { return transport_.EffectiveRate(line_rate_); }
  const TransportModel& transport() const { return transport_; }

  Bytes bytes_sent() const { return bytes_sent_; }
  SimTime busy_time() const { return resource_.busy_time(); }
  uint64_t messages_sent() const { return resource_.jobs_completed(); }
  size_t queue_length() const { return resource_.queue_length(); }
  bool busy() const { return resource_.busy(); }
  const std::string& name() const { return resource_.name(); }

  // Fault injection: when set, every delivery consults the injector at flush
  // time — a dropped message pays its occupancy (the sender flushed it) but
  // never delivers; delayed messages add the injected latency on the wire.
  // Null (the default) keeps the exact fault-free event sequence.
  void SetFaultInjector(FaultInjector* faults);
  FaultInjector* fault_injector() const { return faults_; }

  // Observability: registers and caches this link's metric handles
  // (net.<name>.bytes/.msgs/.queue_ns/.inflight_bytes). Null obs (or obs
  // without a metrics registry) keeps the hot path to one pointer check.
  void SetObs(ObsContext* obs);
  // Final gauges derived from accumulated state (net.<name>.busy_ns);
  // call once after the run.
  void ExportMetrics();

 private:
  Simulator* sim_;
  Bandwidth line_rate_;
  TransportModel transport_;
  Resource resource_;
  Bytes bytes_sent_ = 0;
  FaultInjector* faults_ = nullptr;
  uint64_t site_hash_ = 0;
  ObsContext* obs_ = nullptr;
  // Cached handles; obs_bytes_ doubles as the "instrumented?" flag.
  Counter* obs_bytes_ = nullptr;
  Counter* obs_msgs_ = nullptr;
  Histogram* obs_queue_ns_ = nullptr;
  Gauge* obs_inflight_ = nullptr;
};

// The two directions of one NIC.
class DuplexLink {
 public:
  DuplexLink(Simulator* sim, const std::string& name, Bandwidth line_rate,
             const TransportModel& transport);

  Link& up() { return up_; }
  Link& down() { return down_; }

  void SetFaultInjector(FaultInjector* faults) {
    up_.SetFaultInjector(faults);
    down_.SetFaultInjector(faults);
  }

 private:
  Link up_;
  Link down_;
};

}  // namespace bsched

#endif  // SRC_NET_LINK_H_
