// Directional network links. A Link serializes message transmissions in FIFO
// order at the transport's effective rate; a DuplexLink bundles the two
// directions of a full-duplex NIC, which is what makes the paper's
// push/pull pipelining argument observable (partitioned tensors keep both
// directions busy; unpartitioned ones waste half the bandwidth).
//
// Two transmission paths share one flush/fault/deliver epilogue:
//   - Legacy fixed-rate path (default): occupancy is a single Resource job of
//     MessageTime(size). Zero-cost contract: without a RateModel installed the
//     event sequence is bit-identical to what it was before dynamics existed.
//   - Dynamic path (SetRateModel): occupancy integrates the link's
//     time-varying rate — schedule scale × AIMD controller scale × per-message
//     scale (cross-rack derating) — re-pacing the in-flight transfer whenever
//     the controller changes rates mid-message. With an identity schedule and
//     unit scales the integral collapses to the exact legacy arithmetic
//     (same llround, same operation order), so enabled-but-idle dynamics
//     reproduce legacy timings bit-for-bit.
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/common/units.h"
#include "src/fault/fault_injector.h"
#include "src/net/rate_model.h"
#include "src/net/transport.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace bsched {

class ObsContext;
class Counter;
class Gauge;
class Histogram;

class Link {
 public:
  Link(Simulator* sim, std::string name, Bandwidth line_rate, const TransportModel& transport);

  // Enqueues a message of `size` bytes. `on_delivered` fires when the message
  // reaches the far end: occupancy (serialization + serial overhead) plus the
  // transport's pipelined latency. The link frees at occupancy end, so
  // subsequent messages overlap with in-flight latency.
  void Send(Bytes size, std::function<void()> on_delivered);

  // Like Send, but also reports the sender-side flush (occupancy end, when
  // the stack accepts the next message). ps-lite-style push completions are
  // flush-time events; delivery-time events drive the receiving side.
  void SendWithFlush(Bytes size, std::function<void()> on_flushed,
                     std::function<void()> on_delivered);

  // Sharded-mode variant: identical sender-side behavior (occupancy, flush,
  // obs counters, fault fate), but instead of scheduling the delivery on this
  // link's own Simulator, hands the computed wire flight (pipelined latency
  // plus any injected delay) to `deliver` at flush time. The caller forwards
  // it across the shard boundary (ShardCoordinator::Post). Dropped messages
  // never invoke `deliver`, exactly as they never invoke on_delivered.
  void SendCrossShard(Bytes size, std::function<void()> on_flushed,
                      std::function<void(SimTime wire_flight)> deliver);
  // With a per-message pacing scale (two-tier topology: cross-rack transfers
  // run at line_rate / oversubscription). Requires the dynamic path unless
  // msg_scale == 1.0.
  void SendCrossShard(Bytes size, double msg_scale, std::function<void()> on_flushed,
                      std::function<void(SimTime wire_flight)> deliver);

  // Time a message of `size` occupies this link at the nominal (static) rate
  // (excludes pipelined latency). Scheduler estimates use this even under
  // dynamics — admission planning sees the advertised rate, not the future.
  SimTime MessageTime(Bytes size) const { return transport_.MessageTime(line_rate_, size); }

  Bandwidth effective_rate() const { return transport_.EffectiveRate(line_rate_); }
  const TransportModel& transport() const { return transport_; }

  Bytes bytes_sent() const { return bytes_sent_; }
  SimTime busy_time() const;
  uint64_t messages_sent() const;
  size_t queue_length() const;
  bool busy() const;
  const std::string& name() const { return resource_.name(); }
  // Virtual time at which all currently queued work will have drained
  // (queued messages estimated at their nominal per-message rate).
  SimTime DrainTime() const;

  // --- Dynamic rate path -----------------------------------------------
  // Installs a time-varying capacity schedule and switches transmissions to
  // the integrating path. Must be called before any traffic.
  void SetRateModel(RateModel model);
  bool has_rate_model() const { return dyn_ != nullptr; }
  // AIMD controller hook: rescales the link's pacing and re-paces the
  // in-flight transfer from the bytes it has actually serialized so far.
  void SetCtrlScale(double scale);
  double ctrl_scale() const { return dyn_ != nullptr ? dyn_->ctrl_scale : 1.0; }
  // In-flight transfers re-paced by controller rate changes (obs counter).
  uint64_t repace_events() const { return dyn_ != nullptr ? dyn_->repaces : 0; }
  // Instantaneous effective rate (bytes/sec) under the current schedule and
  // controller scale; static effective rate when no model is installed.
  // Passive — feeds the time-series rate gauges.
  double CurrentRateBps() const;

  // Fault injection: when set, every delivery consults the injector at flush
  // time — a dropped message pays its occupancy (the sender flushed it) but
  // never delivers; delayed messages add the injected latency on the wire.
  // Null (the default) keeps the exact fault-free event sequence.
  void SetFaultInjector(FaultInjector* faults);
  FaultInjector* fault_injector() const { return faults_; }

  // Observability: registers and caches this link's metric handles
  // (net.<name>.bytes/.msgs/.queue_ns/.inflight_bytes). Null obs (or obs
  // without a metrics registry) keeps the hot path to one pointer check.
  void SetObs(ObsContext* obs);
  // Final gauges derived from accumulated state (net.<name>.busy_ns);
  // call once after the run.
  void ExportMetrics();

 private:
  struct DynMessage {
    Bytes size = 0;
    double msg_scale = 1.0;
    std::function<void()> on_flushed;
    std::function<void(SimTime)> deliver;
  };
  // State for the dynamic path; allocated only by SetRateModel so idle links
  // pay one pointer of overhead.
  struct DynState {
    RateModel model;
    double ctrl_scale = 1.0;
    std::deque<DynMessage> queue;
    bool busy = false;
    DynMessage current;
    // Payload bytes left to serialize as of `anchor` (transmission starts at
    // message start + serial_overhead; before that, anchor is that start).
    double remaining = 0.0;
    SimTime anchor;
    SimTime busy_since;
    SimTime completion_at;
    EventHandle completion;
    SimTime busy_time;
    uint64_t msgs_done = 0;
    uint64_t repaces = 0;
  };

  // Shared epilogue for both paths: inflight gauge, flush callback, fault
  // fate, delivery handoff. Runs at occupancy end.
  void FinishSend(Bytes size, std::function<void()>& on_flushed,
                  std::function<void(SimTime)>& deliver);

  void DynSend(Bytes size, double msg_scale, std::function<void()> on_flushed,
               std::function<void(SimTime)> deliver);
  void DynStartNext();
  void DynScheduleCompletion();
  void DynOnComplete();
  // Settles `remaining` through the rate trajectory up to `until` (controller
  // rate changes integrate the old scale before switching).
  void DynDrainUntil(SimTime until);
  // Completion time of the current message from (anchor, remaining) by
  // walking the schedule's segments.
  SimTime DynFinishTime() const;
  // Effective serialization rate (bytes/sec) for the current message at t.
  double DynRate(SimTime t) const;
  SimTime DynDrainTime() const;

  Simulator* sim_;
  Bandwidth line_rate_;
  TransportModel transport_;
  Resource resource_;
  Bytes bytes_sent_ = 0;
  FaultInjector* faults_ = nullptr;
  uint64_t site_hash_ = 0;
  ObsContext* obs_ = nullptr;
  // Cached handles; obs_bytes_ doubles as the "instrumented?" flag.
  Counter* obs_bytes_ = nullptr;
  Counter* obs_msgs_ = nullptr;
  Histogram* obs_queue_ns_ = nullptr;
  Gauge* obs_inflight_ = nullptr;
  std::unique_ptr<DynState> dyn_;
};

// The two directions of one NIC.
class DuplexLink {
 public:
  DuplexLink(Simulator* sim, const std::string& name, Bandwidth line_rate,
             const TransportModel& transport);

  Link& up() { return up_; }
  Link& down() { return down_; }

  void SetFaultInjector(FaultInjector* faults) {
    up_.SetFaultInjector(faults);
    down_.SetFaultInjector(faults);
  }

 private:
  Link up_;
  Link down_;
};

}  // namespace bsched

#endif  // SRC_NET_LINK_H_
