#include "src/net/rate_controller.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/net/link.h"

namespace bsched {

RateController::RateController(Link* link, const AimdConfig& config)
    : link_(link), config_(config) {
  BSCHED_CHECK(link != nullptr);
  BSCHED_CHECK(config.min_scale > 0.0 && config.min_scale <= 1.0);
  BSCHED_CHECK(config.multiplicative_decrease > 0.0 && config.multiplicative_decrease < 1.0);
  BSCHED_CHECK(config.additive_increase > 0.0);
  BSCHED_CHECK(link->has_rate_model() && "AIMD needs the dynamic link path installed");
}

void RateController::OnLoss() {
  scale_ = std::max(config_.min_scale, scale_ * config_.multiplicative_decrease);
  ++decreases_;
  link_->SetCtrlScale(scale_);
}

void RateController::OnAck() {
  if (scale_ >= 1.0) return;
  scale_ = std::min(1.0, scale_ + config_.additive_increase);
  ++increases_;
  link_->SetCtrlScale(scale_);
}

}  // namespace bsched
