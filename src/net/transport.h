// Transport models. The paper's analysis (§4.1) reduces a transport stack to
// achievable bandwidth plus a constant per-message "partition overhead" θ
// (~300 µs measured on their TCP testbed: RPC serialization, ACK handling,
// or all-reduce synchronization). Real stacks pipeline most of that work with
// the wire, so θ is split into
//   - serial_overhead: per-message CPU/stack time that occupies the link
//     (limits goodput of small partitions), and
//   - latency: per-message delivery delay that pipelines with subsequent
//     messages (hurts stop-and-wait schedulers, not pipelined ones).
// TCP and RDMA are parameter presets: RDMA has far lower per-message costs
// and saturates fast links, while a kernel-TCP connection tops out well below
// 100 Gbps.
#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <string>

#include "src/common/units.h"

namespace bsched {

struct TransportModel {
  std::string name;
  // Per-message stack time that serializes with the link (part of θ).
  SimTime serial_overhead;
  // Per-message delivery latency, pipelined across messages (rest of θ).
  SimTime latency;
  // Fraction of the physical line rate the stack can actually deliver.
  double efficiency = 1.0;
  // Per-connection goodput ceiling (kernel TCP cannot saturate very fast
  // NICs; RDMA can).
  Bandwidth goodput_cap = Bandwidth::Gbps(1e6);

  // Total per-partition overhead θ as the paper's analysis counts it.
  SimTime TotalOverhead() const { return serial_overhead + latency; }

  // Effective serialization rate on a physical link of rate `line`.
  Bandwidth EffectiveRate(Bandwidth line) const;

  // Time a message of `size` bytes *occupies* a link of rate `line`
  // (serialization + serial overhead; excludes pipelined latency).
  SimTime MessageTime(Bandwidth line, Bytes size) const;

  static TransportModel Tcp();
  static TransportModel Rdma();
  // Zero-overhead, full-rate transport for analytic/ideal-case experiments
  // (Theorem 1 validation uses this).
  static TransportModel Ideal();
};

}  // namespace bsched

#endif  // SRC_NET_TRANSPORT_H_
