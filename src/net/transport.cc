#include "src/net/transport.h"

#include <algorithm>

namespace bsched {

Bandwidth TransportModel::EffectiveRate(Bandwidth line) const {
  const double rate = std::min(line.bytes_per_sec() * efficiency, goodput_cap.bytes_per_sec());
  return Bandwidth::BytesPerSec(rate);
}

SimTime TransportModel::MessageTime(Bandwidth line, Bytes size) const {
  return EffectiveRate(line).TransmitTime(size) + serial_overhead;
}

TransportModel TransportModel::Tcp() {
  TransportModel t;
  t.name = "tcp";
  // θ ~ 300 us total per message on the paper's TCP testbed; most of it
  // pipelines with the wire, a small part serializes on the stack.
  t.serial_overhead = SimTime::Micros(40);
  t.latency = SimTime::Micros(260);
  t.efficiency = 0.90;
  // Kernel TCP between a worker and a PS shard plateaus well below 100 Gbps.
  t.goodput_cap = Bandwidth::Gbps(34);
  return t;
}

TransportModel TransportModel::Rdma() {
  TransportModel t;
  t.name = "rdma";
  t.serial_overhead = SimTime::Micros(20);
  t.latency = SimTime::Micros(30);
  t.efficiency = 0.95;
  t.goodput_cap = Bandwidth::Gbps(1e6);
  return t;
}

TransportModel TransportModel::Ideal() {
  TransportModel t;
  t.name = "ideal";
  t.serial_overhead = SimTime();
  t.latency = SimTime();
  t.efficiency = 1.0;
  t.goodput_cap = Bandwidth::Gbps(1e6);
  return t;
}

}  // namespace bsched
