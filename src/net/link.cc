#include "src/net/link.h"

#include <utility>

namespace bsched {

Link::Link(Simulator* sim, std::string name, Bandwidth line_rate, const TransportModel& transport)
    : sim_(sim), line_rate_(line_rate), transport_(transport), resource_(sim, std::move(name)) {}

void Link::Send(Bytes size, std::function<void()> on_delivered) {
  SendWithFlush(size, nullptr, std::move(on_delivered));
}

void Link::SendWithFlush(Bytes size, std::function<void()> on_flushed,
                         std::function<void()> on_delivered) {
  bytes_sent_ += size;
  const SimTime latency = transport_.latency;
  resource_.Submit(MessageTime(size), [this, latency, on_flushed = std::move(on_flushed),
                                       on_delivered = std::move(on_delivered)]() mutable {
    if (on_flushed) {
      on_flushed();
    }
    if (!on_delivered) {
      return;
    }
    if (latency.nanos() == 0) {
      on_delivered();
    } else {
      // Delivery completes after the pipelined latency; the link itself is
      // already free for the next message.
      sim_->Schedule(latency, std::move(on_delivered));
    }
  });
}

DuplexLink::DuplexLink(Simulator* sim, const std::string& name, Bandwidth line_rate,
                       const TransportModel& transport)
    : up_(sim, name + ".up", line_rate, transport),
      down_(sim, name + ".down", line_rate, transport) {}

}  // namespace bsched
