#include "src/net/link.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"
#include "src/obs/obs.h"

namespace bsched {

Link::Link(Simulator* sim, std::string name, Bandwidth line_rate, const TransportModel& transport)
    : sim_(sim), line_rate_(line_rate), transport_(transport), resource_(sim, std::move(name)) {}

void Link::Send(Bytes size, std::function<void()> on_delivered) {
  SendWithFlush(size, nullptr, std::move(on_delivered));
}

void Link::SetFaultInjector(FaultInjector* faults) {
  faults_ = faults;
  site_hash_ = FaultPlan::HashSite(resource_.name());
}

void Link::SetObs(ObsContext* obs) {
  obs_ = obs;
  if (obs == nullptr || obs->metrics() == nullptr) {
    obs_bytes_ = nullptr;
    obs_msgs_ = nullptr;
    obs_queue_ns_ = nullptr;
    obs_inflight_ = nullptr;
    return;
  }
  MetricsRegistry* m = obs->metrics();
  const std::string prefix = "net." + resource_.name();
  obs_bytes_ = m->counter(prefix + ".bytes");
  obs_msgs_ = m->counter(prefix + ".msgs");
  obs_queue_ns_ = m->histogram(prefix + ".queue_ns");
  obs_inflight_ = m->gauge(prefix + ".inflight_bytes");
}

void Link::ExportMetrics() {
  if (obs_ == nullptr || obs_->metrics() == nullptr) {
    return;
  }
  obs_->metrics()->gauge("net." + resource_.name() + ".busy_ns")->Set(busy_time().nanos());
}

SimTime Link::busy_time() const {
  return dyn_ != nullptr ? dyn_->busy_time : resource_.busy_time();
}

uint64_t Link::messages_sent() const {
  return dyn_ != nullptr ? dyn_->msgs_done : resource_.jobs_completed();
}

size_t Link::queue_length() const {
  return dyn_ != nullptr ? dyn_->queue.size() : resource_.queue_length();
}

bool Link::busy() const { return dyn_ != nullptr ? dyn_->busy : resource_.busy(); }

SimTime Link::DrainTime() const {
  return dyn_ != nullptr ? DynDrainTime() : resource_.DrainTime();
}

void Link::SendWithFlush(Bytes size, std::function<void()> on_flushed,
                         std::function<void()> on_delivered) {
  if (!on_delivered) {
    SendCrossShard(size, std::move(on_flushed), nullptr);
    return;
  }
  SendCrossShard(size, std::move(on_flushed),
                 [this, on_delivered = std::move(on_delivered)](SimTime wire) mutable {
                   if (wire.nanos() == 0) {
                     on_delivered();
                   } else {
                     // Delivery completes after the pipelined latency; the link
                     // itself is already free for the next message.
                     sim_->Schedule(wire, std::move(on_delivered));
                   }
                 });
}

void Link::SendCrossShard(Bytes size, std::function<void()> on_flushed,
                          std::function<void(SimTime)> deliver) {
  SendCrossShard(size, 1.0, std::move(on_flushed), std::move(deliver));
}

void Link::SendCrossShard(Bytes size, double msg_scale, std::function<void()> on_flushed,
                          std::function<void(SimTime)> deliver) {
  bytes_sent_ += size;
  if (obs_bytes_ != nullptr) {
    obs_bytes_->Inc(static_cast<uint64_t>(size));
    obs_msgs_->Inc();
    // Sender-side queueing delay this message will experience behind the
    // work already on the wire. Passive: reads drain state, schedules nothing.
    obs_queue_ns_->Observe((DrainTime() - sim_->Now()).nanos());
    obs_inflight_->Add(size);
  }
  if (dyn_ != nullptr) {
    DynSend(size, msg_scale, std::move(on_flushed), std::move(deliver));
    return;
  }
  BSCHED_CHECK(msg_scale == 1.0 && "per-message pacing needs a RateModel installed");
  resource_.Submit(MessageTime(size), [this, size, on_flushed = std::move(on_flushed),
                                       deliver = std::move(deliver)]() mutable {
    FinishSend(size, on_flushed, deliver);
  });
}

void Link::FinishSend(Bytes size, std::function<void()>& on_flushed,
                      std::function<void(SimTime)>& deliver) {
  // Flush == left the NIC queue; decrement here so fault drops (which
  // never deliver) still settle the gauge.
  if (obs_inflight_ != nullptr) {
    obs_inflight_->Add(-size);
  }
  if (on_flushed) {
    on_flushed();
  }
  if (!deliver) {
    return;
  }
  SimTime total = transport_.latency;
  if (faults_ != nullptr) {
    // Fault fate is decided at flush time: the sender's NIC accepted the
    // message, but the wire may lose or delay it. A link-down fault defers
    // delivery to the outage's end — the discrete-fault face of "rate 0 for
    // the outage window" (FaultPlan::OutageDeferral), shared with RateModel
    // zero-rate segments.
    const FaultInjector::MessageFault fate = faults_->OnMessageSend(site_hash_, sim_->Now());
    if (fate.drop) {
      return;  // lost in the network; recovery retransmits
    }
    total += fate.delay;
  }
  deliver(total);
}

// --- Dynamic rate path ----------------------------------------------------

void Link::SetRateModel(RateModel model) {
  BSCHED_CHECK(dyn_ == nullptr && "rate model already installed");
  BSCHED_CHECK(bytes_sent_ == 0 && !resource_.busy() &&
               "install the rate model before any traffic");
  dyn_ = std::make_unique<DynState>();
  dyn_->model = std::move(model);
}

double Link::DynRate(SimTime t) const {
  const DynState& d = *dyn_;
  // Operation order matters for the zero-cost contract: with all scales at
  // 1.0 this must reduce to exactly EffectiveRate's line * efficiency.
  const double scale = d.model.ScaleAt(t) * d.ctrl_scale * d.current.msg_scale;
  return std::min(line_rate_.bytes_per_sec() * scale * transport_.efficiency,
                  transport_.goodput_cap.bytes_per_sec());
}

SimTime Link::DynFinishTime() const {
  const DynState& d = *dyn_;
  double remaining = d.remaining;
  SimTime t = d.anchor;
  while (true) {
    const SimTime next = d.model.NextChangeAfter(t);
    const double rate = DynRate(t);
    if (rate <= 0.0) {
      // Zero-rate window (outage segment); progress resumes at the next step.
      BSCHED_CHECK(next < SimTime::Max() && "transfer stalled on a terminal zero-rate segment");
      t = next;
      continue;
    }
    // Same arithmetic as Bandwidth::TransmitTime so the identity schedule
    // lands on the identical nanosecond.
    const SimTime fin = t + SimTime(static_cast<int64_t>(std::llround(remaining / rate * 1e9)));
    if (next == SimTime::Max() || fin <= next) {
      return fin;
    }
    remaining -= rate * (next - t).ToSeconds();
    if (remaining < 0.0) remaining = 0.0;
    t = next;
  }
}

void Link::DynDrainUntil(SimTime until) {
  DynState& d = *dyn_;
  if (until <= d.anchor) {
    return;  // still paying serial overhead; nothing serialized yet
  }
  SimTime t = d.anchor;
  while (t < until) {
    const SimTime next = std::min(d.model.NextChangeAfter(t), until);
    const double rate = DynRate(t);
    if (rate > 0.0) {
      d.remaining -= rate * (next - t).ToSeconds();
      if (d.remaining < 0.0) d.remaining = 0.0;
    }
    t = next;
  }
  d.anchor = until;
}

void Link::DynSend(Bytes size, double msg_scale, std::function<void()> on_flushed,
                   std::function<void(SimTime)> deliver) {
  BSCHED_CHECK(msg_scale > 0.0);
  dyn_->queue.push_back(DynMessage{size, msg_scale, std::move(on_flushed), std::move(deliver)});
  if (!dyn_->busy) {
    DynStartNext();
  }
}

void Link::DynStartNext() {
  DynState& d = *dyn_;
  BSCHED_DCHECK(!d.busy);
  if (d.queue.empty()) {
    return;
  }
  d.current = std::move(d.queue.front());
  d.queue.pop_front();
  d.busy = true;
  d.busy_since = sim_->Now();
  d.remaining = static_cast<double>(d.current.size);
  d.anchor = sim_->Now() + transport_.serial_overhead;
  DynScheduleCompletion();
}

void Link::DynScheduleCompletion() {
  DynState& d = *dyn_;
  d.completion_at = DynFinishTime();
  d.completion = sim_->Schedule(d.completion_at - sim_->Now(), [this] { DynOnComplete(); });
}

void Link::DynOnComplete() {
  DynState& d = *dyn_;
  d.busy = false;
  d.busy_time += sim_->Now() - d.busy_since;
  ++d.msgs_done;
  DynMessage msg = std::move(d.current);
  // Completion callbacks run before the next message starts, mirroring
  // Resource::OnJobDone (the ACK handler fires before the NIC pulls the next
  // WQE). A callback may submit new traffic, which starts itself.
  FinishSend(msg.size, msg.on_flushed, msg.deliver);
  if (!d.busy && !d.queue.empty()) {
    DynStartNext();
  }
}

void Link::SetCtrlScale(double scale) {
  BSCHED_CHECK(dyn_ != nullptr && "SetCtrlScale needs the dynamic path installed");
  BSCHED_CHECK(scale > 0.0);
  DynState& d = *dyn_;
  if (scale == d.ctrl_scale) {
    return;
  }
  if (d.busy) {
    // Settle bytes serialized under the old scale, then re-pace the rest.
    DynDrainUntil(sim_->Now());
    d.ctrl_scale = scale;
    d.completion.Cancel();
    ++d.repaces;
    DynScheduleCompletion();
  } else {
    d.ctrl_scale = scale;
  }
}

SimTime Link::DynDrainTime() const {
  const DynState& d = *dyn_;
  SimTime t = d.busy ? d.completion_at : sim_->Now();
  for (const DynMessage& m : d.queue) {
    // Nominal estimate at the message's pacing scale (matches the legacy
    // DrainTime exactly when scales are 1.0).
    t += transport_.MessageTime(Bandwidth::BytesPerSec(line_rate_.bytes_per_sec() * m.msg_scale),
                                m.size);
  }
  return t;
}

double Link::CurrentRateBps() const {
  if (dyn_ == nullptr) {
    return effective_rate().bytes_per_sec();
  }
  const DynState& d = *dyn_;
  const double scale = d.model.ScaleAt(sim_->Now()) * d.ctrl_scale;
  return std::min(line_rate_.bytes_per_sec() * scale * transport_.efficiency,
                  transport_.goodput_cap.bytes_per_sec());
}

DuplexLink::DuplexLink(Simulator* sim, const std::string& name, Bandwidth line_rate,
                       const TransportModel& transport)
    : up_(sim, name + ".up", line_rate, transport),
      down_(sim, name + ".down", line_rate, transport) {}

}  // namespace bsched
