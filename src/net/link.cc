#include "src/net/link.h"

#include <utility>

#include "src/obs/obs.h"

namespace bsched {

Link::Link(Simulator* sim, std::string name, Bandwidth line_rate, const TransportModel& transport)
    : sim_(sim), line_rate_(line_rate), transport_(transport), resource_(sim, std::move(name)) {}

void Link::Send(Bytes size, std::function<void()> on_delivered) {
  SendWithFlush(size, nullptr, std::move(on_delivered));
}

void Link::SetFaultInjector(FaultInjector* faults) {
  faults_ = faults;
  site_hash_ = FaultPlan::HashSite(resource_.name());
}

void Link::SetObs(ObsContext* obs) {
  obs_ = obs;
  if (obs == nullptr || obs->metrics() == nullptr) {
    obs_bytes_ = nullptr;
    obs_msgs_ = nullptr;
    obs_queue_ns_ = nullptr;
    obs_inflight_ = nullptr;
    return;
  }
  MetricsRegistry* m = obs->metrics();
  const std::string prefix = "net." + resource_.name();
  obs_bytes_ = m->counter(prefix + ".bytes");
  obs_msgs_ = m->counter(prefix + ".msgs");
  obs_queue_ns_ = m->histogram(prefix + ".queue_ns");
  obs_inflight_ = m->gauge(prefix + ".inflight_bytes");
}

void Link::ExportMetrics() {
  if (obs_ == nullptr || obs_->metrics() == nullptr) {
    return;
  }
  obs_->metrics()->gauge("net." + resource_.name() + ".busy_ns")->Set(busy_time().nanos());
}

void Link::SendWithFlush(Bytes size, std::function<void()> on_flushed,
                         std::function<void()> on_delivered) {
  if (!on_delivered) {
    SendCrossShard(size, std::move(on_flushed), nullptr);
    return;
  }
  SendCrossShard(size, std::move(on_flushed),
                 [this, on_delivered = std::move(on_delivered)](SimTime wire) mutable {
                   if (wire.nanos() == 0) {
                     on_delivered();
                   } else {
                     // Delivery completes after the pipelined latency; the link
                     // itself is already free for the next message.
                     sim_->Schedule(wire, std::move(on_delivered));
                   }
                 });
}

void Link::SendCrossShard(Bytes size, std::function<void()> on_flushed,
                          std::function<void(SimTime)> deliver) {
  bytes_sent_ += size;
  if (obs_bytes_ != nullptr) {
    obs_bytes_->Inc(static_cast<uint64_t>(size));
    obs_msgs_->Inc();
    // Sender-side queueing delay this message will experience behind the
    // work already on the wire. Passive: reads drain state, schedules nothing.
    obs_queue_ns_->Observe((resource_.DrainTime() - sim_->Now()).nanos());
    obs_inflight_->Add(size);
  }
  const SimTime latency = transport_.latency;
  resource_.Submit(MessageTime(size), [this, size, latency, on_flushed = std::move(on_flushed),
                                       deliver = std::move(deliver)]() mutable {
    // Flush == left the NIC queue; decrement here so fault drops (which
    // never deliver) still settle the gauge.
    if (obs_inflight_ != nullptr) {
      obs_inflight_->Add(-size);
    }
    if (on_flushed) {
      on_flushed();
    }
    if (!deliver) {
      return;
    }
    SimTime total = latency;
    if (faults_ != nullptr) {
      // Fault fate is decided at flush time: the sender's NIC accepted the
      // message, but the wire may lose or delay it.
      const FaultInjector::MessageFault fate = faults_->OnMessageSend(site_hash_, sim_->Now());
      if (fate.drop) {
        return;  // lost in the network; recovery retransmits
      }
      total += fate.delay;
    }
    deliver(total);
  });
}

DuplexLink::DuplexLink(Simulator* sim, const std::string& name, Bandwidth line_rate,
                       const TransportModel& transport)
    : up_(sim, name + ".up", line_rate, transport),
      down_(sim, name + ".down", line_rate, transport) {}

}  // namespace bsched
