#include "src/net/link.h"

#include <utility>

namespace bsched {

Link::Link(Simulator* sim, std::string name, Bandwidth line_rate, const TransportModel& transport)
    : sim_(sim), line_rate_(line_rate), transport_(transport), resource_(sim, std::move(name)) {}

void Link::Send(Bytes size, std::function<void()> on_delivered) {
  SendWithFlush(size, nullptr, std::move(on_delivered));
}

void Link::SetFaultInjector(FaultInjector* faults) {
  faults_ = faults;
  site_hash_ = FaultPlan::HashSite(resource_.name());
}

void Link::SendWithFlush(Bytes size, std::function<void()> on_flushed,
                         std::function<void()> on_delivered) {
  bytes_sent_ += size;
  const SimTime latency = transport_.latency;
  resource_.Submit(MessageTime(size), [this, latency, on_flushed = std::move(on_flushed),
                                       on_delivered = std::move(on_delivered)]() mutable {
    if (on_flushed) {
      on_flushed();
    }
    if (!on_delivered) {
      return;
    }
    SimTime total = latency;
    if (faults_ != nullptr) {
      // Fault fate is decided at flush time: the sender's NIC accepted the
      // message, but the wire may lose or delay it.
      const FaultInjector::MessageFault fate = faults_->OnMessageSend(site_hash_, sim_->Now());
      if (fate.drop) {
        return;  // lost in the network; recovery retransmits
      }
      total += fate.delay;
    }
    if (total.nanos() == 0) {
      on_delivered();
    } else {
      // Delivery completes after the pipelined latency; the link itself is
      // already free for the next message.
      sim_->Schedule(total, std::move(on_delivered));
    }
  });
}

DuplexLink::DuplexLink(Simulator* sim, const std::string& name, Bandwidth line_rate,
                       const TransportModel& transport)
    : up_(sim, name + ".up", line_rate, transport),
      down_(sim, name + ".down", line_rate, transport) {}

}  // namespace bsched
