// Time-varying link capacity. A RateModel is a piecewise-constant schedule of
// capacity multipliers ("scales") on the simulator clock: scale 1.0 is the
// link's nominal line rate, 0.5 halves it, 0.0 is an outage. Schedules are
// pure data built deterministically up front (seeded random-walk drift,
// CASSINI-style on/off cross traffic, explicit steps), so a link's rate
// trajectory is a pure function of (seed, link name, time) — the same
// discipline FaultPlan uses — and results stay bit-identical at any shard
// count. The Link consumes the schedule via ScaleAt/NextChangeAfter and
// re-paces in-flight transfers across scale boundaries (src/net/link.cc).
#ifndef SRC_NET_RATE_MODEL_H_
#define SRC_NET_RATE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace bsched {

// One schedule segment: `scale` applies from `start` until the next step.
struct RateStep {
  SimTime start;
  double scale = 1.0;
};

class RateModel {
 public:
  // Identity schedule (constant scale 1.0).
  RateModel();

  static RateModel Constant(double scale);
  // `steps` must be sorted by start with unique starts; a leading segment at
  // time 0 is synthesized (scale 1.0) when the first step starts later.
  static RateModel Piecewise(std::vector<RateStep> steps);

  // Seeded reflected random walk: every `period` the scale takes a uniform
  // step and reflects into [max(1 - amplitude, kMinScale), 1]. The walk spans
  // [0, horizon) and holds its last value afterwards.
  static RateModel RandomWalk(uint64_t seed, double amplitude, SimTime period, SimTime horizon);

  // CASSINI-style cross traffic: `flows` independent seeded on/off background
  // flows, each cycling with jittered period and duty cycle; while a flow is
  // on it claims `load` of the link, leaving the foreground 1 - load. Flows
  // compose multiplicatively and the result is floored at kMinScale so the
  // foreground always makes progress.
  static RateModel CrossTraffic(uint64_t seed, int flows, double load, SimTime period,
                                double duty, SimTime horizon);

  // Pointwise product of two schedules (merged breakpoints).
  static RateModel Compose(const RateModel& a, const RateModel& b);

  // Scale in effect at `now`.
  double ScaleAt(SimTime now) const;
  // First breakpoint strictly after `now`; SimTime::Max() when none remain.
  SimTime NextChangeAfter(SimTime now) const;

  bool IsIdentity() const { return steps_.size() == 1 && steps_[0].scale == 1.0; }
  const std::vector<RateStep>& steps() const { return steps_; }

  // Progress floor used by the stochastic builders: generated schedules never
  // go below this, so every transfer eventually completes. Explicit Piecewise
  // schedules may still carry zero-rate windows (bounded by the next step).
  static constexpr double kMinScale = 0.05;

 private:
  // Invariant: non-empty, sorted by start, steps_[0].start == 0.
  std::vector<RateStep> steps_;
};

}  // namespace bsched

#endif  // SRC_NET_RATE_MODEL_H_
