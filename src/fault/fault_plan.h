// Deterministic fault planning. A FaultPlan expands a seeded FaultPlanConfig
// into a fixed set of fault episodes on the simulator clock — link-latency
// spikes, message-drop windows, transient link-down windows, straggler
// compute slowdowns, and PS-shard slow/stall episodes. Every query is a pure
// function of (seed, site, time, message index), so the same plan replayed on
// the same workload produces bit-identical fault timing: chaos tests are
// regular deterministic tests.
#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace bsched {

enum class FaultKind {
  kDrop,         // messages on affected links are lost with drop_prob
  kLatencySpike, // messages on affected links arrive late
  kLinkDown,     // deliveries on affected links defer to the window end
  kStraggler,    // affected workers' compute ops run slower
  kShardSlow,    // affected PS shards' update CPU runs slower (stall-like)
};

const char* ToString(FaultKind kind);

// One fault window. Which sites it hits is decided per (episode, site) by a
// salted hash, so a plan built before the topology exists still assigns
// faults deterministically once links/workers/shards are named.
struct FaultEpisode {
  FaultKind kind = FaultKind::kDrop;
  SimTime start;
  SimTime end;
  double drop_prob = 0.0;  // kDrop
  SimTime delay;           // kLatencySpike
  double factor = 1.0;     // kStraggler / kShardSlow
  uint64_t salt = 0;       // per-episode site-selection salt
};

// Knobs of the fault model plus the recovery policy the runtime installs when
// chaos is enabled (documented in EXPERIMENTS.md "Fault injection").
struct FaultPlanConfig {
  uint64_t seed = 1;
  // Episodes are placed uniformly at random inside [0, horizon); nothing is
  // injected after the horizon, which bounds every outage and guarantees that
  // bounded retries eventually succeed.
  SimTime horizon = SimTime::Millis(600);
  // Fraction of candidate sites each episode applies to (hash-selected).
  double site_prob = 0.6;

  int drop_episodes = 0;
  double drop_prob = 0.3;
  SimTime drop_len = SimTime::Millis(15);

  int latency_episodes = 0;
  SimTime latency_spike = SimTime::Millis(1);
  SimTime latency_len = SimTime::Millis(20);

  int link_down_episodes = 0;
  SimTime link_down_len = SimTime::Millis(8);

  int straggler_episodes = 0;
  double straggler_factor = 3.0;
  SimTime straggler_len = SimTime::Millis(30);

  int shard_slow_episodes = 0;
  double shard_slow_factor = 6.0;
  SimTime shard_slow_len = SimTime::Millis(20);

  // Recovery policy (scheduler subtask retry and PS push retransmission).
  SimTime retry_timeout = SimTime::Millis(25);
  double retry_backoff = 2.0;
  int max_retries = 12;

  bool empty() const {
    return drop_episodes + latency_episodes + link_down_episodes + straggler_episodes +
               shard_slow_episodes ==
           0;
  }

  // A representative mixed plan exercising every fault kind.
  static FaultPlanConfig Chaos(uint64_t seed);
};

class FaultPlan {
 public:
  explicit FaultPlan(const FaultPlanConfig& config);

  const FaultPlanConfig& config() const { return config_; }
  const std::vector<FaultEpisode>& episodes() const { return episodes_; }

  // Message fate on a link site. `msg_index` is the site-local message
  // counter, making the drop draw independent of unrelated traffic.
  bool DropMessage(uint64_t site_hash, uint64_t msg_index, SimTime now) const;
  // Added delivery delay: latency spikes plus OutageDeferral.
  SimTime ExtraLatency(uint64_t site_hash, SimTime now) const;
  // Link-down semantics in one place: a down link is a link at rate 0 for the
  // outage window, so a delivery attempted at `now` defers by the remaining
  // zero-rate time of every active link-down episode. Both the discrete fault
  // path (Link::FinishSend via ExtraLatency) and RateModel-based zero-rate
  // schedules express outages through this window arithmetic; keeping it here
  // keeps recovery counters identical between the two
  // (tests/fault_test.cc cross-checks).
  SimTime OutageDeferral(uint64_t site_hash, SimTime now) const;

  // Multiplicative slowdown factors (1.0 == unaffected).
  double ComputeFactor(int worker, SimTime now) const;
  double ShardFactor(int shard, SimTime now) const;

  // Stable site naming: links hash their name, workers/shards their index.
  static uint64_t HashSite(const std::string& site);
  static uint64_t HashWorker(int worker);
  static uint64_t HashShard(int shard);

 private:
  bool Applies(const FaultEpisode& episode, uint64_t site_hash, SimTime now) const;

  FaultPlanConfig config_;
  std::vector<FaultEpisode> episodes_;
};

}  // namespace bsched

#endif  // SRC_FAULT_FAULT_PLAN_H_
