#include "src/fault/fault_injector.h"

#include <cmath>
#include <mutex>

#include "src/common/check.h"

namespace bsched {

std::string FaultStats::DebugString() const {
  return "faults[injected: msgs=" + std::to_string(messages_seen) +
         " drops=" + std::to_string(drops_injected) +
         " delays=" + std::to_string(delays_injected) + " (" + delay_injected_total.ToString() +
         ") compute_slow=" + std::to_string(compute_slowdowns) +
         " shard_slow=" + std::to_string(shard_slowdowns) +
         " | recovered: timeouts=" + std::to_string(core_timeouts) +
         " retries=" + std::to_string(core_retries) +
         " late=" + std::to_string(core_late_completions) +
         " abandoned=" + std::to_string(core_abandoned) +
         " retransmits=" + std::to_string(backend_retransmits) +
         " credit_restored=" + FormatBytes(credit_restored) + "]";
}

FaultInjector::FaultInjector(const FaultPlanConfig& config, Simulator* sim, TraceRecorder* trace)
    : plan_(config), sim_(sim), trace_(trace) {
  // Sharded runs have no single simulator; they pass sim == nullptr, which is
  // fine because the only sim use is trace timestamps and tracing is
  // serial-mode-only.
  BSCHED_CHECK(sim_ != nullptr || trace_ == nullptr);
  if (trace_ == nullptr) {
    return;
  }
  for (const FaultEpisode& ep : plan_.episodes()) {
    trace_->AddSpan("faults/plan", ToString(ep.kind), ep.start, ep.end);
  }
}

void FaultInjector::Instant(const std::string& track, const std::string& name) {
  if (trace_ != nullptr) {
    trace_->AddInstant(track, name, sim_->Now());
  }
}

FaultInjector::MessageFault FaultInjector::OnMessageSend(uint64_t site_hash, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.messages_seen;
  const uint64_t msg_index = site_msg_counts_[site_hash]++;
  MessageFault fate;
  if (plan_.DropMessage(site_hash, msg_index, now)) {
    fate.drop = true;
    ++stats_.drops_injected;
    Instant("faults/injected", "drop");
    return fate;
  }
  fate.delay = plan_.ExtraLatency(site_hash, now);
  if (fate.delay.nanos() > 0) {
    ++stats_.delays_injected;
    stats_.delay_injected_total += fate.delay;
    Instant("faults/injected", "delay+" + fate.delay.ToString());
  }
  return fate;
}

SimTime FaultInjector::ScaleCompute(int worker, SimTime duration, SimTime now) {
  const double factor = plan_.ComputeFactor(worker, now);
  if (factor <= 1.0) {
    return duration;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.compute_slowdowns;
  Instant("faults/injected", "straggler w" + std::to_string(worker));
  return SimTime(static_cast<int64_t>(static_cast<double>(duration.nanos()) * factor));
}

SimTime FaultInjector::ScaleShard(int shard, SimTime duration, SimTime now) {
  const double factor = plan_.ShardFactor(shard, now);
  if (factor <= 1.0) {
    return duration;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.shard_slowdowns;
  Instant("faults/injected", "shard_slow s" + std::to_string(shard));
  return SimTime(static_cast<int64_t>(static_cast<double>(duration.nanos()) * factor));
}

void FaultInjector::RecordCoreTimeout(int worker, int layer, int partition, int attempt,
                                      Bytes restored) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.core_timeouts;
  stats_.credit_restored += restored;
  Instant("faults/recovery", "timeout w" + std::to_string(worker) + " L" + std::to_string(layer) +
                                 ".p" + std::to_string(partition) + " #" +
                                 std::to_string(attempt));
}

void FaultInjector::RecordCoreRetry() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.core_retries;
}

void FaultInjector::RecordLateCompletion() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.core_late_completions;
}

void FaultInjector::RecordAbandon() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.core_abandoned;
}

void FaultInjector::RecordBackendRetransmit(int worker, int layer, int partition, int attempt) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.backend_retransmits;
  Instant("faults/recovery", "retransmit w" + std::to_string(worker) + " L" +
                                 std::to_string(layer) + ".p" + std::to_string(partition) + " #" +
                                 std::to_string(attempt));
}

}  // namespace bsched
