// Runtime fault injection. A FaultInjector is the single object threaded
// through the network links and communication backends: each message send,
// compute submission, and shard update consults it, and every recovery action
// (scheduler timeout/retry, backend retransmission) reports back to it. It
// owns the FaultStats counter block and mirrors both injections and
// recoveries into the TraceRecorder on dedicated tracks ("faults/plan",
// "faults/injected", "faults/recovery"), so a Chrome/Perfetto trace shows the
// stall and the recovery side by side with the training timeline.
//
// Zero-cost when off: every hook site guards on a null injector pointer, so a
// run without fault injection executes the exact pre-fault event sequence.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/common/trace.h"
#include "src/common/units.h"
#include "src/fault/fault_plan.h"
#include "src/sim/simulator.h"

namespace bsched {

// Counter block for everything injected and everything recovered.
struct FaultStats {
  // Injection side.
  uint64_t messages_seen = 0;
  uint64_t drops_injected = 0;
  uint64_t delays_injected = 0;
  SimTime delay_injected_total;
  uint64_t compute_slowdowns = 0;
  uint64_t shard_slowdowns = 0;
  // Recovery side (reported by SchedulerCore / PsBackend).
  uint64_t core_timeouts = 0;
  uint64_t core_retries = 0;
  uint64_t core_late_completions = 0;
  uint64_t core_abandoned = 0;
  uint64_t backend_retransmits = 0;
  Bytes credit_restored = 0;

  bool any_injected() const {
    return drops_injected + delays_injected + compute_slowdowns + shard_slowdowns > 0;
  }

  std::string DebugString() const;
};

class FaultInjector {
 public:
  // `trace` may be null; when set, it must outlive the injector. Episode
  // windows are exported to the "faults/plan" track immediately.
  FaultInjector(const FaultPlanConfig& config, Simulator* sim, TraceRecorder* trace = nullptr);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  struct MessageFault {
    bool drop = false;
    SimTime delay;
  };

  // One message leaving the link identified by `site_hash` now. Updates stats
  // and the trace; callers apply the returned fate to the delivery.
  MessageFault OnMessageSend(uint64_t site_hash, SimTime now);

  // Scale a compute / shard-update duration by any active slowdown episode.
  // `now` is the caller's simulated clock: in sharded runs one injector is
  // shared across per-shard Simulators, so the entity's own clock — not any
  // single Simulator's — decides which episode is active.
  SimTime ScaleCompute(int worker, SimTime duration, SimTime now);
  SimTime ScaleShard(int shard, SimTime duration, SimTime now);

  // Recovery-side recording.
  void RecordCoreTimeout(int worker, int layer, int partition, int attempt, Bytes restored);
  void RecordCoreRetry();
  void RecordLateCompletion();
  void RecordAbandon();
  void RecordBackendRetransmit(int worker, int layer, int partition, int attempt);

  const FaultStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }
  std::string DebugString() const { return stats_.DebugString(); }

 private:
  void Instant(const std::string& track, const std::string& name);

  FaultPlan plan_;  // immutable after construction; safe to read concurrently
  Simulator* sim_;
  TraceRecorder* trace_;
  // Counters are mutated from every shard's thread in sharded runs; mu_
  // serializes them. All increments are commutative sums, so totals stay
  // bit-identical at any shard count. Tracing stays serial-mode-only.
  mutable std::mutex mu_;
  FaultStats stats_;
  // Site-local message counters feeding the deterministic drop draw.
  std::map<uint64_t, uint64_t> site_msg_counts_;
};

}  // namespace bsched

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
