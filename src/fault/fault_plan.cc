#include "src/fault/fault_plan.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace bsched {
namespace {

// SplitMix64 finalizer: stateless mixing for per-(episode, site, message)
// decisions, so fault fate never depends on query order.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double MixToUnit(uint64_t x) {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Mix(x) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kLatencySpike:
      return "latency_spike";
    case FaultKind::kLinkDown:
      return "link_down";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kShardSlow:
      return "shard_slow";
  }
  return "?";
}

FaultPlanConfig FaultPlanConfig::Chaos(uint64_t seed) {
  FaultPlanConfig cfg;
  cfg.seed = seed;
  cfg.drop_episodes = 3;
  cfg.latency_episodes = 4;
  cfg.link_down_episodes = 2;
  cfg.straggler_episodes = 2;
  cfg.shard_slow_episodes = 2;
  return cfg;
}

FaultPlan::FaultPlan(const FaultPlanConfig& config) : config_(config) {
  BSCHED_CHECK(config_.horizon.nanos() > 0);
  BSCHED_CHECK(config_.drop_prob >= 0.0 && config_.drop_prob <= 1.0);
  Rng rng(config_.seed ^ 0xfa017a7e5eedULL);
  auto place = [&](FaultKind kind, int count, SimTime len) {
    for (int i = 0; i < count; ++i) {
      FaultEpisode ep;
      ep.kind = kind;
      const int64_t span = std::max<int64_t>(config_.horizon.nanos() - len.nanos(), 1);
      ep.start = SimTime(rng.UniformInt(0, span - 1));
      ep.end = ep.start + len;
      ep.salt = rng.NextU64();
      episodes_.push_back(ep);
    }
  };
  place(FaultKind::kDrop, config_.drop_episodes, config_.drop_len);
  for (size_t i = episodes_.size() - config_.drop_episodes; i < episodes_.size(); ++i) {
    episodes_[i].drop_prob = config_.drop_prob;
  }
  place(FaultKind::kLatencySpike, config_.latency_episodes, config_.latency_len);
  for (size_t i = episodes_.size() - config_.latency_episodes; i < episodes_.size(); ++i) {
    episodes_[i].delay = config_.latency_spike;
  }
  place(FaultKind::kLinkDown, config_.link_down_episodes, config_.link_down_len);
  place(FaultKind::kStraggler, config_.straggler_episodes, config_.straggler_len);
  for (size_t i = episodes_.size() - config_.straggler_episodes; i < episodes_.size(); ++i) {
    episodes_[i].factor = config_.straggler_factor;
  }
  place(FaultKind::kShardSlow, config_.shard_slow_episodes, config_.shard_slow_len);
  for (size_t i = episodes_.size() - config_.shard_slow_episodes; i < episodes_.size(); ++i) {
    episodes_[i].factor = config_.shard_slow_factor;
  }
}

bool FaultPlan::Applies(const FaultEpisode& episode, uint64_t site_hash, SimTime now) const {
  if (now < episode.start || now >= episode.end) {
    return false;
  }
  return MixToUnit(episode.salt ^ site_hash) < config_.site_prob;
}

bool FaultPlan::DropMessage(uint64_t site_hash, uint64_t msg_index, SimTime now) const {
  for (const FaultEpisode& ep : episodes_) {
    if (ep.kind != FaultKind::kDrop || !Applies(ep, site_hash, now)) {
      continue;
    }
    if (MixToUnit(config_.seed ^ ep.salt ^ site_hash ^ (msg_index * 0x2545f4914f6cdd1dULL)) <
        ep.drop_prob) {
      return true;
    }
  }
  return false;
}

SimTime FaultPlan::ExtraLatency(uint64_t site_hash, SimTime now) const {
  SimTime extra;
  for (const FaultEpisode& ep : episodes_) {
    if (ep.kind == FaultKind::kLatencySpike && Applies(ep, site_hash, now)) {
      extra += ep.delay;
    }
  }
  return extra + OutageDeferral(site_hash, now);
}

SimTime FaultPlan::OutageDeferral(uint64_t site_hash, SimTime now) const {
  SimTime extra;
  for (const FaultEpisode& ep : episodes_) {
    if (ep.kind == FaultKind::kLinkDown && Applies(ep, site_hash, now)) {
      // The message sits in the retransmission queue until the link is back:
      // the integral of the episode's zero-rate window from `now` on.
      extra += ep.end - now;
    }
  }
  return extra;
}

double FaultPlan::ComputeFactor(int worker, SimTime now) const {
  double factor = 1.0;
  const uint64_t site = HashWorker(worker);
  for (const FaultEpisode& ep : episodes_) {
    if (ep.kind == FaultKind::kStraggler && Applies(ep, site, now)) {
      factor = std::max(factor, ep.factor);
    }
  }
  return factor;
}

double FaultPlan::ShardFactor(int shard, SimTime now) const {
  double factor = 1.0;
  const uint64_t site = HashShard(shard);
  for (const FaultEpisode& ep : episodes_) {
    if (ep.kind == FaultKind::kShardSlow && Applies(ep, site, now)) {
      factor = std::max(factor, ep.factor);
    }
  }
  return factor;
}

uint64_t FaultPlan::HashSite(const std::string& site) {
  // FNV-1a, then mixed; stable across platforms.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix(h);
}

uint64_t FaultPlan::HashWorker(int worker) {
  return Mix(0x3017ae1e57ULL ^ static_cast<uint64_t>(worker));
}

uint64_t FaultPlan::HashShard(int shard) {
  return Mix(0x54a4dc0de5ULL ^ static_cast<uint64_t>(shard));
}

}  // namespace bsched
