#include "src/sim/event_queue.h"

#include <algorithm>

#include "src/common/check.h"

namespace bsched {

std::unique_ptr<EventQueue> MakeEventQueue(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kTimerWheel:
      return std::make_unique<TimerWheelEventQueue>();
    case QueuePolicy::kBinaryHeap:
      return std::make_unique<HeapEventQueue>();
  }
  BSCHED_CHECK(false);  // unknown queue policy
  return nullptr;
}

// ---------------------------------------------------------------------------
// HeapEventQueue

void HeapEventQueue::Push(const EventEntry& entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), EventAfter());
}

bool HeapEventQueue::PeekEarliest(EventEntry* out) {
  if (heap_.empty()) {
    return false;
  }
  *out = heap_.front();
  return true;
}

bool HeapEventQueue::PopEarliest(EventEntry* out) {
  if (heap_.empty()) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter());
  *out = heap_.back();
  heap_.pop_back();
  return true;
}

void HeapEventQueue::Compact(const std::function<bool(const EventEntry&)>& dead) {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), EventAfter());
}

// ---------------------------------------------------------------------------
// TimerWheelEventQueue

void TimerWheelEventQueue::SetBit(int level, int idx) {
  occupancy_[level][idx >> 6] |= uint64_t{1} << (idx & 63);
}

void TimerWheelEventQueue::ClearBit(int level, int idx) {
  occupancy_[level][idx >> 6] &= ~(uint64_t{1} << (idx & 63));
}

bool TimerWheelEventQueue::BitSet(int level, int idx) const {
  return (occupancy_[level][idx >> 6] >> (idx & 63)) & 1;
}

int TimerWheelEventQueue::FindOccupied(int level, int from) const {
  if (from >= kSlotsPerLevel) {
    return -1;
  }
  int word = from >> 6;
  uint64_t bits = occupancy_[level][word] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) {
      return (word << 6) + __builtin_ctzll(bits);
    }
    if (++word == kWordsPerLevel) {
      return -1;
    }
    bits = occupancy_[level][word];
  }
}

void TimerWheelEventQueue::Place(const EventEntry& entry) {
  const uint64_t when = static_cast<uint64_t>(entry.when.nanos());
  if (when < horizon_) {
    near_.push_back(entry);
    std::push_heap(near_.begin(), near_.end(), EventAfter());
    return;
  }
  // An entry parks at the lowest level whose ring reaches it: level l holds
  // timestamps sharing the horizon's level-(l+1) granule. This "same upper
  // granule" criterion (rather than a delta) is immune to lap-wrapping.
  for (int level = 0; level < kLevels; ++level) {
    const int above = LevelShift(level + 1);
    if ((when >> above) == (horizon_ >> above)) {
      const int idx = SlotIndex(when, level);
      slots_[level][idx].push_back(entry);
      SetBit(level, idx);
      ++wheel_count_;
      return;
    }
  }
  overflow_.push_back(entry);
}

void TimerWheelEventQueue::Push(const EventEntry& entry) {
  BSCHED_CHECK(entry.when.nanos() >= 0);
  Place(entry);
  ++size_;
}

void TimerWheelEventQueue::CascadeSlot(int level, int idx) {
  std::vector<EventEntry>& slot = slots_[level][idx];
  BSCHED_CHECK(!slot.empty());
  // Swap out first: Place() may legitimately re-file into lower slots but
  // must never see the slot being drained in an intermediate state.
  std::vector<EventEntry> moved;
  moved.swap(slot);
  ClearBit(level, idx);
  wheel_count_ -= moved.size();
  for (const EventEntry& e : moved) {
    Place(e);
  }
  moved.clear();
  // Hand the emptied buffer back so steady-state cascades do not reallocate.
  if (slot.capacity() < moved.capacity()) {
    slot.swap(moved);
  }
}

void TimerWheelEventQueue::Normalize() {
  // When the horizon crosses into a fresh upper-level granule (a lower ring
  // wrapped), the slot under the new cursor may still hold entries filed
  // before the crossing. Cascade those before any horizon advance, top level
  // first so payloads chain down through every intermediate ring; otherwise
  // a later advance could leap past them. Freshly pushed entries never land
  // on a level>=1 cursor slot (the same-granule test would have placed them
  // lower), so this terminates after one top-down sweep.
  for (int level = kLevels - 1; level >= 1; --level) {
    const int idx = SlotIndex(horizon_, level);
    if (BitSet(level, idx)) {
      CascadeSlot(level, idx);
    }
  }
}

void TimerWheelEventQueue::AdvanceToNext() {
  while (near_.empty()) {
    if (wheel_count_ == 0) {
      if (overflow_.empty()) {
        return;  // queue truly drained (size_ == 0)
      }
      // Idle-advance fast path: leap the horizon straight to the earliest
      // overflow entry's top-level window, then refile the pen.
      uint64_t min_when = static_cast<uint64_t>(overflow_[0].when.nanos());
      for (const EventEntry& e : overflow_) {
        min_when = std::min(min_when, static_cast<uint64_t>(e.when.nanos()));
      }
      const int top = LevelShift(kLevels);
      horizon_ = (min_when >> top) << top;
      std::vector<EventEntry> pen;
      pen.swap(overflow_);
      for (const EventEntry& e : pen) {
        Place(e);
      }
      continue;
    }
    Normalize();
    const int cursor0 = SlotIndex(horizon_, 0);
    const int idx0 = FindOccupied(0, cursor0);
    if (idx0 >= 0) {
      // Batched dequeue: the whole 256ns slot drains into near_ in one go.
      std::vector<EventEntry>& slot = slots_[0][idx0];
      for (const EventEntry& e : slot) {
        near_.push_back(e);
        std::push_heap(near_.begin(), near_.end(), EventAfter());
      }
      wheel_count_ -= slot.size();
      slot.clear();
      ClearBit(0, idx0);
      const uint64_t base = (horizon_ >> LevelShift(1)) << LevelShift(1);
      horizon_ = base + ((static_cast<uint64_t>(idx0) + 1) << kShift0);
      continue;
    }
    // Level-0 ring exhausted: jump to the next occupied slot at the lowest
    // level that has one (slots below the cursor cannot be occupied — every
    // resident timestamp is >= horizon within the shared upper granule).
    bool jumped = false;
    for (int level = 1; level < kLevels; ++level) {
      const int idx = FindOccupied(level, SlotIndex(horizon_, level));
      if (idx >= 0) {
        const int shift = LevelShift(level);
        const int above = LevelShift(level + 1);
        horizon_ = ((horizon_ >> above) << above) |
                   (static_cast<uint64_t>(idx) << shift);
        CascadeSlot(level, idx);
        jumped = true;
        break;
      }
    }
    BSCHED_CHECK(jumped);  // else wheel_count_ disagrees with the bitmaps
  }
}

bool TimerWheelEventQueue::PeekEarliest(EventEntry* out) {
  if (near_.empty()) {
    AdvanceToNext();
    if (near_.empty()) {
      return false;
    }
  }
  *out = near_.front();
  return true;
}

bool TimerWheelEventQueue::PopEarliest(EventEntry* out) {
  if (!PeekEarliest(out)) {
    return false;
  }
  std::pop_heap(near_.begin(), near_.end(), EventAfter());
  near_.pop_back();
  --size_;
  return true;
}

void TimerWheelEventQueue::Compact(const std::function<bool(const EventEntry&)>& dead) {
  std::vector<EventEntry> survivors;
  survivors.reserve(size_);
  auto keep = [&](std::vector<EventEntry>& from) {
    for (EventEntry& e : from) {
      if (!dead(e)) {
        survivors.push_back(e);
      }
    }
    from.clear();
  };
  keep(near_);
  for (int level = 0; level < kLevels; ++level) {
    for (int idx = 0; idx < kSlotsPerLevel; ++idx) {
      if (!slots_[level][idx].empty()) {
        keep(slots_[level][idx]);
      }
    }
    for (int word = 0; word < kWordsPerLevel; ++word) {
      occupancy_[level][word] = 0;
    }
  }
  keep(overflow_);
  wheel_count_ = 0;
  size_ = survivors.size();
  for (const EventEntry& e : survivors) {
    Place(e);
  }
}

}  // namespace bsched
