#include "src/sim/shard_coordinator.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <tuple>
#include <utility>

#include "src/common/check.h"
#include "src/exec/thread_pool.h"

namespace bsched {

ShardCoordinator::ShardCoordinator(int shards, SimTime lookahead, QueuePolicy policy)
    : lookahead_(lookahead) {
  BSCHED_CHECK(shards >= 1);
  // Conservative PDES needs positive lookahead.
  BSCHED_CHECK(lookahead_.nanos() > 0);
  sims_.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    sims_.push_back(std::make_unique<Simulator>(policy));
  }
  outboxes_.resize(shards);
  if (shards > 1) {
    // One worker per shard (not per host core): every window submits exactly
    // `shards` tasks, and oversubscription just serializes them — which also
    // keeps the barrier handoff exercised under TSan on small machines.
    pool_ = std::make_unique<ThreadPool>(shards);
  }
}

ShardCoordinator::~ShardCoordinator() = default;

void ShardCoordinator::Post(int src, int dst, uint64_t channel, SimTime delay,
                            EventFn fn) {
  BSCHED_CHECK(src >= 0 && src < shards());
  BSCHED_CHECK(dst >= 0 && dst < shards());
  // A cross-shard delay below the lookahead would break the window.
  BSCHED_CHECK(delay >= lookahead_);
  Outbox& ob = outboxes_[src];
  const uint64_t cseq = ob.channel_seq[channel]++;
  ob.msgs.push_back(
      PendingMsg{sims_[src]->Now() + delay, channel, cseq, dst, std::move(fn)});
}

void ShardCoordinator::DeliverPending() {
  std::vector<PendingMsg> batch;
  for (Outbox& ob : outboxes_) {
    if (batch.empty()) {
      batch = std::move(ob.msgs);
    } else {
      for (PendingMsg& m : ob.msgs) {
        batch.push_back(std::move(m));
      }
    }
    ob.msgs.clear();
  }
  if (batch.empty()) {
    return;
  }
  // Fixed merge order. The key is unique: channel ids are unique per source
  // entity, an entity lives on exactly one shard, and that shard's outbox
  // numbers the channel's messages consecutively.
  std::sort(batch.begin(), batch.end(), [](const PendingMsg& a, const PendingMsg& b) {
    return std::tie(a.when, a.channel, a.channel_seq) <
           std::tie(b.when, b.channel, b.channel_seq);
  });
  messages_ += batch.size();
  for (PendingMsg& m : batch) {
    sims_[m.dst]->ScheduleAt(m.when, std::move(m.fn));
  }
}

uint64_t ShardCoordinator::Run(SimTime deadline) {
  uint64_t fired_total = 0;
  while (true) {
    DeliverPending();
    SimTime t_min = SimTime::Max();
    bool any = false;
    for (auto& sim : sims_) {
      SimTime t;
      if (sim->NextEventTime(&t)) {
        any = true;
        t_min = std::min(t_min, t);
      }
    }
    if (!any || t_min > deadline) {
      break;
    }
    // Window [t_min, t_min + L); Run's deadline is inclusive, hence L - 1ns.
    SimTime window_last = deadline;
    if (t_min.nanos() <= SimTime::Max().nanos() - lookahead_.nanos()) {
      window_last = std::min(deadline, t_min + lookahead_ - SimTime::Nanos(1));
    }
    ++windows_;
    if (pool_ == nullptr) {
      fired_total += sims_[0]->Run(window_last);
      continue;
    }
    std::mutex mu;
    std::condition_variable cv;
    int remaining = static_cast<int>(sims_.size());
    uint64_t fired = 0;
    for (auto& sim : sims_) {
      Simulator* s = sim.get();
      pool_->Submit([s, window_last, &mu, &cv, &remaining, &fired] {
        const uint64_t f = s->Run(window_last);
        std::lock_guard<std::mutex> lock(mu);
        fired += f;
        if (--remaining == 0) {
          cv.notify_one();
        }
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&remaining] { return remaining == 0; });
    fired_total += fired;
  }
  return fired_total;
}

bool ShardCoordinator::Empty() const {
  for (const auto& sim : sims_) {
    if (!sim->Empty()) {
      return false;
    }
  }
  for (const Outbox& ob : outboxes_) {
    if (!ob.msgs.empty()) {
      return false;
    }
  }
  return true;
}

uint64_t ShardCoordinator::total_processed() const {
  uint64_t total = 0;
  for (const auto& sim : sims_) {
    total += sim->processed_events();
  }
  return total;
}

}  // namespace bsched
