#include "src/sim/simulator.h"

#include <algorithm>

#include "src/common/check.h"

namespace bsched {
namespace {

// Compaction triggers when stale (cancelled) entries outnumber live ones and
// the queue is large enough for the rebuild to pay for itself.
constexpr size_t kCompactMinEntries = 64;

}  // namespace

void EventHandle::Cancel() {
  if (sim_ != nullptr) {
    sim_->CancelEvent(slot_, generation_);
  }
}

EventHandle Simulator::Schedule(SimTime delay, EventFn fn) {
  BSCHED_CHECK(delay.nanos() >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

namespace {

// Self-rescheduling periodic tick. Sized to fit EventFn's inline buffer
// (8 + 8 + 32 = 48 bytes) so the chain never heap-allocates per tick; the
// callable (and the captured predicate) dies with its event slot when the
// predicate returns false.
struct PeriodicEvent {
  Simulator* sim;
  SimTime interval;
  std::function<bool()> fn;

  void operator()() {
    if (fn()) {
      Simulator* s = sim;
      const SimTime i = interval;
      s->Schedule(i, PeriodicEvent{s, i, std::move(fn)});
    }
  }
};
static_assert(sizeof(PeriodicEvent) <= EventFn::kInlineBytes);

}  // namespace

void Simulator::SchedulePeriodic(SimTime interval, std::function<bool()> fn) {
  BSCHED_CHECK(interval.nanos() > 0);
  BSCHED_CHECK(fn != nullptr);
  Schedule(interval, PeriodicEvent{this, interval, std::move(fn)});
}

EventHandle Simulator::ScheduleAt(SimTime when, EventFn fn) {
  BSCHED_CHECK(when >= now_);
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  queue_->Push(EventEntry{when, next_seq_++, s.generation, slot});
  ++live_;
  return EventHandle(this, slot, s.generation);
}

void Simulator::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.generation;
  s.fn.Reset();
  free_slots_.push_back(slot);
}

void Simulator::Fire(const EventEntry& e) {
  // Move the callback out and release the slot first: the callback may
  // schedule new events, which can reuse this slot or grow the slot table.
  EventFn fn = std::move(slots_[e.slot].fn);
  ReleaseSlot(e.slot);
  --live_;
  now_ = e.when;
  ++processed_;
  fn();
}

void Simulator::CancelEvent(uint32_t slot, uint64_t generation) {
  if (slot >= slots_.size() || slots_[slot].generation != generation) {
    return;  // already fired, already cancelled, or slot since reused
  }
  ReleaseSlot(slot);
  --live_;
  MaybeCompact();
}

void Simulator::MaybeCompact() {
  if (queue_->size() < kCompactMinEntries || queue_->size() < 2 * live_) {
    return;
  }
  queue_->Compact([this](const EventEntry& e) { return !EntryLive(e); });
  ++compactions_;
}

bool Simulator::Step() {
  EventEntry e;
  while (queue_->PopEarliest(&e)) {
    if (!EntryLive(e)) {
      ++skipped_cancelled_;
      continue;
    }
    Fire(e);
    return true;
  }
  return false;
}

bool Simulator::NextEventTime(SimTime* when) {
  EventEntry e;
  while (queue_->PeekEarliest(&e)) {
    if (EntryLive(e)) {
      *when = e.when;
      return true;
    }
    queue_->PopEarliest(&e);
    ++skipped_cancelled_;
  }
  return false;
}

uint64_t Simulator::Run(SimTime deadline) {
  uint64_t count = 0;
  EventEntry e;
  while (queue_->PeekEarliest(&e)) {
    // Discard cancelled entries here rather than firing past them: a
    // cancelled head must not let an event beyond `deadline` fire. Each
    // discarded entry is popped (and counted) exactly once, even when the
    // deadline lands in the middle of a compaction-heavy stretch —
    // compaction only ever removes entries that were never popped.
    if (!EntryLive(e)) {
      queue_->PopEarliest(&e);
      ++skipped_cancelled_;
      continue;
    }
    if (e.when > deadline) {
      break;
    }
    queue_->PopEarliest(&e);
    Fire(e);
    ++count;
  }
  return count;
}

}  // namespace bsched
