#include "src/sim/simulator.h"

#include <algorithm>

#include "src/common/check.h"

namespace bsched {
namespace {

// Compaction triggers when stale (cancelled) entries outnumber live ones and
// the heap is large enough for the rebuild to pay for itself.
constexpr size_t kCompactMinEntries = 64;

}  // namespace

void EventHandle::Cancel() {
  if (sim_ != nullptr) {
    sim_->CancelEvent(slot_, generation_);
  }
}

EventHandle Simulator::Schedule(SimTime delay, EventFn fn) {
  BSCHED_CHECK(delay.nanos() >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(SimTime when, EventFn fn) {
  BSCHED_CHECK(when >= now_);
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push_back(Entry{when, next_seq_++, s.generation, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later());
  ++live_;
  return EventHandle(this, slot, s.generation);
}

Simulator::Entry Simulator::PopTop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later());
  Entry e = heap_.back();
  heap_.pop_back();
  return e;
}

void Simulator::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.generation;
  s.fn.Reset();
  free_slots_.push_back(slot);
}

void Simulator::Fire(const Entry& e) {
  // Move the callback out and release the slot first: the callback may
  // schedule new events, which can reuse this slot or grow the slot table.
  EventFn fn = std::move(slots_[e.slot].fn);
  ReleaseSlot(e.slot);
  --live_;
  now_ = e.when;
  ++processed_;
  fn();
}

void Simulator::CancelEvent(uint32_t slot, uint64_t generation) {
  if (slot >= slots_.size() || slots_[slot].generation != generation) {
    return;  // already fired, already cancelled, or slot since reused
  }
  ReleaseSlot(slot);
  --live_;
  MaybeCompact();
}

void Simulator::MaybeCompact() {
  if (heap_.size() < kCompactMinEntries || heap_.size() < 2 * live_) {
    return;
  }
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) { return !EntryLive(e); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later());
  ++compactions_;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    Entry e = PopTop();
    if (!EntryLive(e)) {
      ++skipped_cancelled_;
      continue;
    }
    Fire(e);
    return true;
  }
  return false;
}

uint64_t Simulator::Run(SimTime deadline) {
  uint64_t count = 0;
  while (!heap_.empty()) {
    // Discard cancelled entries here rather than firing past them: a
    // cancelled head must not let an event beyond `deadline` fire.
    if (!EntryLive(heap_.front())) {
      PopTop();
      ++skipped_cancelled_;
      continue;
    }
    if (heap_.front().when > deadline) {
      break;
    }
    Fire(PopTop());
    ++count;
  }
  return count;
}

}  // namespace bsched
