#include "src/sim/simulator.h"

#include <utility>

#include "src/common/check.h"

namespace bsched {

void EventHandle::Cancel() {
  if (cancelled_ != nullptr) {
    *cancelled_ = true;
  }
}

EventHandle Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  BSCHED_CHECK(delay.nanos() >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  BSCHED_CHECK(when >= now_);
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the event is moved out via const_cast,
    // which is safe because pop() immediately removes the moved-from shell.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (*ev.cancelled) {
      continue;
    }
    now_ = ev.when;
    ++processed_;
    ev.fn();
    return true;
  }
  return false;
}

uint64_t Simulator::Run(SimTime deadline) {
  uint64_t count = 0;
  while (!queue_.empty()) {
    // Discard cancelled events here rather than letting Step() skip them:
    // Step() fires the first live event unconditionally, so a cancelled event
    // at the head would otherwise let an event beyond `deadline` fire.
    if (*queue_.top().cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) {
      break;
    }
    if (Step()) {
      ++count;
    }
  }
  return count;
}

bool Simulator::Empty() const { return queue_.empty(); }

}  // namespace bsched
