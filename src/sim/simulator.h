// Single-threaded discrete-event simulator. All substrates (network links,
// GPU compute streams, PS shards, the ring) advance by scheduling callbacks
// on one Simulator instance, which makes every experiment deterministic.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/units.h"

namespace bsched {

// Handle returned by Schedule(); allows cancelling a pending event. Copyable;
// all copies refer to the same event.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Idempotent.
  void Cancel();

  bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}

  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. Events at equal times fire in
  // scheduling order (stable FIFO tie-break).
  EventHandle Schedule(SimTime delay, std::function<void()> fn);

  // Schedules `fn` at an absolute time, which must be >= Now().
  EventHandle ScheduleAt(SimTime when, std::function<void()> fn);

  // Runs events until the queue is empty or `deadline` is passed. Events at
  // exactly `deadline` still fire. Returns the number of events processed.
  uint64_t Run(SimTime deadline = SimTime::Max());

  // Fires the single earliest pending event. Returns false if queue is empty.
  bool Step();

  bool Empty() const;
  // Upper bound: includes events that were cancelled but not yet popped.
  size_t PendingEvents() const { return queue_.size(); }
  uint64_t processed_events() const { return processed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace bsched

#endif  // SRC_SIM_SIMULATOR_H_
