// Single-threaded discrete-event simulator. All substrates (network links,
// GPU compute streams, PS shards, the ring) advance by scheduling callbacks
// on one Simulator instance, which makes every experiment deterministic.
// Distinct Simulator instances share nothing, so independent simulations can
// run on separate threads (see src/exec/sweep_runner.h and the sharded
// parallel-DES coordinator in src/sim/shard_coordinator.h).
//
// Hot-path design: events live in a pooled slot table (reused across the
// run, so steady-state scheduling allocates nothing), callbacks are stored
// in a small-buffer-optimized EventFn (no per-event std::function heap
// allocation), and cancellation is a slot-generation check instead of a
// per-event shared_ptr control block. Cancelled entries still queued are
// lazily skipped, and the queue is compacted when they pile up. Entry
// ordering is delegated to a pluggable EventQueue policy (timer wheel by
// default, binary heap as the differential baseline); both produce
// bit-identical event trajectories.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/units.h"
#include "src/sim/event_queue.h"

namespace bsched {

// Move-only callable with small-buffer optimization: callables up to
// kInlineBytes construct in place; larger ones fall back to one heap
// allocation (the scheduler's own callbacks all fit inline).
class EventFn {
 public:
  static constexpr size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callback sink
    using D = std::decay_t<F>;
    if constexpr (FitsInline<D>()) {
      new (storage_) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's payload from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* Inline(void* storage) {
    return std::launder(reinterpret_cast<D*>(storage));
  }
  template <typename D>
  static D* Heap(void* storage) {
    return *reinterpret_cast<D**>(storage);
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*Inline<D>(s))(); },
      [](void* dst, void* src) {
        new (dst) D(std::move(*Inline<D>(src)));
        Inline<D>(src)->~D();
      },
      [](void* s) { Inline<D>(s)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (*Heap<D>(s))(); },
      [](void* dst, void* src) { *reinterpret_cast<D**>(dst) = Heap<D>(src); },
      [](void* s) { delete Heap<D>(s); },
  };

  void MoveFrom(EventFn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class Simulator;

// Handle returned by Schedule(); allows cancelling a pending event. Copyable;
// all copies refer to the same event. A handle is a (slot, generation) pair:
// once the event fires or is cancelled the slot's generation advances, so
// stale handles (including ones whose slot was reused by a later event) are
// harmless no-ops. Handles must not outlive their Simulator.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Idempotent.
  void Cancel();

  bool valid() const { return sim_ != nullptr; }

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, uint32_t slot, uint64_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}

  Simulator* sim_ = nullptr;
  uint32_t slot_ = 0;
  uint64_t generation_ = 0;
};

class Simulator {
 public:
  explicit Simulator(QueuePolicy policy = QueuePolicy::kTimerWheel)
      : queue_(MakeEventQueue(policy)) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. Events at equal times fire in
  // scheduling order (stable FIFO tie-break).
  EventHandle Schedule(SimTime delay, EventFn fn);

  // Schedules `fn` at an absolute time, which must be >= Now().
  EventHandle ScheduleAt(SimTime when, EventFn fn);

  // Fires `fn` at Now() + interval and then every `interval` after, until it
  // returns false (the final false tick is still a processed event). The
  // chain is an ordinary self-rescheduling event: it keeps the simulator
  // non-empty while armed, so the predicate must eventually return false for
  // Run() to drain. interval must be > 0.
  void SchedulePeriodic(SimTime interval, std::function<bool()> fn);

  // Runs events until the queue is empty or `deadline` is passed. Events at
  // exactly `deadline` still fire. Returns the number of events processed.
  uint64_t Run(SimTime deadline = SimTime::Max());

  // Fires the single earliest pending event. Returns false if queue is empty.
  bool Step();

  // Timestamp of the earliest live event, or false when none remain. Pops
  // (and counts) cancelled heads along the way, exactly as Run() would; the
  // shard coordinator uses this to compute lookahead windows.
  bool NextEventTime(SimTime* when);

  // True when no live (non-cancelled, not-yet-fired) events remain.
  bool Empty() const { return live_ == 0; }
  // Live events: scheduled, not cancelled, not yet fired.
  size_t PendingEvents() const { return live_; }
  // Raw queue entries, including cancelled events not yet reclaimed; equals
  // PendingEvents() after compaction. Debugging / test hook.
  size_t QueuedEvents() const { return queue_->size(); }
  // Slots ever allocated; stays flat under steady-state churn (pool reuse).
  size_t AllocatedSlots() const { return slots_.size(); }
  uint64_t processed_events() const { return processed_; }
  uint64_t compactions() const { return compactions_; }
  // Cancelled entries lazily skipped at pop time (not counting compaction).
  uint64_t skipped_cancelled() const { return skipped_cancelled_; }

 private:
  friend class EventHandle;

  struct Slot {
    uint64_t generation = 0;
    EventFn fn;
  };

  bool EntryLive(const EventEntry& e) const {
    return slots_[e.slot].generation == e.generation;
  }
  // Fires `e`, which must be live: releases its slot, advances time, runs fn.
  void Fire(const EventEntry& e);
  // Advances the slot's generation (invalidating queued entries and handles)
  // and returns it to the free list.
  void ReleaseSlot(uint32_t slot);
  void CancelEvent(uint32_t slot, uint64_t generation);
  // Rebuilds the queue without stale entries once they dominate it.
  void MaybeCompact();

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  uint64_t compactions_ = 0;
  uint64_t skipped_cancelled_ = 0;
  size_t live_ = 0;
  std::unique_ptr<EventQueue> queue_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace bsched

#endif  // SRC_SIM_SIMULATOR_H_
