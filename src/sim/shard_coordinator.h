// Conservative sharded parallel-DES coordinator. The fabric is partitioned
// into K shards, each backed by its own Simulator; shards advance together
// through lookahead windows [T, T + L) where T is the global minimum next
// event time and L is the lookahead (the minimum cross-entity message
// latency). Within a window every shard runs independently on a ThreadPool
// worker; the coordinator then joins at a barrier, collects every cross-shard
// message posted during the window, and delivers the whole batch in one fixed
// merge order — sorted by (delivery time, channel id, per-channel sequence) —
// before opening the next window.
//
// Determinism: the window sequence depends only on the global event set (T is
// a min over all shards regardless of partition), the delivered batch per
// window is the set of messages whose posting event fired in that window
// (same set at any K), and the merge order is a pure function of the batch.
// Entities interact *only* via Post() — even when source and destination
// happen to live on the same shard — so within-window execution order across
// shards cannot be observed. Results are therefore bit-identical at any shard
// count; tests/sim_test.cc and the fig04 oracle in tests/exec_test.cc enforce
// `--shards 1` vs `--shards N` equality byte for byte.
//
// Safety: Post() requires delay >= lookahead, so a message posted by an event
// at time t in window [T, T + L) arrives at t + delay >= T + L — always in a
// strictly later window, never inside one being executed.
#ifndef SRC_SIM_SHARD_COORDINATOR_H_
#define SRC_SIM_SHARD_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace bsched {

class ThreadPool;

class ShardCoordinator {
 public:
  // `lookahead` must be positive: a zero-latency fabric has no conservative
  // window and must use the serial path.
  ShardCoordinator(int shards, SimTime lookahead,
                   QueuePolicy policy = QueuePolicy::kTimerWheel);
  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;
  ~ShardCoordinator();

  int shards() const { return static_cast<int>(sims_.size()); }
  SimTime lookahead() const { return lookahead_; }
  Simulator* shard(int i) { return sims_[i].get(); }

  // Posts `fn` to run on shard `dst` at shard(src)->Now() + delay. Must be
  // called from code executing on shard `src` (during its window, or from
  // the setup thread before Run). `delay` must be >= lookahead. `channel`
  // identifies the (source entity -> destination entity) stream; messages on
  // one channel keep their posting order, and the channel id breaks
  // cross-channel ties at equal delivery times, so ids must be unique per
  // ordered stream and identical at every shard count.
  void Post(int src, int dst, uint64_t channel, SimTime delay, EventFn fn);

  // Runs windows until every shard drains (or the deadline passes; events at
  // exactly `deadline` still fire). Returns events processed this call.
  uint64_t Run(SimTime deadline = SimTime::Max());

  // True when no live events remain on any shard and no message is pending.
  bool Empty() const;

  uint64_t total_processed() const;  // summed over shards
  uint64_t windows() const { return windows_; }
  uint64_t messages_posted() const { return messages_; }

 private:
  struct PendingMsg {
    SimTime when;
    uint64_t channel;
    uint64_t channel_seq;
    int dst;
    EventFn fn;
  };
  // Written only by the thread running shard `src` within a window (or the
  // coordinator thread between windows); the window barrier publishes it.
  struct Outbox {
    std::vector<PendingMsg> msgs;
    std::map<uint64_t, uint64_t> channel_seq;
  };

  // Moves every outbox into a batch, sorts it by (when, channel, seq), and
  // schedules each message on its destination shard.
  void DeliverPending();

  SimTime lookahead_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<Outbox> outboxes_;
  std::unique_ptr<ThreadPool> pool_;  // absent when shards == 1
  uint64_t windows_ = 0;
  uint64_t messages_ = 0;
  size_t pending_count_ = 0;
};

}  // namespace bsched

#endif  // SRC_SIM_SHARD_COORDINATOR_H_
