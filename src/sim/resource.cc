#include "src/sim/resource.h"

#include <utility>

#include "src/common/check.h"

namespace bsched {

Resource::Resource(Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {
  BSCHED_CHECK(sim_ != nullptr);
}

void Resource::Submit(SimTime duration, std::function<void()> on_done) {
  BSCHED_CHECK(duration.nanos() >= 0);
  queue_.push_back(Job{duration, std::move(on_done)});
  if (!busy_) {
    StartNext();
  }
}

void Resource::StartNext() {
  BSCHED_DCHECK(!busy_);
  if (queue_.empty()) {
    return;
  }
  Job job = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  current_job_end_ = sim_->Now() + job.duration;
  sim_->Schedule(job.duration,
                 [this, on_done = std::move(job.on_done), duration = job.duration]() mutable {
                   OnJobDone(std::move(on_done), duration);
                 });
}

void Resource::OnJobDone(std::function<void()> on_done, SimTime duration) {
  busy_ = false;
  busy_time_ += duration;
  ++jobs_completed_;
  // The completion callback runs before the next job starts, matching a real
  // stack where the ACK/CQE handler fires before the NIC pulls the next WQE.
  if (on_done) {
    on_done();
  }
  if (!busy_ && !queue_.empty()) {
    StartNext();
  }
}

SimTime Resource::DrainTime() const {
  SimTime t = busy_ ? current_job_end_ : sim_->Now();
  for (const Job& job : queue_) {
    t += job.duration;
  }
  return t;
}

}  // namespace bsched
