// Event-queue policies for the discrete-event simulator. The Simulator owns
// event *semantics* (slot pool, liveness, lazy-skip accounting, compaction
// triggers); a queue only orders raw (when, seq) entries. Two interchangeable
// policies are provided:
//
//  - HeapEventQueue: the original binary min-heap (std::*_heap over a flat
//    vector). Simple, O(log n) per op, pointer-free.
//  - TimerWheelEventQueue: a 4-level x 256-slot hierarchical timer wheel
//    (calendar queue). Near-future events sit in a small "near" heap below a
//    moving horizon; farther events land in cache-friendly per-slot vectors
//    selected by bit-sliced timestamps, with per-level occupancy bitmaps for
//    an idle-advance fast path (one ctz per empty 64-slot span). Push is O(1)
//    for anything beyond the horizon, and batches of same-slot events drain
//    with one cascade instead of n heap sift-downs.
//
// Both policies expose the exact same observable contract — entries pop in
// strict (when, seq) order, cancelled entries included — so a Simulator built
// on either produces bit-identical event trajectories. tests/event_queue_test
// enforces this differentially.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/units.h"

namespace bsched {

// 32 bytes; queues permute these, never the callbacks (which stay in the
// Simulator's slot pool).
struct EventEntry {
  SimTime when;
  uint64_t seq;
  uint64_t generation;
  uint32_t slot;
};

// Min-heap comparator: true when `a` fires after `b` (later time, or same
// time but scheduled later — FIFO tie-break).
struct EventAfter {
  bool operator()(const EventEntry& a, const EventEntry& b) const {
    if (a.when != b.when) {
      return a.when > b.when;
    }
    return a.seq > b.seq;
  }
};

// Ordering contract: PopEarliest yields entries in strict (when, seq) order,
// including cancelled (dead) entries — the Simulator counts and discards
// those, so both policies share one lazy-cancellation code path.
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void Push(const EventEntry& entry) = 0;
  // Copies the earliest entry into *out without removing it. Returns false if
  // empty. May reorganize internal structure (wheel cascades), never content.
  virtual bool PeekEarliest(EventEntry* out) = 0;
  // Removes the earliest entry into *out. Returns false if empty.
  virtual bool PopEarliest(EventEntry* out) = 0;
  // Entries currently held, including cancelled ones not yet reclaimed.
  virtual size_t size() const = 0;
  // Drops every entry for which `dead` returns true (compaction pass).
  virtual void Compact(const std::function<bool(const EventEntry&)>& dead) = 0;

  bool Empty() const { return size() == 0; }
};

// Selects the queue backing a Simulator. kTimerWheel is the default engine;
// kBinaryHeap is kept as the differential-testing and benchmarking baseline.
enum class QueuePolicy {
  kTimerWheel,
  kBinaryHeap,
};

std::unique_ptr<EventQueue> MakeEventQueue(QueuePolicy policy);

class HeapEventQueue final : public EventQueue {
 public:
  void Push(const EventEntry& entry) override;
  bool PeekEarliest(EventEntry* out) override;
  bool PopEarliest(EventEntry* out) override;
  size_t size() const override { return heap_.size(); }
  void Compact(const std::function<bool(const EventEntry&)>& dead) override;

 private:
  std::vector<EventEntry> heap_;  // binary min-heap via std::*_heap
};

class TimerWheelEventQueue final : public EventQueue {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kSlotsPerLevel = 256;
  // Level l covers granules of 2^(8 + 8l) ns: 256ns, 65.5us, 16.8ms, 4.29s.
  // The whole wheel spans 2^40 ns (~18.3 min) past the horizon; anything
  // farther waits in an overflow pen until the horizon reaches its window.
  static constexpr int kShift0 = 8;

  void Push(const EventEntry& entry) override;
  bool PeekEarliest(EventEntry* out) override;
  bool PopEarliest(EventEntry* out) override;
  size_t size() const override { return size_; }
  void Compact(const std::function<bool(const EventEntry&)>& dead) override;

 private:
  static constexpr int kWordsPerLevel = kSlotsPerLevel / 64;

  static int LevelShift(int level) { return kShift0 + 8 * level; }
  // Slot index of `when` within level `level`'s ring.
  static int SlotIndex(uint64_t when, int level) {
    return static_cast<int>((when >> LevelShift(level)) & (kSlotsPerLevel - 1));
  }

  // Files an entry into near_/wheel/overflow based on the current horizon.
  // Does not touch size_ (used for both fresh pushes and cascades).
  void Place(const EventEntry& entry);
  void SetBit(int level, int idx);
  void ClearBit(int level, int idx);
  bool BitSet(int level, int idx) const;
  // First occupied slot index >= from at `level`, or -1.
  int FindOccupied(int level, int from) const;
  // Re-files every entry of wheel slot (level, idx) under the current
  // horizon; entries descend at least one level (or reach near_).
  void CascadeSlot(int level, int idx);
  // Cascades any occupied slot sitting at a level's current horizon cursor
  // (top level first, so entries chain downward in one pass). Such slots
  // appear when the horizon crosses into a fresh upper-level granule.
  void Normalize();
  // Refills near_ from the wheel/overflow by advancing the horizon to the
  // next occupied region. No-op when near_ is already non-empty.
  void AdvanceToNext();

  // Events strictly below horizon_, ordered; globally earliest when non-empty
  // (every wheel/overflow entry is at or past the horizon).
  std::vector<EventEntry> near_;
  std::vector<EventEntry> slots_[kLevels][kSlotsPerLevel];
  uint64_t occupancy_[kLevels][kWordsPerLevel] = {};
  std::vector<EventEntry> overflow_;
  uint64_t horizon_ = 0;     // ns; wheel slot positions are relative to this
  size_t wheel_count_ = 0;   // entries resident in slots_ (not near_/overflow_)
  size_t size_ = 0;
};

}  // namespace bsched

#endif  // SRC_SIM_EVENT_QUEUE_H_
