// A serialized FIFO resource: the building block for network links, PS shard
// NICs, GPU compute streams, and the all-reduce ring. Jobs submitted to a
// Resource execute one at a time, in submission order, each occupying the
// resource for its stated duration. This mirrors the paper's observation that
// the underlying communication stacks are "inherently based on FIFO queues":
// schedulers control *admission order*, never preempt an in-flight job.
#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace bsched {

class Resource {
 public:
  Resource(Simulator* sim, std::string name);
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  // Enqueues a job that holds the resource for `duration`, then invokes
  // `on_done` (may be empty). Starts immediately if the resource is idle.
  void Submit(SimTime duration, std::function<void()> on_done);

  bool busy() const { return busy_; }
  size_t queue_length() const { return queue_.size(); }
  const std::string& name() const { return name_; }

  // Total time the resource has been occupied (for utilization reporting).
  SimTime busy_time() const { return busy_time_; }
  uint64_t jobs_completed() const { return jobs_completed_; }

  // Virtual time at which all currently queued work will have drained,
  // assuming no further submissions.
  SimTime DrainTime() const;

 private:
  struct Job {
    SimTime duration;
    std::function<void()> on_done;
  };

  void StartNext();
  void OnJobDone(std::function<void()> on_done, SimTime duration);

  Simulator* sim_;
  std::string name_;
  bool busy_ = false;
  SimTime current_job_end_;
  std::deque<Job> queue_;
  SimTime busy_time_;
  uint64_t jobs_completed_ = 0;
};

}  // namespace bsched

#endif  // SRC_SIM_RESOURCE_H_
