// Sim-time metrics sampling pipeline: a TimeSeriesRecorder registered
// against a MetricsRegistry snapshots selected counters, gauges and log2
// quantile sketches on a fixed simulated-time cadence, producing the
// windowed runtime signals (queueing delay, credit occupancy, straggler
// spread *during* a run) the online auto-configuration controller consumes
// (ROADMAP item 3).
//
// Sampling is driven by ordinary Simulator timer events, grouped into
// *scopes*: each scope binds to one simulator and samples only metrics that
// are written exclusively by events on that simulator (worker w's scheduler,
// NIC links and GPU). Under the sharded parallel-DES coordinator every
// scope's tick chain therefore runs on the shard thread that owns its
// sources — relaxed atomic reads observe writes made by the same thread, so
// the sampled values are exact and shard-count-invariant. Per-scope series
// are merged in fixed (time, scope) order at export, the same discipline
// shard_coordinator uses for cross-shard messages, which makes the CSV
// byte-identical at any --shards K and any --jobs N.
//
// Zero-cost when disabled: a job with no recorder schedules no tick events
// and the simulation is bit-identical to a build without this file. An
// *enabled* recorder adds tick events (so event totals grow, identically at
// any shard count) but never mutates scheduler/network state, so iteration
// timings are unchanged.
#ifndef SRC_OBS_TIMESERIES_H_
#define SRC_OBS_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/obs/metrics.h"

namespace bsched {

class Simulator;

class TimeSeriesRecorder {
 public:
  // `registry` must outlive the recorder; `interval` is the sampling cadence
  // in simulated time (must be > 0). Keep it a few times smaller than an
  // iteration and no smaller than the coordinator lookahead — see
  // EXPERIMENTS.md §Observability for cadence guidance.
  TimeSeriesRecorder(MetricsRegistry* registry, SimTime interval);
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  MetricsRegistry* registry() const { return registry_; }
  SimTime interval() const { return interval_; }
  bool started() const { return started_; }

  // Registers a sampling scope on `sim`. Every source added to the scope
  // must be written only by events running on `sim` (per-worker metrics in
  // sharded mode). `active` is polled after each sample: the first tick on
  // which it returns false records the scope's final row and stops the
  // chain, so the predicate must eventually go false for the simulation to
  // drain (e.g. "engine not AllDone yet"). Returns the scope id.
  int AddScope(const std::string& name, Simulator* sim, std::function<bool()> active);

  // Source registration (before Start()): handles are resolved get-or-create
  // against the registry, exactly like the subsystems' own cached handles.
  // Counters and gauges record their instantaneous value per tick; sketches
  // record the *per-window* delta of a histogram (count, sum, p50/p95/p99 of
  // the observations that landed since the previous tick). Probes call an
  // arbitrary function (e.g. a Resource's busy time) on the scope's thread.
  void SampleCounter(int scope, const std::string& metric);
  void SampleGauge(int scope, const std::string& metric);
  void SampleSketch(int scope, const std::string& metric);
  void SampleProbe(int scope, const std::string& metric, std::function<int64_t()> probe);

  // Arms one periodic tick chain per scope (first tick at interval()).
  // Call exactly once, after every scope and source is registered and before
  // the simulation runs.
  void Start();

  // Merged CSV across all scopes in fixed (time, scope) order:
  //   time_ns,scope,metric,kind,value,count,sum,p50,p95,p99
  // Counter/gauge/probe rows fill `value`; sketch rows fill the window
  // aggregate columns. Byte-deterministic for deterministic simulations.
  void WriteCsv(std::ostream& os) const;
  std::string ToCsv() const;

  // Total tick rows recorded across all scopes (test / overhead probe).
  uint64_t total_ticks() const;

 private:
  struct Source {
    enum class Kind { kCounter, kGauge, kSketch, kProbe };
    Kind kind;
    std::string name;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* hist = nullptr;
    std::function<int64_t()> probe;
    // Sketch window state: per-bucket counts and sum as of the previous tick.
    std::vector<uint64_t> last_buckets;
    int64_t last_sum = 0;
  };

  // One sampled row group: every source's formatted CSV rows for one tick.
  struct Tick {
    int64_t time_ns = 0;
    std::string rows;
  };

  struct Scope {
    std::string name;
    Simulator* sim = nullptr;
    std::function<bool()> active;
    std::vector<Source> sources;
    // Appended only from the scope's own simulator thread; read at export
    // after the run joined.
    std::vector<Tick> ticks;
  };

  void SampleScope(Scope* scope);

  MetricsRegistry* registry_;
  SimTime interval_;
  bool started_ = false;
  // unique_ptr: scope addresses must stay stable once handed to tick chains.
  std::vector<std::unique_ptr<Scope>> scopes_;
};

}  // namespace bsched

#endif  // SRC_OBS_TIMESERIES_H_
