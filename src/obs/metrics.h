// Metrics registry for the observability layer: counters, gauges and
// histograms with fixed log2 buckets. Designed for zero overhead when
// disabled (subsystems hold nullptr handles and skip every call site) and a
// lock-free fast path when enabled: handles are plain atomics updated with
// relaxed operations, so concurrent simulations on the src/exec/ thread pool
// can share one registry without contention or TSan reports. Registration
// (get-or-create by name) takes a mutex; subsystems cache the returned
// handles at setup time, keeping the hot path to a null check + atomic add.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace bsched {

// Monotonically increasing count (events, bytes, retries).
class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (bytes in flight, final credit, busy nanoseconds).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Exported state of one histogram: total count/sum plus the non-empty
// buckets as (bucket index, count) pairs.
struct HistogramSnapshot {
  uint64_t count = 0;
  int64_t sum = 0;
  std::vector<std::pair<int, uint64_t>> buckets;

  // Approximate quantile (q in [0, 100]) by linear interpolation inside the
  // target bucket's [lower, upper] value range. 0 for an empty histogram.
  double Quantile(double q) const;

  // Percentile estimates (each p in [0, 100]) computed by expanding the log2
  // buckets into a bounded set of evenly-spread representative samples and
  // selecting with PercentileInPlace — the same selection the rest of the
  // harness uses, so CSV percentiles and bench percentiles agree on
  // convention. Returns one value per requested percentile; all zeros for an
  // empty histogram.
  std::vector<double> Percentiles(const std::vector<double>& ps) const;
};

// Fixed log2-bucket histogram over non-negative integer samples (bytes,
// nanoseconds, queue depths). Bucket 0 holds v <= 0; bucket k (k >= 1) holds
// v in [2^(k-1), 2^k - 1], i.e. the bit width of v. Observations are relaxed
// atomic increments — no locks, no allocation.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Observe(int64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static int BucketIndex(int64_t v) {
    if (v <= 0) {
      return 0;
    }
    const int width = std::bit_width(static_cast<uint64_t>(v));
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  // Largest value that lands in `index` (inclusive); bucket 0 tops out at 0.
  static int64_t BucketUpperBound(int index);
  // Smallest value of `index`; bucket 0 has no meaningful lower bound.
  static int64_t BucketLowerBound(int index);

  uint64_t count() const;
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> sum_{0};
};

// Point-in-time export of a whole registry. Maps are name-sorted, so two
// snapshots of identical metric state serialize byte-identically regardless
// of registration order or thread interleaving.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void WriteJson(std::ostream& os) const;
  void WriteCsv(std::ostream& os) const;
};

// Get-or-create registry of named metrics. Handles are stable for the
// registry's lifetime; the same name always returns the same handle.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;  // guards the maps; never held on the update path
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace bsched

#endif  // SRC_OBS_METRICS_H_
