// Critical-path analyzer: replays a recorded trace (compute spans, scheduler
// wait spans, link/PS spans, and the per-partition Perfetto flow arcs) into a
// per-iteration decomposition of wall-clock time — how much of each
// iteration is attributable to compute, transport, credit-wait, and
// retransmit recovery — plus the top-k straggler partitions by flow-arc
// duration. This is the DAG-of-S-SGD lens (Shi et al.): the iteration is
// bounded by its slowest worker, and that worker's timeline decomposes into
// the four resources the scheduler can trade against each other.
//
// Inputs are producer-agnostic plain structs; bench/obs_report fills them
// from a Chrome trace JSON (LoadCpInputFromChromeTrace), tests can fill them
// synthetically or round-trip a TraceRecorder through the same loader.
#ifndef SRC_OBS_CRITICAL_PATH_H_
#define SRC_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace bsched::obs {

// One complete span ("X" event) with its track resolved to a name.
struct CpSpan {
  std::string track;
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  // The scheduler wait spans' "attempt" arg (0 = first admission; >= 1 means
  // the wait preceded a retry, i.e. retransmit recovery time).
  int attempt = 0;
};

// One flow event ("s"/"t"/"f") of a partition's arc.
struct CpFlowPoint {
  std::string track;
  std::string name;
  double ts_us = 0.0;
  char ph = 't';
};

struct CpInput {
  std::vector<CpSpan> spans;
  std::map<uint64_t, std::vector<CpFlowPoint>> flows;  // flow id -> points
};

// Longest-path decomposition of one iteration: the window ends at the
// slowest worker's last backprop op, and that worker's timeline is
// attributed by priority — compute, then credit-wait, then recovery, then
// transport — with overlaps subtracted so the components never double-count.
struct IterationBreakdown {
  int iter = 0;
  int critical_worker = -1;
  double start_us = 0.0;
  double end_us = 0.0;
  double compute_us = 0.0;
  double credit_wait_us = 0.0;
  double recovery_us = 0.0;
  double transport_us = 0.0;

  double total_us() const { return end_us - start_us; }
  double attributed_us() const {
    return compute_us + credit_wait_us + recovery_us + transport_us;
  }
  // Fraction of the iteration's wall-clock the four components explain.
  double coverage() const { return total_us() > 0 ? attributed_us() / total_us() : 1.0; }
};

// One straggler partition: a flow arc ranked by end-to-end duration.
struct StragglerPartition {
  uint64_t flow_id = 0;
  std::string name;  // the arc-opening admit flow event's name
  int iter = -1;     // iteration window containing the arc start (-1: warmup edge)
  double start_us = 0.0;
  double end_us = 0.0;

  double duration_us() const { return end_us - start_us; }
};

struct CriticalPathReport {
  std::vector<IterationBreakdown> iterations;
  std::vector<StragglerPartition> stragglers;  // top-k, longest first

  // Smallest per-iteration coverage (1.0 when there are no iterations).
  double MinCoverage() const;
};

// Analyzes the trace. Iteration k's window is (end of iteration k-1's
// slowest backprop, end of iteration k's]; iteration 0 starts at the
// earliest span. Returns an empty report when the trace has no per-worker
// backprop spans (e.g. metrics-only captures).
CriticalPathReport AnalyzeCriticalPath(const CpInput& input, int top_k = 5);

// CSV for the decomposition figure family: one row per iteration.
//   iter,critical_worker,start_us,end_us,total_us,compute_us,transport_us,
//   credit_wait_us,recovery_us,coverage
void WriteCriticalPathCsv(const CriticalPathReport& report, std::ostream& os);

// Fills a CpInput from Chrome trace-event JSON (the TraceRecorder format:
// thread_name metadata + X/s/t/f events). Returns false (with *error set)
// on malformed JSON.
bool LoadCpInputFromChromeTrace(const std::string& json, CpInput* out, std::string* error);

}  // namespace bsched::obs

#endif  // SRC_OBS_CRITICAL_PATH_H_
