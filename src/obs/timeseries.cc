#include "src/obs/timeseries.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

// Fixed-format double for CSV cells: deterministic across platforms for the
// integer-derived percentile estimates we emit, and trailing-zero-trimmed so
// the common integral case reads cleanly.
void AppendDouble(std::string* out, double v) {
  char buf[64];
  int len = std::snprintf(buf, sizeof(buf), "%.4f", v);
  while (len > 0 && buf[len - 1] == '0') {
    --len;
  }
  if (len > 0 && buf[len - 1] == '.') {
    --len;
  }
  out->append(buf, static_cast<size_t>(len));
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  const int len = std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf, static_cast<size_t>(len));
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(MetricsRegistry* registry, SimTime interval)
    : registry_(registry), interval_(interval) {
  BSCHED_CHECK(registry_ != nullptr);
  BSCHED_CHECK(interval_.nanos() > 0);
}

int TimeSeriesRecorder::AddScope(const std::string& name, Simulator* sim,
                                 std::function<bool()> active) {
  BSCHED_CHECK(!started_);
  BSCHED_CHECK(sim != nullptr);
  BSCHED_CHECK(active != nullptr);
  auto scope = std::make_unique<Scope>();
  scope->name = name;
  scope->sim = sim;
  scope->active = std::move(active);
  scopes_.push_back(std::move(scope));
  return static_cast<int>(scopes_.size()) - 1;
}

void TimeSeriesRecorder::SampleCounter(int scope, const std::string& metric) {
  BSCHED_CHECK(!started_);
  Source src;
  src.kind = Source::Kind::kCounter;
  src.name = metric;
  src.counter = registry_->counter(metric);
  scopes_.at(scope)->sources.push_back(std::move(src));
}

void TimeSeriesRecorder::SampleGauge(int scope, const std::string& metric) {
  BSCHED_CHECK(!started_);
  Source src;
  src.kind = Source::Kind::kGauge;
  src.name = metric;
  src.gauge = registry_->gauge(metric);
  scopes_.at(scope)->sources.push_back(std::move(src));
}

void TimeSeriesRecorder::SampleSketch(int scope, const std::string& metric) {
  BSCHED_CHECK(!started_);
  Source src;
  src.kind = Source::Kind::kSketch;
  src.name = metric;
  src.hist = registry_->histogram(metric);
  src.last_buckets.assign(Histogram::kNumBuckets, 0);
  scopes_.at(scope)->sources.push_back(std::move(src));
}

void TimeSeriesRecorder::SampleProbe(int scope, const std::string& metric,
                                     std::function<int64_t()> probe) {
  BSCHED_CHECK(!started_);
  BSCHED_CHECK(probe != nullptr);
  Source src;
  src.kind = Source::Kind::kProbe;
  src.name = metric;
  src.probe = std::move(probe);
  scopes_.at(scope)->sources.push_back(std::move(src));
}

void TimeSeriesRecorder::SampleScope(Scope* scope) {
  Tick tick;
  tick.time_ns = scope->sim->Now().nanos();
  std::string& rows = tick.rows;
  for (Source& src : scope->sources) {
    AppendInt(&rows, tick.time_ns);
    rows += ',';
    rows += scope->name;
    rows += ',';
    rows += src.name;
    rows += ',';
    switch (src.kind) {
      case Source::Kind::kCounter:
        rows += "counter,";
        AppendInt(&rows, static_cast<int64_t>(src.counter->value()));
        rows += ",,,,,";
        break;
      case Source::Kind::kGauge:
        rows += "gauge,";
        AppendInt(&rows, src.gauge->value());
        rows += ",,,,,";
        break;
      case Source::Kind::kProbe:
        rows += "probe,";
        AppendInt(&rows, src.probe());
        rows += ",,,,,";
        break;
      case Source::Kind::kSketch: {
        // Per-window delta of the histogram: the bucket counts that landed
        // since the previous tick form a mergeable sketch of this window's
        // observations. Sources are written only by this scope's simulator
        // thread, so relaxed loads here are exact, not racy estimates.
        HistogramSnapshot window;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          const uint64_t cur = src.hist->bucket_count(i);
          const uint64_t delta = cur - src.last_buckets[i];
          src.last_buckets[i] = cur;
          if (delta > 0) {
            window.buckets.emplace_back(i, delta);
            window.count += delta;
          }
        }
        const int64_t cur_sum = src.hist->sum();
        window.sum = cur_sum - src.last_sum;
        src.last_sum = cur_sum;
        const std::vector<double> p = window.Percentiles({50.0, 95.0, 99.0});
        rows += "sketch,,";
        AppendInt(&rows, static_cast<int64_t>(window.count));
        rows += ',';
        AppendInt(&rows, window.sum);
        rows += ',';
        AppendDouble(&rows, p[0]);
        rows += ',';
        AppendDouble(&rows, p[1]);
        rows += ',';
        AppendDouble(&rows, p[2]);
        break;
      }
    }
    rows += '\n';
  }
  scope->ticks.push_back(std::move(tick));
}

void TimeSeriesRecorder::Start() {
  BSCHED_CHECK(!started_ && "TimeSeriesRecorder::Start() must be called exactly once");
  started_ = true;
  for (auto& scope : scopes_) {
    Scope* s = scope.get();
    s->sim->SchedulePeriodic(interval_, [this, s] {
      SampleScope(s);
      return s->active();
    });
  }
}

void TimeSeriesRecorder::WriteCsv(std::ostream& os) const {
  os << "time_ns,scope,metric,kind,value,count,sum,p50,p95,p99\n";
  // Merge per-scope series in fixed (time, scope) order — the same ordering
  // discipline the shard coordinator uses — so the merged stream is
  // independent of which thread recorded which scope and of the shard count.
  struct Ref {
    int64_t time_ns;
    size_t scope;
    size_t tick;
  };
  std::vector<Ref> refs;
  for (size_t si = 0; si < scopes_.size(); ++si) {
    const Scope& scope = *scopes_[si];
    for (size_t ti = 0; ti < scope.ticks.size(); ++ti) {
      refs.push_back(Ref{scope.ticks[ti].time_ns, si, ti});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.time_ns != b.time_ns) {
      return a.time_ns < b.time_ns;
    }
    if (a.scope != b.scope) {
      return a.scope < b.scope;
    }
    return a.tick < b.tick;
  });
  for (const Ref& ref : refs) {
    os << scopes_[ref.scope]->ticks[ref.tick].rows;
  }
}

std::string TimeSeriesRecorder::ToCsv() const {
  std::ostringstream os;
  WriteCsv(os);
  return os.str();
}

uint64_t TimeSeriesRecorder::total_ticks() const {
  uint64_t total = 0;
  for (const auto& scope : scopes_) {
    total += scope->ticks.size();
  }
  return total;
}

}  // namespace bsched
