// ObsContext: the handle every instrumented subsystem receives. Bundles the
// two observability sinks — a TraceRecorder for causal spans/flow events and
// a MetricsRegistry for counters/gauges/histograms — plus the flow-id
// bookkeeping that stitches a partition's life (queue admit -> credit grant
// -> link transit -> PS push/update/pull or ring hop -> finish) into one
// connected arc across tracks.
//
// A null ObsContext (or null members) disables the corresponding layer with
// a single pointer check at each site; no simulation events are ever
// scheduled by instrumentation, so an instrumented run is event-for-event
// identical to an uninstrumented one.
//
// Flow-id bookkeeping is NOT thread-safe: one ObsContext belongs to one
// job's (single-threaded) Simulator. The MetricsRegistry it points to may be
// shared across threads — its handles are atomics.
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <cstdint>
#include <map>
#include <tuple>

#include "src/common/trace.h"
#include "src/obs/metrics.h"

namespace bsched {

class ObsContext {
 public:
  ObsContext() = default;
  ObsContext(TraceRecorder* trace, MetricsRegistry* metrics)
      : trace_(trace), metrics_(metrics) {}

  TraceRecorder* trace() const { return trace_; }
  MetricsRegistry* metrics() const { return metrics_; }

  bool tracing() const { return trace_ != nullptr; }

  // ---- flow arcs ----------------------------------------------------------
  // A flow id ties trace events on different tracks into one arc. The
  // scheduler opens a flow when it first admits a push (or all-reduce)
  // partition; the backend steps it through link/shard hops; the matching
  // pull's completion closes it. Ids are never 0 (0 = "no flow").

  uint64_t NewFlow() { return ++last_flow_; }

  // Opens (or reopens, for a new iteration reusing the same slot) the flow of
  // one (worker, tensor, partition) and returns its id.
  uint64_t BeginPartitionFlow(int worker, int64_t tensor_id, int partition) {
    const uint64_t id = ++last_flow_;
    partition_flows_[Key{worker, tensor_id, partition}] = id;
    return id;
  }

  // The open flow of a partition, or 0 when none (e.g. a pull admitted with
  // no tracked push, as in the TF step-start variable reads).
  uint64_t LookupPartitionFlow(int worker, int64_t tensor_id, int partition) const {
    const auto it = partition_flows_.find(Key{worker, tensor_id, partition});
    return it != partition_flows_.end() ? it->second : 0;
  }

  void EndPartitionFlow(int worker, int64_t tensor_id, int partition) {
    partition_flows_.erase(Key{worker, tensor_id, partition});
  }

 private:
  using Key = std::tuple<int, int64_t, int>;

  TraceRecorder* trace_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  uint64_t last_flow_ = 0;
  std::map<Key, uint64_t> partition_flows_;
};

}  // namespace bsched

#endif  // SRC_OBS_OBS_H_
