// Minimal JSON reader/writer helpers for the observability tooling: the
// obs_report CLI and the round-trip tests parse exported trace and metrics
// files without external dependencies. Supports the full JSON value grammar
// (objects, arrays, strings with escapes, numbers, booleans, null); numbers
// are held as double, which is exact for every integer this repo emits.
#ifndef SRC_OBS_JSON_LITE_H_
#define SRC_OBS_JSON_LITE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bsched {
namespace obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion order preserved (duplicate keys keep the last occurrence on
  // Find, which matches common parser behaviour).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // Object member lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  double NumberOr(double def) const { return is_number() ? number : def; }
  int64_t IntOr(int64_t def) const {
    return is_number() ? static_cast<int64_t>(number) : def;
  }
  std::string StringOr(std::string def) const { return is_string() ? str : std::move(def); }
};

// Parses `text` into `out`. On failure returns false and, if `error` is
// non-null, stores a message with the byte offset of the problem.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error = nullptr);

// Escapes a string for embedding in a JSON string literal: quotes,
// backslashes, and control characters (as \uXXXX or the short forms).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace bsched

#endif  // SRC_OBS_JSON_LITE_H_
