#include "src/obs/json_lite.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace bsched {
namespace obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipSpace();
    if (!ParseValue(out)) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing content at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool Fail(const char* message) {
    if (error_.empty()) {
      error_ = message;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseKeyword(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) {
      return true;
    }
    for (;;) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipSpace();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) {
      return true;
    }
    for (;;) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not combined;
          // our own writer only emits \u00XX control escapes).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseKeyword(JsonValue* out) {
    const std::string_view rest = text_.substr(pos_);
    if (rest.rfind("true", 0) == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (rest.rfind("false", 0) == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (rest.rfind("null", 0) == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return Fail("unknown keyword");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) {
      found = &v;
    }
  }
  return found;
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text).Parse(out, error);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xFF);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace bsched
