#include "src/obs/metrics.h"

#include <algorithm>
#include <limits>
#include <span>

#include "src/common/stats.h"
#include "src/obs/json_lite.h"

namespace bsched {

int64_t Histogram::BucketUpperBound(int index) {
  if (index <= 0) {
    return 0;
  }
  if (index >= kNumBuckets - 1) {
    return std::numeric_limits<int64_t>::max();
  }
  return (int64_t{1} << index) - 1;
}

int64_t Histogram::BucketLowerBound(int index) {
  if (index <= 0) {
    return 0;
  }
  return int64_t{1} << (index - 1);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c > 0) {
      snap.buckets.emplace_back(i, c);
      snap.count += c;
    }
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  const double target = q / 100.0 * static_cast<double>(count);
  uint64_t cum = 0;
  for (const auto& [index, c] : buckets) {
    cum += c;
    if (static_cast<double>(cum) >= target) {
      // Interpolate within the bucket's value range by the target's position
      // among the bucket's samples.
      const double lo = static_cast<double>(Histogram::BucketLowerBound(index));
      const double hi = static_cast<double>(Histogram::BucketUpperBound(index));
      const double into = static_cast<double>(c) - (static_cast<double>(cum) - target);
      const double frac = into / static_cast<double>(c);
      return lo + (hi - lo) * frac;
    }
  }
  return static_cast<double>(Histogram::BucketUpperBound(buckets.back().first));
}

std::vector<double> HistogramSnapshot::Percentiles(const std::vector<double>& ps) const {
  std::vector<double> out(ps.size(), 0.0);
  if (count == 0) {
    return out;
  }
  // Expand each bucket into representative points spread evenly across its
  // value range, capped at ~4k points total (proportional allocation, at
  // least one point per non-empty bucket) so a billion-sample histogram
  // still selects in microseconds.
  constexpr uint64_t kMaxPoints = 4096;
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(std::min(count, kMaxPoints)) + buckets.size());
  for (const auto& [index, c] : buckets) {
    const uint64_t n = count > kMaxPoints ? std::max<uint64_t>(1, c * kMaxPoints / count) : c;
    const double lo = static_cast<double>(Histogram::BucketLowerBound(index));
    const double hi = static_cast<double>(Histogram::BucketUpperBound(index));
    for (uint64_t j = 0; j < n; ++j) {
      const double frac = (2.0 * static_cast<double>(j) + 1.0) / (2.0 * static_cast<double>(n));
      samples.push_back(lo + (hi - lo) * frac);
    }
  }
  for (size_t i = 0; i < ps.size(); ++i) {
    out[i] = PercentileInPlace(std::span<double>(samples), ps[i]);
  }
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace(name, h->Snapshot());
  }
  return snap;
}

void MetricsSnapshot::WriteJson(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << obs::JsonEscape(name) << "\": " << v;
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << obs::JsonEscape(name) << "\": " << v;
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << obs::JsonEscape(name) << "\": {\"count\": "
       << h.count << ", \"sum\": " << h.sum << ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [index, c] : h.buckets) {
      os << (first_bucket ? "" : ", ") << "[" << index << ", " << c << "]";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "}\n" : "\n  }\n");
  os << "}\n";
}

void MetricsSnapshot::WriteCsv(std::ostream& os) const {
  os << "kind,name,value,count,sum,p50,p95,p99\n";
  for (const auto& [name, v] : counters) {
    os << "counter," << name << "," << v << ",,,,,\n";
  }
  for (const auto& [name, v] : gauges) {
    os << "gauge," << name << "," << v << ",,,,,\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::vector<double> p = h.Percentiles({50.0, 95.0, 99.0});
    os << "histogram," << name << ",," << h.count << "," << h.sum << "," << p[0] << ","
       << p[1] << "," << p[2] << "\n";
  }
}

}  // namespace bsched
