#include "src/obs/critical_path.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "src/obs/json_lite.h"

namespace bsched::obs {
namespace {

// Closed-open [start, end) microsecond intervals, kept sorted and disjoint.
using Intervals = std::vector<std::pair<double, double>>;

Intervals Normalize(Intervals iv) {
  std::sort(iv.begin(), iv.end());
  Intervals out;
  for (const auto& [lo, hi] : iv) {
    if (hi <= lo) {
      continue;
    }
    if (!out.empty() && lo <= out.back().second) {
      out.back().second = std::max(out.back().second, hi);
    } else {
      out.emplace_back(lo, hi);
    }
  }
  return out;
}

// Intersection of normalized `iv` with [lo, hi).
Intervals Clip(const Intervals& iv, double lo, double hi) {
  Intervals out;
  for (const auto& [a, b] : iv) {
    const double s = std::max(a, lo);
    const double e = std::min(b, hi);
    if (e > s) {
      out.emplace_back(s, e);
    }
  }
  return out;
}

// Set difference a \ b of normalized interval lists.
Intervals Subtract(const Intervals& a, const Intervals& b) {
  Intervals out;
  size_t j = 0;
  for (auto [lo, hi] : a) {
    while (j < b.size() && b[j].second <= lo) {
      ++j;
    }
    size_t k = j;
    double cur = lo;
    while (k < b.size() && b[k].first < hi) {
      if (b[k].first > cur) {
        out.emplace_back(cur, b[k].first);
      }
      cur = std::max(cur, b[k].second);
      if (cur >= hi) {
        break;
      }
      ++k;
    }
    if (cur < hi) {
      out.emplace_back(cur, hi);
    }
  }
  return out;
}

double Total(const Intervals& iv) {
  double total = 0.0;
  for (const auto& [lo, hi] : iv) {
    total += hi - lo;
  }
  return total;
}

// Parses a worker index out of "worker<w>/gpu"-style track names; -1 when
// the prefix does not match or no digits follow.
int WorkerOf(const std::string& track, const std::string& prefix) {
  if (track.size() <= prefix.size() || track.compare(0, prefix.size(), prefix) != 0) {
    return -1;
  }
  int w = 0;
  bool any = false;
  for (size_t i = prefix.size(); i < track.size(); ++i) {
    const char c = track[i];
    if (c < '0' || c > '9') {
      break;
    }
    w = w * 10 + (c - '0');
    any = true;
  }
  return any ? w : -1;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Parses "b<k>_0" (a worker's last backprop op of iteration k); -1 otherwise.
int BpEndIter(const std::string& name) {
  if (name.size() < 3 || name[0] != 'b') {
    return -1;
  }
  size_t i = 1;
  int k = 0;
  bool any = false;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    k = k * 10 + (name[i] - '0');
    any = true;
    ++i;
  }
  if (!any || i + 2 != name.size() || name[i] != '_' || name[i + 1] != '0') {
    return -1;
  }
  return k;
}

struct WorkerTimeline {
  Intervals compute;    // worker<w>/gpu spans
  Intervals credit;     // sched/w<w> *.credit_wait spans
  Intervals recovery;   // sched/w<w> *.wait spans with attempt >= 1
  Intervals transport;  // worker<w>/comm + net/worker<w>.* + attempt-0 waits
  std::vector<double> bp_end;  // per-iteration last-backprop end
};

}  // namespace

double CriticalPathReport::MinCoverage() const {
  double min_cov = 1.0;
  for (const IterationBreakdown& it : iterations) {
    min_cov = std::min(min_cov, it.coverage());
  }
  return min_cov;
}

CriticalPathReport AnalyzeCriticalPath(const CpInput& input, int top_k) {
  CriticalPathReport report;
  std::map<int, WorkerTimeline> workers;
  // PS update spans model the shard-side aggregation each pull waits on; the
  // shards are shared, so the spans count as transport for every worker
  // (priority subtraction keeps them from double-counting anything the
  // worker's own spans already explain).
  Intervals shared_ps;
  double min_ts = std::numeric_limits<double>::infinity();
  int num_iters = 0;

  for (const CpSpan& span : input.spans) {
    min_ts = std::min(min_ts, span.ts_us);
    const double end = span.ts_us + span.dur_us;
    int w;
    if ((w = WorkerOf(span.track, "worker")) >= 0) {
      WorkerTimeline& wt = workers[w];
      if (EndsWith(span.track, "/gpu")) {
        wt.compute.emplace_back(span.ts_us, end);
        const int iter = BpEndIter(span.name);
        if (iter >= 0) {
          if (static_cast<int>(wt.bp_end.size()) <= iter) {
            wt.bp_end.resize(iter + 1, 0.0);
          }
          wt.bp_end[iter] = std::max(wt.bp_end[iter], end);
          num_iters = std::max(num_iters, iter + 1);
        }
      } else if (EndsWith(span.track, "/comm")) {
        wt.transport.emplace_back(span.ts_us, end);
      }
    } else if ((w = WorkerOf(span.track, "sched/w")) >= 0) {
      WorkerTimeline& wt = workers[w];
      if (EndsWith(span.name, ".credit_wait")) {
        wt.credit.emplace_back(span.ts_us, end);
      } else if (EndsWith(span.name, ".wait")) {
        (span.attempt >= 1 ? wt.recovery : wt.transport).emplace_back(span.ts_us, end);
      }
    } else if ((w = WorkerOf(span.track, "net/worker")) >= 0) {
      workers[w].transport.emplace_back(span.ts_us, end);
    } else if (span.track.compare(0, 3, "ps/") == 0) {
      shared_ps.emplace_back(span.ts_us, end);
    }
  }
  if (num_iters == 0 || !std::isfinite(min_ts)) {
    return report;
  }

  shared_ps = Normalize(shared_ps);
  for (auto& [w, wt] : workers) {
    wt.compute = Normalize(wt.compute);
    wt.credit = Normalize(wt.credit);
    wt.recovery = Normalize(wt.recovery);
    wt.transport.insert(wt.transport.end(), shared_ps.begin(), shared_ps.end());
    wt.transport = Normalize(wt.transport);
  }

  // Iteration windows: (slowest bp end of k-1, slowest bp end of k], with the
  // first window opening at the earliest span.
  std::vector<double> iter_end(num_iters, 0.0);
  std::vector<int> critical(num_iters, -1);
  for (const auto& [w, wt] : workers) {
    for (int k = 0; k < static_cast<int>(wt.bp_end.size()); ++k) {
      if (wt.bp_end[k] > iter_end[k]) {
        iter_end[k] = wt.bp_end[k];
        critical[k] = w;
      }
    }
  }

  double window_start = min_ts;
  for (int k = 0; k < num_iters; ++k) {
    IterationBreakdown it;
    it.iter = k;
    it.critical_worker = critical[k];
    it.start_us = window_start;
    it.end_us = iter_end[k];
    window_start = iter_end[k];
    if (it.critical_worker < 0 || it.end_us <= it.start_us) {
      report.iterations.push_back(it);
      continue;
    }
    // Longest-path attribution on the critical worker's timeline: higher-
    // priority components claim their intervals first; each later component
    // only claims time no earlier component explained.
    const WorkerTimeline& wt = workers[it.critical_worker];
    const Intervals comp = Clip(wt.compute, it.start_us, it.end_us);
    const Intervals credit = Subtract(Clip(wt.credit, it.start_us, it.end_us), comp);
    Intervals rec = Subtract(Clip(wt.recovery, it.start_us, it.end_us), comp);
    rec = Subtract(rec, credit);
    Intervals trans = Subtract(Clip(wt.transport, it.start_us, it.end_us), comp);
    trans = Subtract(trans, credit);
    trans = Subtract(trans, rec);
    it.compute_us = Total(comp);
    it.credit_wait_us = Total(credit);
    it.recovery_us = Total(rec);
    it.transport_us = Total(trans);
    report.iterations.push_back(it);
  }

  // Straggler partitions: flow arcs ranked by end-to-end duration.
  std::vector<StragglerPartition> arcs;
  for (const auto& [flow_id, points] : input.flows) {
    if (points.size() < 2) {
      continue;
    }
    StragglerPartition arc;
    arc.flow_id = flow_id;
    arc.start_us = std::numeric_limits<double>::infinity();
    arc.end_us = -std::numeric_limits<double>::infinity();
    for (const CpFlowPoint& p : points) {
      arc.start_us = std::min(arc.start_us, p.ts_us);
      arc.end_us = std::max(arc.end_us, p.ts_us);
      if (p.ph == 's' || arc.name.empty()) {
        arc.name = p.name;
      }
    }
    for (const IterationBreakdown& it : report.iterations) {
      if (arc.start_us >= it.start_us && arc.start_us < it.end_us) {
        arc.iter = it.iter;
        break;
      }
    }
    arcs.push_back(std::move(arc));
  }
  std::sort(arcs.begin(), arcs.end(), [](const StragglerPartition& a,
                                         const StragglerPartition& b) {
    if (a.duration_us() != b.duration_us()) {
      return a.duration_us() > b.duration_us();
    }
    if (a.start_us != b.start_us) {
      return a.start_us < b.start_us;
    }
    return a.flow_id < b.flow_id;
  });
  if (top_k >= 0 && static_cast<int>(arcs.size()) > top_k) {
    arcs.resize(top_k);
  }
  report.stragglers = std::move(arcs);
  return report;
}

void WriteCriticalPathCsv(const CriticalPathReport& report, std::ostream& os) {
  os << "iter,critical_worker,start_us,end_us,total_us,compute_us,transport_us,"
        "credit_wait_us,recovery_us,coverage\n";
  char buf[256];
  for (const IterationBreakdown& it : report.iterations) {
    std::snprintf(buf, sizeof(buf), "%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.4f\n",
                  it.iter, it.critical_worker, it.start_us, it.end_us, it.total_us(),
                  it.compute_us, it.transport_us, it.credit_wait_us, it.recovery_us,
                  it.coverage());
    os << buf;
  }
}

bool LoadCpInputFromChromeTrace(const std::string& json, CpInput* out, std::string* error) {
  JsonValue root;
  std::string parse_error;
  if (!ParseJson(json, &root, &parse_error) || !root.is_array()) {
    if (error != nullptr) {
      *error = parse_error.empty() ? "not a Chrome trace array" : parse_error;
    }
    return false;
  }
  // Pass 1: tid -> track name from the thread_name metadata events.
  std::map<int, std::string> track_names;
  for (const JsonValue& ev : root.array) {
    if (!ev.is_object()) {
      continue;
    }
    const JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || ph->StringOr("") != "M") {
      continue;
    }
    const JsonValue* name = ev.Find("name");
    const JsonValue* args = ev.Find("args");
    if (name == nullptr || name->StringOr("") != "thread_name" || args == nullptr) {
      continue;
    }
    const JsonValue* track = args->Find("name");
    const JsonValue* tid = ev.Find("tid");
    if (track != nullptr && track->is_string() && tid != nullptr) {
      track_names[static_cast<int>(tid->IntOr(0))] = track->str;
    }
  }
  // Pass 2: spans and flow points, with tracks resolved.
  for (const JsonValue& ev : root.array) {
    if (!ev.is_object()) {
      continue;
    }
    const JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str.empty()) {
      continue;
    }
    const JsonValue* tid = ev.Find("tid");
    const auto track_it =
        track_names.find(tid != nullptr ? static_cast<int>(tid->IntOr(0)) : 0);
    const std::string track = track_it != track_names.end() ? track_it->second : "";
    const JsonValue* ts = ev.Find("ts");
    const JsonValue* name = ev.Find("name");
    switch (ph->str[0]) {
      case 'X': {
        CpSpan span;
        span.track = track;
        span.name = name != nullptr ? name->StringOr("") : "";
        span.ts_us = ts != nullptr ? ts->NumberOr(0.0) : 0.0;
        const JsonValue* dur = ev.Find("dur");
        span.dur_us = dur != nullptr ? dur->NumberOr(0.0) : 0.0;
        const JsonValue* args = ev.Find("args");
        if (args != nullptr) {
          const JsonValue* attempt = args->Find("attempt");
          if (attempt != nullptr) {
            span.attempt = static_cast<int>(attempt->IntOr(0));
          }
        }
        out->spans.push_back(std::move(span));
        break;
      }
      case 's':
      case 't':
      case 'f': {
        const JsonValue* id = ev.Find("id");
        if (id != nullptr && id->is_number()) {
          CpFlowPoint point;
          point.track = track;
          point.name = name != nullptr ? name->StringOr("") : "";
          point.ts_us = ts != nullptr ? ts->NumberOr(0.0) : 0.0;
          point.ph = ph->str[0];
          out->flows[static_cast<uint64_t>(id->number)].push_back(std::move(point));
        }
        break;
      }
      default:
        break;
    }
  }
  return true;
}

}  // namespace bsched::obs
