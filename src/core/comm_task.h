// The paper's unified communication abstraction (§3.2). A CommTask wraps one
// tensor's communication operation (push, pull, or all-reduce) independently
// of the training framework and of the communication architecture; the Core
// partitions it into SubCommTasks and schedules those.
#ifndef SRC_CORE_COMM_TASK_H_
#define SRC_CORE_COMM_TASK_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace bsched {

enum class CommOpType {
  kPush,
  kPull,
  kAllReduce,
};

const char* ToString(CommOpType type);

using CommTaskId = int64_t;
inline constexpr CommTaskId kInvalidCommTask = -1;

// Description of one tensor's communication, provided by the framework plugin
// when it wraps an engine communication operation.
struct CommTaskDesc {
  // Scheduling worker (each PS worker runs its own Core; all-reduce runs one
  // master Core as in §5 "only the master Core determines the order").
  int worker = 0;
  // DNN layer index; layer 0 is nearest the input. This is the priority for
  // declarative engines (topological order) and equals the creation order
  // tie-break for imperative engines (§3.2).
  int layer = 0;
  Bytes tensor_bytes = 0;
  CommOpType type = CommOpType::kPush;
  std::string name;
  // Cluster-global tensor identity used by backends for PS shard assignment
  // and aggregation slots. Defaults (-1) to the layer index; co-scheduled
  // jobs sharing one backend give each job a disjoint id range while keeping
  // `layer` as the (job-local) scheduling priority.
  int64_t tensor_id = -1;
  // Per-task partition size overriding the scheduler config when > 0. Used to
  // model framework-native splitting (e.g. ps-lite slices tensors above its
  // big-array bound evenly across servers even without ByteScheduler).
  Bytes partition_bytes_override = 0;
  // Fires when every partition of this task has completed.
  std::function<void()> on_finish;
  // Optional: fires as each partition completes (the PS plugin uses this to
  // make pull partitions ready as soon as their push partition is acked).
  std::function<void(int partition)> on_partition_finish;
};

// One partition of a CommTask, as admitted to the underlying FIFO stack.
struct SubCommTask {
  CommTaskId task = kInvalidCommTask;
  int worker = 0;
  int layer = 0;           // scheduling priority source (job-local)
  int64_t tensor_id = 0;   // backend identity (cluster-global)
  int partition = 0;
  Bytes bytes = 0;
  CommOpType type = CommOpType::kPush;
  // Trace flow-arc id stitching this partition's hops across tracks
  // (assigned by the scheduler at admit when tracing; 0 = untracked).
  uint64_t flow = 0;
};

// Queue ordering for the Core's priority queue. Lower key = more urgent.
// Priority policy: layer first (Theorem 1), pulls ahead of pushes at equal
// layer (a completed pull directly unblocks forward compute), then FIFO
// arrival order as the tie-break.
struct SubTaskKey {
  int layer = 0;
  int type_rank = 0;
  uint64_t arrival_seq = 0;

  friend auto operator<=>(const SubTaskKey&, const SubTaskKey&) = default;
};

// Scheduling policy + the two tuned knobs of §4.
struct SchedulerConfig {
  enum class Policy {
    kFifo,      // vanilla framework: admission in ready order
    kPriority,  // ByteScheduler / P3: layer-priority admission
  };

  // Recovery policy for lost or stalled subtasks (fault injection): a started
  // subtask that has not completed within `timeout` has its charged credit
  // restored and is requeued at its original priority; the next attempt waits
  // timeout * backoff^attempts. A completion arriving after its attempt timed
  // out is ignored (counted as late). Recovery also requires a Simulator to
  // arm timers on; timeout 0 (the default) disables it entirely, keeping the
  // fault-free event sequence byte-identical.
  struct RetryPolicy {
    SimTime timeout;
    double backoff = 2.0;
    // Retries after the first attempt; exhausting them calls `on_abandon`,
    // or aborts if unset (a silently leaked partition wedges training).
    int max_retries = 12;
    std::function<void(const SubCommTask&)> on_abandon;

    bool enabled() const { return timeout.nanos() > 0; }
  };

  static constexpr Bytes kUnlimited = std::numeric_limits<Bytes>::max();

  Policy policy = Policy::kPriority;
  // Partition size δ; kNoPartition (0) disables tensor partitioning.
  Bytes partition_bytes = MiB(4);
  // Credit size c for credit-based preemption (§4.2), in bytes.
  Bytes credit_bytes = MiB(16);
  // Subtask timeout/retry recovery; disabled by default.
  RetryPolicy retry;

  static constexpr Bytes kNoPartition = 0;

  // Vanilla framework behaviour: FIFO order, whole tensors, unbounded credit
  // (the engine just dumps operations into the stack's FIFO queue).
  static SchedulerConfig Vanilla();

  // ByteScheduler with explicit knobs.
  static SchedulerConfig ByteScheduler(Bytes partition, Bytes credit);

  // P3 (Jayarajan et al.): priority scheduling with fixed 160 KB slices and
  // stop-and-wait transmission (credit == one partition).
  static SchedulerConfig P3();
};

}  // namespace bsched

#endif  // SRC_CORE_COMM_TASK_H_
