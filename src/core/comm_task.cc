#include "src/core/comm_task.h"

namespace bsched {

const char* ToString(CommOpType type) {
  switch (type) {
    case CommOpType::kPush:
      return "push";
    case CommOpType::kPull:
      return "pull";
    case CommOpType::kAllReduce:
      return "allreduce";
  }
  return "unknown";
}

SchedulerConfig SchedulerConfig::Vanilla() {
  SchedulerConfig cfg;
  cfg.policy = Policy::kFifo;
  cfg.partition_bytes = kNoPartition;
  cfg.credit_bytes = kUnlimited;
  return cfg;
}

SchedulerConfig SchedulerConfig::ByteScheduler(Bytes partition, Bytes credit) {
  SchedulerConfig cfg;
  cfg.policy = Policy::kPriority;
  cfg.partition_bytes = partition;
  cfg.credit_bytes = credit;
  return cfg;
}

SchedulerConfig SchedulerConfig::P3() {
  SchedulerConfig cfg;
  cfg.policy = Policy::kPriority;
  cfg.partition_bytes = KiB(160);
  cfg.credit_bytes = KiB(160);
  return cfg;
}

}  // namespace bsched
