#include "src/core/scheduler_core.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/fault/fault_injector.h"
#include "src/obs/obs.h"

namespace bsched {

SchedulerCore::SchedulerCore(SchedulerConfig config, CommBackend* backend, int worker_id,
                             Simulator* sim, FaultInjector* faults, ObsContext* obs)
    : config_(std::move(config)),
      backend_(backend),
      worker_id_(worker_id),
      sim_(sim),
      faults_(faults),
      obs_(obs),
      credit_(config_.credit_bytes) {
  BSCHED_CHECK(backend_ != nullptr);
  BSCHED_CHECK(config_.credit_bytes > 0);
  if (config_.retry.enabled()) {
    BSCHED_CHECK(sim_ != nullptr && "retry recovery needs a Simulator for timeout timers");
    BSCHED_CHECK(config_.retry.backoff >= 1.0);
    BSCHED_CHECK(config_.retry.max_retries >= 0);
  }
  if (obs_ != nullptr) {
    track_ = "sched/w" + std::to_string(worker_id_);
    if (obs_->metrics() != nullptr) {
      const std::string prefix = "sched.w" + std::to_string(worker_id_);
      m_queue_depth_ = obs_->metrics()->histogram(prefix + ".queue_depth");
      m_credit_in_use_ = obs_->metrics()->histogram(prefix + ".credit_in_use");
      m_partition_bytes_ = obs_->metrics()->histogram(prefix + ".partition_bytes");
      m_preemptions_ = obs_->metrics()->counter(prefix + ".preemptions");
    }
  }
}

CommTaskId SchedulerCore::Enqueue(CommTaskDesc desc) {
  BSCHED_CHECK(desc.tensor_bytes > 0);
  const CommTaskId id = next_task_id_++;
  TaskState state;

  // CommTask.partition(size): split into SubCommTasks no larger than the
  // configured partition size (zero-copy in real frameworks; here we only
  // track sizes).
  const Bytes unit = desc.partition_bytes_override > 0 ? desc.partition_bytes_override
                                                       : config_.partition_bytes;
  if (unit <= 0 || unit >= desc.tensor_bytes) {
    state.partition_bytes.push_back(desc.tensor_bytes);
  } else {
    Bytes remaining = desc.tensor_bytes;
    while (remaining > 0) {
      const Bytes piece = std::min(unit, remaining);
      state.partition_bytes.push_back(piece);
      remaining -= piece;
    }
  }
  state.partition_notified.assign(state.partition_bytes.size(), false);
  state.desc = std::move(desc);
  tasks_.emplace(id, std::move(state));
  return id;
}

void SchedulerCore::NotifyReady(CommTaskId id) {
  auto it = tasks_.find(id);
  BSCHED_CHECK(it != tasks_.end());
  TaskState& state = it->second;
  for (int p = 0; p < static_cast<int>(state.partition_bytes.size()); ++p) {
    if (!state.partition_notified[p]) {
      EnqueueReady(state, id, p);
    }
  }
  TrySchedule();
}

void SchedulerCore::NotifyReadyPartition(CommTaskId id, int partition) {
  auto it = tasks_.find(id);
  BSCHED_CHECK(it != tasks_.end());
  TaskState& state = it->second;
  BSCHED_CHECK(partition >= 0);
  BSCHED_CHECK(partition < static_cast<int>(state.partition_bytes.size()));
  if (!state.partition_notified[partition]) {
    EnqueueReady(state, id, partition);
  }
  TrySchedule();
}

int SchedulerCore::NumPartitions(CommTaskId id) const {
  auto it = tasks_.find(id);
  BSCHED_CHECK(it != tasks_.end());
  return static_cast<int>(it->second.partition_bytes.size());
}

SubTaskKey SchedulerCore::KeyFor(const SubCommTask& subtask) {
  SubTaskKey key;
  key.arrival_seq = next_arrival_seq_++;
  if (config_.policy == SchedulerConfig::Policy::kPriority) {
    key.layer = subtask.layer;
    // Pulls ahead of pushes at the same layer: a finished pull directly
    // unblocks next-iteration forward compute.
    key.type_rank = (subtask.type == CommOpType::kPush) ? 1 : 0;
  }
  // For kFifo the key is pure arrival order (layer and type_rank stay 0).
  return key;
}

void SchedulerCore::EnqueueReady(TaskState& state, CommTaskId id, int partition) {
  state.partition_notified[partition] = true;
  SubCommTask subtask;
  subtask.task = id;
  subtask.worker = state.desc.worker;
  subtask.layer = state.desc.layer;
  subtask.tensor_id =
      state.desc.tensor_id >= 0 ? state.desc.tensor_id : state.desc.layer;
  subtask.partition = partition;
  subtask.bytes = state.partition_bytes[partition];
  subtask.type = state.desc.type;
  QueuedSubTask entry{subtask, 0};
  if (sim_ != nullptr) {
    entry.ready_at = sim_->Now();
  }
  queue_.emplace(KeyFor(subtask), std::move(entry));
}

void SchedulerCore::TrySchedule() {
  if (scheduling_) {
    // Re-entrant call (a finish callback released new work while we were
    // already draining the queue); the outer loop will pick it up.
    return;
  }
  scheduling_ = true;
  while (!queue_.empty()) {
    const SubCommTask& head = queue_.begin()->second.subtask;
    // Credits model the *sender's* buffer (§4.2): pushes and all-reduce
    // operations fill it; pull responses are sent by the server and consume
    // the server-side egress queue instead, so they admit freely.
    const bool charges_credit = head.type != CommOpType::kPull;
    // Algorithm 1 line 16: wait unless the credit covers the head subtask.
    // A subtask larger than the whole credit pool is admitted only when the
    // pool is full, otherwise it could never start.
    const bool can_start =
        !charges_credit || credit_ >= head.bytes || credit_ == config_.credit_bytes;
    if (!can_start) {
      // Stamp the moment the head first starved on credit; RecordAdmit
      // splits the wait span there. No event is scheduled, so the
      // simulation trajectory is unchanged whether or not anyone traces.
      QueuedSubTask& blocked = queue_.begin()->second;
      if (!blocked.credit_waiting && sim_ != nullptr) {
        blocked.credit_waiting = true;
        blocked.credit_wait_since = sim_->Now();
      }
      break;
    }
    const SubTaskKey key = queue_.begin()->first;
    QueuedSubTask entry = std::move(queue_.begin()->second);
    const size_t depth_before = queue_.size();
    queue_.erase(queue_.begin());
    const Bytes charged = charges_credit ? std::min(entry.subtask.bytes, credit_) : 0;
    credit_ -= charged;
    BSCHED_DCHECK(credit_ >= 0);
    ++subtasks_started_;
    if (obs_ != nullptr) {
      RecordAdmit(entry, key, charged, depth_before);
    }
    StartAttempt(entry.subtask, key, charged, entry.attempts);
  }
  scheduling_ = false;
}

void SchedulerCore::RecordAdmit(QueuedSubTask& entry, const SubTaskKey& key, Bytes charged,
                                size_t queue_depth_before) {
  SubCommTask& st = entry.subtask;
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->Observe(static_cast<int64_t>(queue_depth_before));
    m_credit_in_use_->Observe(config_.credit_bytes == SchedulerConfig::kUnlimited
                                  ? 0
                                  : config_.credit_bytes - credit_);
    m_partition_bytes_->Observe(st.bytes);
    // A preemption in the paper's sense: this admission outranks the one
    // before it, i.e. a higher-priority partition jumped the FIFO order a
    // vanilla scheduler would have used.
    if (has_last_admitted_ && key < last_admitted_key_) {
      m_preemptions_->Inc();
    }
  }
  last_admitted_key_ = key;
  has_last_admitted_ = true;

  // Trace spans/flows need a clock; metrics above work without one.
  if (!obs_->tracing() || sim_ == nullptr) {
    return;
  }
  // Assign (or continue) the partition's flow arc. Pushes and all-reduce
  // operations open the arc; a pull continues the arc its push opened, or
  // opens its own for pulls with no tracked push (e.g. step-start reads).
  FlowPhase phase = FlowPhase::kStep;
  if (st.flow == 0) {
    if (st.type == CommOpType::kPull) {
      st.flow = obs_->LookupPartitionFlow(st.worker, st.tensor_id, st.partition);
      if (st.flow == 0) {
        st.flow = obs_->BeginPartitionFlow(st.worker, st.tensor_id, st.partition);
        phase = FlowPhase::kStart;
      }
    } else {
      st.flow = obs_->BeginPartitionFlow(st.worker, st.tensor_id, st.partition);
      phase = FlowPhase::kStart;
    }
  }

  auto task_it = tasks_.find(st.task);
  const std::string& tensor =
      task_it != tasks_.end() && !task_it->second.desc.name.empty()
          ? task_it->second.desc.name
          : "L" + std::to_string(st.layer);
  const std::string base =
      tensor + ".p" + std::to_string(st.partition) + "." + ToString(st.type);
  const SimTime now = sim_->Now();
  TraceRecorder* trace = obs_->trace();
  // Wait decomposition: queue-wait (ready → first credit starvation at the
  // head, or admit when credit never blocked) and credit-wait (starvation →
  // admit). The critical-path analyzer attributes the two separately.
  const SimTime wait_end =
      entry.credit_waiting ? std::max(entry.ready_at, entry.credit_wait_since) : now;
  if (wait_end > entry.ready_at) {
    trace->AddSpan(track_, base + ".wait", entry.ready_at, wait_end,
                   {TraceArg::Int("layer", st.layer), TraceArg::Int("partition", st.partition),
                    TraceArg::Int("bytes", st.bytes), TraceArg::Int("attempt", entry.attempts),
                    TraceArg::Int("charged", charged)});
  }
  if (entry.credit_waiting && now > entry.credit_wait_since) {
    trace->AddSpan(track_, base + ".credit_wait", entry.credit_wait_since, now,
                   {TraceArg::Int("layer", st.layer), TraceArg::Int("partition", st.partition),
                    TraceArg::Int("bytes", st.bytes), TraceArg::Int("attempt", entry.attempts),
                    TraceArg::Int("charged", charged)});
  }
  trace->AddFlow(track_, base + ".admit", now, st.flow, phase);
}

SimTime SchedulerCore::AttemptTimeout(int attempts) const {
  double scale = 1.0;
  for (int i = 0; i < attempts; ++i) {
    scale *= config_.retry.backoff;
  }
  return SimTime(static_cast<int64_t>(static_cast<double>(config_.retry.timeout.nanos()) * scale));
}

void SchedulerCore::StartAttempt(const SubCommTask& subtask, const SubTaskKey& key, Bytes charged,
                                 int attempts) {
  if (!recovery_enabled()) {
    backend_->Start(subtask,
                    [this, subtask, charged]() { OnSubTaskFinish(subtask, charged); });
    return;
  }
  const uint64_t generation = ++next_generation_;
  const auto inflight_key = std::make_pair(subtask.task, subtask.partition);
  InFlight& fl = inflight_[inflight_key];
  fl.subtask = subtask;
  fl.key = key;
  fl.charged = charged;
  fl.attempts = attempts;
  fl.generation = generation;
  fl.timeout = sim_->Schedule(
      AttemptTimeout(attempts),
      [this, task = subtask.task, partition = subtask.partition, generation]() {
        OnAttemptTimeout(task, partition, generation);
      });
  backend_->Start(subtask,
                  [this, task = subtask.task, partition = subtask.partition, generation]() {
                    OnAttemptFinish(task, partition, generation);
                  });
}

void SchedulerCore::OnAttemptFinish(CommTaskId task, int partition, uint64_t generation) {
  auto it = inflight_.find({task, partition});
  if (it == inflight_.end() || it->second.generation != generation) {
    // A delayed copy of an attempt that already timed out (and was retried)
    // or of a partition that already finished: the message was late, not
    // lost. Counting it would double-finish the partition and leak credit.
    ++late_completions_;
    if (faults_ != nullptr) {
      faults_->RecordLateCompletion();
    }
    return;
  }
  InFlight fl = std::move(it->second);
  inflight_.erase(it);
  fl.timeout.Cancel();
  OnSubTaskFinish(fl.subtask, fl.charged);
}

void SchedulerCore::OnAttemptTimeout(CommTaskId task, int partition, uint64_t generation) {
  auto it = inflight_.find({task, partition});
  if (it == inflight_.end() || it->second.generation != generation) {
    return;  // stale timer (attempt completed; Cancel raced the pop)
  }
  InFlight fl = std::move(it->second);
  inflight_.erase(it);
  ++timeouts_fired_;
  // Credit restoration: the lost attempt's bytes are no longer in flight.
  credit_ += fl.charged;
  BSCHED_DCHECK(credit_ <= config_.credit_bytes);
  if (faults_ != nullptr) {
    faults_->RecordCoreTimeout(fl.subtask.worker, fl.subtask.layer, fl.subtask.partition,
                               fl.attempts + 1, fl.charged);
  }
  if (fl.attempts >= config_.retry.max_retries) {
    ++subtasks_abandoned_;
    if (faults_ != nullptr) {
      faults_->RecordAbandon();
    }
    if (config_.retry.on_abandon) {
      config_.retry.on_abandon(fl.subtask);
      TrySchedule();  // the freed credit may admit queued work
      return;
    }
    BSCHED_CHECK(false && "subtask exhausted its retry budget; no on_abandon handler");
  }
  ++retries_;
  if (faults_ != nullptr) {
    faults_->RecordCoreRetry();
  }
  // Requeue at the ORIGINAL priority key: the retry competes exactly where
  // the partition always belonged, not behind newer arrivals.
  queue_.emplace(fl.key, QueuedSubTask{fl.subtask, fl.attempts + 1, sim_->Now()});
  TrySchedule();
}

void SchedulerCore::OnSubTaskFinish(SubCommTask subtask, Bytes charged) {
  credit_ += charged;
  BSCHED_DCHECK(credit_ <= config_.credit_bytes);
  if (obs_ != nullptr && obs_->tracing() && sim_ != nullptr && subtask.flow != 0 &&
      subtask.type != CommOpType::kPush) {
    // The pull (or ring op) completing ends the partition's arc; a push's
    // arc stays open for its pull to continue.
    obs_->trace()->AddFlow(track_, "finish", sim_->Now(), subtask.flow, FlowPhase::kEnd);
    obs_->EndPartitionFlow(subtask.worker, subtask.tensor_id, subtask.partition);
  }
  auto it = tasks_.find(subtask.task);
  BSCHED_CHECK(it != tasks_.end());
  TaskState& state = it->second;
  ++state.partitions_finished;

  // Copy the callbacks out: both may re-enter the Core (enqueue/ready new
  // tasks), and on_finish-driven erase would invalidate `state`.
  const bool task_done =
      state.partitions_finished == static_cast<int>(state.partition_bytes.size());
  auto on_partition_finish = state.desc.on_partition_finish;
  std::function<void()> on_finish;
  if (task_done) {
    ++tasks_finished_;
    on_finish = std::move(state.desc.on_finish);
    tasks_.erase(it);
  }
  if (on_partition_finish) {
    on_partition_finish(subtask.partition);
  }
  if (on_finish) {
    on_finish();
  }
  TrySchedule();
}

void SchedulerCore::ExportMetrics() const {
  if (obs_ == nullptr || obs_->metrics() == nullptr) {
    return;
  }
  MetricsRegistry* m = obs_->metrics();
  const std::string prefix = "sched.w" + std::to_string(worker_id_);
  m->counter(prefix + ".subtasks_started")->Inc(subtasks_started_);
  m->counter(prefix + ".tasks_finished")->Inc(tasks_finished_);
  m->counter(prefix + ".timeouts")->Inc(timeouts_fired_);
  m->counter(prefix + ".retries")->Inc(retries_);
  m->counter(prefix + ".late_completions")->Inc(late_completions_);
  m->counter(prefix + ".abandoned")->Inc(subtasks_abandoned_);
  m->gauge(prefix + ".credit_final")->Set(credit_);
  m->gauge(prefix + ".queue_len_final")->Set(static_cast<int64_t>(queue_.size()));
}

std::string SchedulerCore::DebugString() const {
  std::string out = "core[" + std::to_string(worker_id_) + "] credit=" + std::to_string(credit_) +
                    "/" + std::to_string(config_.credit_bytes) +
                    " queued=" + std::to_string(queue_.size()) +
                    " unfinished_tasks=" + std::to_string(tasks_.size());
  if (!queue_.empty()) {
    const SubCommTask& head = queue_.begin()->second.subtask;
    out += " head=(layer=" + std::to_string(head.layer) + " " + ToString(head.type) +
           " part=" + std::to_string(head.partition) + " bytes=" + std::to_string(head.bytes) +
           ")";
  }
  if (recovery_enabled()) {
    out += " retry(timeouts=" + std::to_string(timeouts_fired_) +
           " retries=" + std::to_string(retries_) +
           " late=" + std::to_string(late_completions_) +
           " abandoned=" + std::to_string(subtasks_abandoned_) +
           " inflight=" + std::to_string(inflight_.size()) + ")";
  }
  return out;
}

}  // namespace bsched
