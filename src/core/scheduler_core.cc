#include "src/core/scheduler_core.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace bsched {

SchedulerCore::SchedulerCore(SchedulerConfig config, CommBackend* backend, int worker_id)
    : config_(config), backend_(backend), worker_id_(worker_id), credit_(config.credit_bytes) {
  BSCHED_CHECK(backend_ != nullptr);
  BSCHED_CHECK(config_.credit_bytes > 0);
}

CommTaskId SchedulerCore::Enqueue(CommTaskDesc desc) {
  BSCHED_CHECK(desc.tensor_bytes > 0);
  const CommTaskId id = next_task_id_++;
  TaskState state;

  // CommTask.partition(size): split into SubCommTasks no larger than the
  // configured partition size (zero-copy in real frameworks; here we only
  // track sizes).
  const Bytes unit = desc.partition_bytes_override > 0 ? desc.partition_bytes_override
                                                       : config_.partition_bytes;
  if (unit <= 0 || unit >= desc.tensor_bytes) {
    state.partition_bytes.push_back(desc.tensor_bytes);
  } else {
    Bytes remaining = desc.tensor_bytes;
    while (remaining > 0) {
      const Bytes piece = std::min(unit, remaining);
      state.partition_bytes.push_back(piece);
      remaining -= piece;
    }
  }
  state.partition_notified.assign(state.partition_bytes.size(), false);
  state.desc = std::move(desc);
  tasks_.emplace(id, std::move(state));
  return id;
}

void SchedulerCore::NotifyReady(CommTaskId id) {
  auto it = tasks_.find(id);
  BSCHED_CHECK(it != tasks_.end());
  TaskState& state = it->second;
  for (int p = 0; p < static_cast<int>(state.partition_bytes.size()); ++p) {
    if (!state.partition_notified[p]) {
      EnqueueReady(state, id, p);
    }
  }
  TrySchedule();
}

void SchedulerCore::NotifyReadyPartition(CommTaskId id, int partition) {
  auto it = tasks_.find(id);
  BSCHED_CHECK(it != tasks_.end());
  TaskState& state = it->second;
  BSCHED_CHECK(partition >= 0);
  BSCHED_CHECK(partition < static_cast<int>(state.partition_bytes.size()));
  if (!state.partition_notified[partition]) {
    EnqueueReady(state, id, partition);
  }
  TrySchedule();
}

int SchedulerCore::NumPartitions(CommTaskId id) const {
  auto it = tasks_.find(id);
  BSCHED_CHECK(it != tasks_.end());
  return static_cast<int>(it->second.partition_bytes.size());
}

SubTaskKey SchedulerCore::KeyFor(const SubCommTask& subtask) {
  SubTaskKey key;
  key.arrival_seq = next_arrival_seq_++;
  if (config_.policy == SchedulerConfig::Policy::kPriority) {
    key.layer = subtask.layer;
    // Pulls ahead of pushes at the same layer: a finished pull directly
    // unblocks next-iteration forward compute.
    key.type_rank = (subtask.type == CommOpType::kPush) ? 1 : 0;
  }
  // For kFifo the key is pure arrival order (layer and type_rank stay 0).
  return key;
}

void SchedulerCore::EnqueueReady(TaskState& state, CommTaskId id, int partition) {
  state.partition_notified[partition] = true;
  SubCommTask subtask;
  subtask.task = id;
  subtask.worker = state.desc.worker;
  subtask.layer = state.desc.layer;
  subtask.tensor_id =
      state.desc.tensor_id >= 0 ? state.desc.tensor_id : state.desc.layer;
  subtask.partition = partition;
  subtask.bytes = state.partition_bytes[partition];
  subtask.type = state.desc.type;
  queue_.emplace(KeyFor(subtask), subtask);
}

void SchedulerCore::TrySchedule() {
  if (scheduling_) {
    // Re-entrant call (a finish callback released new work while we were
    // already draining the queue); the outer loop will pick it up.
    return;
  }
  scheduling_ = true;
  while (!queue_.empty()) {
    const SubCommTask& head = queue_.begin()->second;
    // Credits model the *sender's* buffer (§4.2): pushes and all-reduce
    // operations fill it; pull responses are sent by the server and consume
    // the server-side egress queue instead, so they admit freely.
    const bool charges_credit = head.type != CommOpType::kPull;
    // Algorithm 1 line 16: wait unless the credit covers the head subtask.
    // A subtask larger than the whole credit pool is admitted only when the
    // pool is full, otherwise it could never start.
    const bool can_start =
        !charges_credit || credit_ >= head.bytes || credit_ == config_.credit_bytes;
    if (!can_start) {
      break;
    }
    SubCommTask subtask = head;
    queue_.erase(queue_.begin());
    const Bytes charged = charges_credit ? std::min(subtask.bytes, credit_) : 0;
    credit_ -= charged;
    ++subtasks_started_;
    backend_->Start(subtask,
                    [this, subtask, charged]() { OnSubTaskFinish(subtask, charged); });
  }
  scheduling_ = false;
}

void SchedulerCore::OnSubTaskFinish(SubCommTask subtask, Bytes charged) {
  credit_ += charged;
  BSCHED_DCHECK(credit_ <= config_.credit_bytes);
  auto it = tasks_.find(subtask.task);
  BSCHED_CHECK(it != tasks_.end());
  TaskState& state = it->second;
  ++state.partitions_finished;

  // Copy the callbacks out: both may re-enter the Core (enqueue/ready new
  // tasks), and on_finish-driven erase would invalidate `state`.
  const bool task_done =
      state.partitions_finished == static_cast<int>(state.partition_bytes.size());
  auto on_partition_finish = state.desc.on_partition_finish;
  std::function<void()> on_finish;
  if (task_done) {
    ++tasks_finished_;
    on_finish = std::move(state.desc.on_finish);
    tasks_.erase(it);
  }
  if (on_partition_finish) {
    on_partition_finish(subtask.partition);
  }
  if (on_finish) {
    on_finish();
  }
  TrySchedule();
}

std::string SchedulerCore::DebugString() const {
  std::string out = "core[" + std::to_string(worker_id_) + "] credit=" + std::to_string(credit_) +
                    "/" + std::to_string(config_.credit_bytes) +
                    " queued=" + std::to_string(queue_.size()) +
                    " unfinished_tasks=" + std::to_string(tasks_.size());
  if (!queue_.empty()) {
    const SubCommTask& head = queue_.begin()->second;
    out += " head=(layer=" + std::to_string(head.layer) + " " + ToString(head.type) +
           " part=" + std::to_string(head.partition) + " bytes=" + std::to_string(head.bytes) +
           ")";
  }
  return out;
}

}  // namespace bsched
