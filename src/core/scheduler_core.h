// ByteScheduler Core: Algorithm 1 of the paper. Holds a priority queue of
// ready SubCommTasks and admits them into the communication backend under
// credit-based preemption. One Core instance runs per scheduling worker (each
// PS worker schedules independently; all-reduce uses a single master Core).
//
// The Core is framework- and communication-method-agnostic: it sees only
// CommTaskDescs from plugins and a CommBackend to start partitions on. It is
// also simulator-agnostic — purely callback-driven — so unit tests drive it
// with a mock backend.
#ifndef SRC_CORE_SCHEDULER_CORE_H_
#define SRC_CORE_SCHEDULER_CORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/comm/backend.h"
#include "src/core/comm_task.h"

namespace bsched {

class SchedulerCore {
 public:
  SchedulerCore(SchedulerConfig config, CommBackend* backend, int worker_id = 0);
  SchedulerCore(const SchedulerCore&) = delete;
  SchedulerCore& operator=(const SchedulerCore&) = delete;

  // Core.enqueue(CommTask): registers the task and partitions it into
  // SubCommTasks of at most `partition_bytes` (CommTask.partition()).
  // Partitions are NOT schedulable until notified ready.
  CommTaskId Enqueue(CommTaskDesc desc);

  // CommTask.notify_ready(): all partitions of the task become schedulable.
  void NotifyReady(CommTaskId id);

  // Partition-granularity readiness; used by the PS plugin to release pull
  // partitions as their push partitions are acked.
  void NotifyReadyPartition(CommTaskId id, int partition);

  int NumPartitions(CommTaskId id) const;

  // Human-readable scheduler state (queue head, credit) for diagnostics.
  std::string DebugString() const;

  // Live scheduler state (used by tests and by auto-tuning instrumentation).
  Bytes credit() const { return credit_; }
  Bytes credit_cap() const { return config_.credit_bytes; }
  size_t queue_length() const { return queue_.size(); }
  uint64_t subtasks_started() const { return subtasks_started_; }
  uint64_t tasks_finished() const { return tasks_finished_; }
  const SchedulerConfig& config() const { return config_; }
  int worker_id() const { return worker_id_; }

 private:
  struct TaskState {
    CommTaskDesc desc;
    std::vector<Bytes> partition_bytes;
    std::vector<bool> partition_notified;
    int partitions_finished = 0;
  };

  SubTaskKey KeyFor(const SubCommTask& subtask);
  void EnqueueReady(TaskState& state, CommTaskId id, int partition);
  void TrySchedule();
  void OnSubTaskFinish(SubCommTask subtask, Bytes charged);

  SchedulerConfig config_;
  CommBackend* backend_;
  int worker_id_;

  CommTaskId next_task_id_ = 0;
  uint64_t next_arrival_seq_ = 0;
  Bytes credit_;
  std::map<CommTaskId, TaskState> tasks_;
  // Ready SubCommTasks ordered by priority key; begin() is the head.
  std::map<SubTaskKey, SubCommTask> queue_;
  bool scheduling_ = false;

  uint64_t subtasks_started_ = 0;
  uint64_t tasks_finished_ = 0;
};

}  // namespace bsched

#endif  // SRC_CORE_SCHEDULER_CORE_H_
