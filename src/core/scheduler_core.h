// ByteScheduler Core: Algorithm 1 of the paper. Holds a priority queue of
// ready SubCommTasks and admits them into the communication backend under
// credit-based preemption. One Core instance runs per scheduling worker (each
// PS worker schedules independently; all-reduce uses a single master Core).
//
// The Core is framework- and communication-method-agnostic: it sees only
// CommTaskDescs from plugins and a CommBackend to start partitions on. It is
// also simulator-agnostic — purely callback-driven — so unit tests drive it
// with a mock backend. The optional recovery layer (SchedulerConfig::retry)
// is the one exception: arming per-subtask timeouts needs a clock, so a
// Simulator is injected when recovery is enabled. On timeout the charged
// credit is restored, the partition is requeued at its original priority,
// and the next attempt backs off exponentially; completions of timed-out
// attempts are recognized by generation and ignored, so a delayed (rather
// than lost) message can never double-finish a partition or leak credit.
#ifndef SRC_CORE_SCHEDULER_CORE_H_
#define SRC_CORE_SCHEDULER_CORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/comm/backend.h"
#include "src/core/comm_task.h"
#include "src/sim/simulator.h"

namespace bsched {

class FaultInjector;
class ObsContext;
class Counter;
class Histogram;

class SchedulerCore {
 public:
  // `sim` is required only when config.retry is enabled; `faults` (optional)
  // receives recovery events for global fault statistics and trace output.
  // `obs` (optional) enables admit-time metrics and, when a Simulator is also
  // present, queue-wait spans and partition flow arcs on track sched/w<id>.
  SchedulerCore(SchedulerConfig config, CommBackend* backend, int worker_id = 0,
                Simulator* sim = nullptr, FaultInjector* faults = nullptr,
                ObsContext* obs = nullptr);
  SchedulerCore(const SchedulerCore&) = delete;
  SchedulerCore& operator=(const SchedulerCore&) = delete;

  // Core.enqueue(CommTask): registers the task and partitions it into
  // SubCommTasks of at most `partition_bytes` (CommTask.partition()).
  // Partitions are NOT schedulable until notified ready.
  CommTaskId Enqueue(CommTaskDesc desc);

  // CommTask.notify_ready(): all partitions of the task become schedulable.
  void NotifyReady(CommTaskId id);

  // Partition-granularity readiness; used by the PS plugin to release pull
  // partitions as their push partitions are acked.
  void NotifyReadyPartition(CommTaskId id, int partition);

  int NumPartitions(CommTaskId id) const;

  // Human-readable scheduler state (queue head, credit, recovery counters)
  // for diagnostics.
  std::string DebugString() const;

  // Live scheduler state (used by tests and by auto-tuning instrumentation).
  Bytes credit() const { return credit_; }
  Bytes credit_cap() const { return config_.credit_bytes; }
  size_t queue_length() const { return queue_.size(); }
  uint64_t subtasks_started() const { return subtasks_started_; }
  uint64_t tasks_finished() const { return tasks_finished_; }
  const SchedulerConfig& config() const { return config_; }
  int worker_id() const { return worker_id_; }

  // Recovery counters (all zero when retry is disabled or no fault fired).
  uint64_t timeouts_fired() const { return timeouts_fired_; }
  uint64_t retries() const { return retries_; }
  uint64_t late_completions() const { return late_completions_; }
  uint64_t subtasks_abandoned() const { return subtasks_abandoned_; }
  size_t subtasks_in_flight() const { return inflight_.size(); }

  // Exports end-of-run totals (sched.w<id>.subtasks_started, retries,
  // timeouts, ...) into the obs metrics registry. Call once after the run;
  // no-op without an obs context.
  void ExportMetrics() const;

 private:
  struct TaskState {
    CommTaskDesc desc;
    std::vector<Bytes> partition_bytes;
    std::vector<bool> partition_notified;
    int partitions_finished = 0;
  };

  // Queue entry: the subtask plus how many attempts have already timed out
  // (0 for first admissions; requeued retries carry their attempt count).
  struct QueuedSubTask {
    SubCommTask subtask;
    int attempts = 0;
    // When this entry became schedulable (valid only when tracing with a
    // Simulator); admit time minus this is the queue-wait span.
    SimTime ready_at;
    // When this entry, at the head of the queue, first blocked on credit
    // (valid only with a Simulator when credit_waiting is set). Splits the
    // wait span into queue-wait (behind higher-priority work) and
    // credit-wait (Algorithm 1 line 16 starvation) — the boundary the
    // critical-path analyzer attributes separately.
    SimTime credit_wait_since;
    bool credit_waiting = false;
  };

  // One admitted subtask being watched by the recovery layer.
  struct InFlight {
    SubCommTask subtask;
    SubTaskKey key;  // original priority key, reused on requeue
    Bytes charged = 0;
    int attempts = 0;        // 0-based attempt index
    uint64_t generation = 0; // stale-completion filter
    EventHandle timeout;
  };

  bool recovery_enabled() const { return config_.retry.enabled() && sim_ != nullptr; }
  SimTime AttemptTimeout(int attempts) const;

  // Records admit-time metrics/trace/flow for one admitted entry; mutates
  // entry.subtask.flow. `queue_depth_before` is the queue size at pop time.
  void RecordAdmit(QueuedSubTask& entry, const SubTaskKey& key, Bytes charged,
                   size_t queue_depth_before);

  SubTaskKey KeyFor(const SubCommTask& subtask);
  void EnqueueReady(TaskState& state, CommTaskId id, int partition);
  void TrySchedule();
  void StartAttempt(const SubCommTask& subtask, const SubTaskKey& key, Bytes charged,
                    int attempts);
  void OnAttemptFinish(CommTaskId task, int partition, uint64_t generation);
  void OnAttemptTimeout(CommTaskId task, int partition, uint64_t generation);
  void OnSubTaskFinish(SubCommTask subtask, Bytes charged);

  SchedulerConfig config_;
  CommBackend* backend_;
  int worker_id_;
  Simulator* sim_;
  FaultInjector* faults_;
  ObsContext* obs_;
  std::string track_;  // trace track name ("sched/w<id>")
  // Cached metric handles (null when metrics are off).
  Histogram* m_queue_depth_ = nullptr;
  Histogram* m_credit_in_use_ = nullptr;
  Histogram* m_partition_bytes_ = nullptr;
  Counter* m_preemptions_ = nullptr;
  // Priority of the previous admission, for the preemption counter.
  SubTaskKey last_admitted_key_;
  bool has_last_admitted_ = false;

  CommTaskId next_task_id_ = 0;
  uint64_t next_arrival_seq_ = 0;
  uint64_t next_generation_ = 0;
  Bytes credit_;
  std::map<CommTaskId, TaskState> tasks_;
  // Ready SubCommTasks ordered by priority key; begin() is the head.
  std::map<SubTaskKey, QueuedSubTask> queue_;
  // Admitted subtasks under timeout watch, keyed by (task, partition).
  std::map<std::pair<CommTaskId, int>, InFlight> inflight_;
  bool scheduling_ = false;

  uint64_t subtasks_started_ = 0;
  uint64_t tasks_finished_ = 0;
  uint64_t timeouts_fired_ = 0;
  uint64_t retries_ = 0;
  uint64_t late_completions_ = 0;
  uint64_t subtasks_abandoned_ = 0;
};

}  // namespace bsched

#endif  // SRC_CORE_SCHEDULER_CORE_H_
