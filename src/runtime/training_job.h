// End-to-end distributed-training job simulation: builds the multi-iteration
// computation/communication DAG for every worker, wires the framework plugin
// (vanilla FIFO path, or ByteScheduler with Dependency Proxies and barrier
// crossing), runs it on the simulator, and reports steady-state training
// speed — the metric every figure in the paper plots.
#ifndef SRC_RUNTIME_TRAINING_JOB_H_
#define SRC_RUNTIME_TRAINING_JOB_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/trace.h"
#include "src/common/units.h"
#include "src/core/comm_task.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/model/profile.h"
#include "src/net/net_dynamics.h"
#include "src/runtime/cluster.h"

namespace bsched {

class MetricsRegistry;
class TimeSeriesRecorder;

struct JobConfig {
  ModelProfile model;
  Setup setup;  // framework + architecture + transport
  SchedMode mode = SchedMode::kVanilla;

  int num_machines = 1;
  int gpus_per_machine = 8;
  Bandwidth bandwidth = Bandwidth::Gbps(100);

  // ByteScheduler knobs (ignored for kVanilla; kP3 uses its fixed values).
  Bytes partition_bytes = MiB(4);
  Bytes credit_bytes = MiB(16);

  // Full scheduler-config override (e.g. FIFO policy with partitioning for
  // the Figure 4 sweeps); when set, it replaces the mode-derived config while
  // keeping the ByteScheduler plugin wiring.
  std::optional<SchedulerConfig> sched_override;

  // §7 extension "dynamic partition size": per-layer partition sizes used by
  // ByteScheduler mode instead of the uniform `partition_bytes`. Empty =
  // uniform. When non-empty, must have one entry per model layer (0 entries
  // fall back to the uniform size).
  std::vector<Bytes> per_layer_partition;

  // Ablation: run ByteScheduler on a barrier framework without the §3.4
  // out-of-engine communication (the scheduler then stalls at the barrier).
  bool disable_barrier_crossing = false;

  // PS-only: asynchronous push/pull (no cross-worker aggregation wait).
  bool ps_async = false;

  // Deterministic fault injection ("chaos mode"): seeded episodes of message
  // drops, latency spikes, link-down windows, compute stragglers and shard
  // slowdowns, recovered by subtask timeout/retry in the Cores and push
  // retransmission in the PS backend. Unset (the default) leaves every fault
  // hook disarmed — the simulation is event-for-event identical to a build
  // without the fault fabric. Not supported for co-scheduled jobs sharing
  // infrastructure.
  std::optional<FaultPlanConfig> chaos;

  // Dynamic-network fabric (PS architecture only): seeded random-walk
  // bandwidth drift, on/off cross traffic, asymmetric up/down rates, an
  // oversubscribed two-tier rack topology, and loss-driven AIMD rate control
  // fed by the push ack timers (src/net/net_dynamics.h). Unset or disabled
  // (the default config) leaves the legacy fixed-rate link path untouched —
  // the simulation is event-for-event identical to a build without the
  // dynamic fabric. Schedules derive from (seed, link name), so results stay
  // bit-identical at any `shards` count. Not supported for co-scheduled jobs.
  std::optional<NetDynamicsConfig> dynamics;

  // Sharded parallel-DES execution (PS architecture only): partition the
  // fabric across `shards` coordinator shards — worker w's entities (GPU,
  // engine, Core, NIC links, ack timers) on shard w % shards, PS shard s's
  // (ingress, egress, CPU, aggregation slots) on shard s % shards — and run
  // them under the conservative lookahead-window coordinator
  // (src/sim/shard_coordinator.h). 0 (default) = the serial single-Simulator
  // path. Results are bit-identical for any shards >= 1 (`shards == 1` is the
  // single-threaded oracle baseline); the serial path keeps its own legacy
  // event order, which differs slightly (acks and aggregation notifications
  // become explicit control messages in sharded mode). Requires a
  // latency-bearing transport (the lookahead must be positive), a null
  // `trace` (metrics are fine — they are commutative sums), and no shared
  // co-scheduled infrastructure.
  int shards = 0;

  int warmup_iters = 2;
  int measure_iters = 6;

  // Optional execution-trace sink (compute ops and per-tensor communication
  // spans, plus scheduler/link/shard detail spans and partition flow arcs
  // when set); must outlive RunTrainingJob. Null disables tracing.
  TraceRecorder* trace = nullptr;

  // Optional metrics sink (scheduler queue depth / credit occupancy
  // histograms, link byte/queueing metrics, end-of-run subsystem totals);
  // must outlive RunTrainingJob. Null disables metrics. Give each job its
  // own registry when comparing runs — names are not namespaced per job.
  // Ignored (like `trace`) for co-scheduled jobs on shared infrastructure.
  MetricsRegistry* metrics = nullptr;

  // Optional sim-time sampling sink (src/obs/timeseries.h): one scope per
  // worker samples that worker's scheduler, NIC-link and GPU signals on the
  // recorder's cadence, driven by ordinary simulator timer events. Requires
  // `metrics` (the recorder reads the same registry handles the subsystems
  // write) and a job owning its substrate; must be un-started and outlive
  // RunTrainingJob. Null disables sampling with zero cost (bit-identical
  // simulation); an enabled recorder adds tick events but never perturbs
  // iteration timing, and its merged CSV is byte-identical at any
  // `shards` >= 1 (serial `shards == 0` keeps its own legacy event order,
  // exactly as documented on `shards`).
  TimeSeriesRecorder* timeseries = nullptr;

  int total_gpus() const { return num_machines * gpus_per_machine; }
};

struct JobResult {
  double samples_per_sec = 0.0;
  SimTime avg_iter_time;
  // Max-over-mean PS shard egress load (1.0 == balanced; PS jobs only).
  double shard_load_imbalance = 1.0;
  uint64_t sim_events = 0;
  // SubCommTasks admitted across all Cores (communication ops on the wire).
  uint64_t subtasks_started = 0;
  // Per-iteration BP-finish timestamps (diagnostics / convergence checks).
  std::vector<SimTime> iter_end_times;
  // Injection and recovery counters (all zero unless JobConfig::chaos set).
  FaultStats fault_stats;
  // SubCommTask attempts the Cores abandoned after exhausting retries; always
  // 0 for a job that ran to completion with the default abort-on-abandon.
  uint64_t subtasks_abandoned = 0;
  // Dynamic-network activity (all zero unless JobConfig::dynamics enabled):
  // AIMD backoffs/recoveries and in-flight transfers re-paced mid-message.
  uint64_t rate_ctrl_decreases = 0;
  uint64_t rate_ctrl_increases = 0;
  uint64_t link_repaces = 0;
};

// Runs the configured job to completion and reports steady-state speed
// (samples/sec over the measured iterations, after warm-up).
JobResult RunTrainingJob(const JobConfig& config);

// Ideal compute-bound speed: single-device compute-only throughput times the
// device count. An absolute upper bound for any schedule.
double LinearScalingSpeed(const ModelProfile& model, int total_gpus);

// The paper's "linear scaling" bar (§6.1): the one-machine local training
// speed (no cross-machine network) multiplied by the machine count.
double PaperLinearScaling(const JobConfig& config);

// Heuristic tuned (partition, credit) defaults per architecture/transport/
// bandwidth, matching the trends of the paper's Table 1 (PS wants MB-scale
// partitions with ~5x credit; all-reduce wants tens-of-MB partitions).
// The benchmark harness can replace these with real auto-tuner output.
struct TunedParams {
  Bytes partition_bytes;
  Bytes credit_bytes;
};

// §7 extension "co-scheduling in a shared cluster": several PS training jobs
// run concurrently on the same machines, sharing worker NICs and PS shards.
enum class CoschedulePolicy {
  // Each job runs its own scheduler Cores; jobs contend blindly in the
  // shared fabric's FIFO queues (the status quo the paper warns about).
  kIndependent,
  // One shared Core per worker schedules all jobs' tensors together by
  // layer priority — the cooperative scheduling §7 suggests.
  kCoordinated,
};

// Runs the jobs to completion on one shared cluster and reports per-job
// results. All jobs must be PS-architecture with the same machine count,
// bandwidth and transport; the shared Cores (coordinated policy) take their
// scheduler knobs from the first job.
std::vector<JobResult> RunCoscheduledPsJobs(const std::vector<JobConfig>& jobs,
                                            CoschedulePolicy policy);
TunedParams DefaultTunedParams(const ModelProfile& model, ArchType arch,
                               const TransportModel& transport, Bandwidth bandwidth);

}  // namespace bsched

#endif  // SRC_RUNTIME_TRAINING_JOB_H_
