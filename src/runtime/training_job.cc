#include "src/runtime/training_job.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/comm/allreduce_backend.h"
#include "src/comm/ps_backend.h"
#include "src/common/check.h"
#include "src/core/scheduler_core.h"
#include "src/engine/dag_engine.h"
#include "src/engine/imperative_engine.h"
#include "src/engine/proxy.h"
#include "src/obs/obs.h"
#include "src/obs/timeseries.h"
#include "src/sim/resource.h"
#include "src/sim/shard_coordinator.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

SchedulerConfig SchedulerConfigFor(const JobConfig& config) {
  if (config.sched_override.has_value()) {
    return *config.sched_override;
  }
  switch (config.mode) {
    case SchedMode::kVanilla:
      return SchedulerConfig::Vanilla();
    case SchedMode::kByteScheduler:
      return SchedulerConfig::ByteScheduler(config.partition_bytes, config.credit_bytes);
    case SchedMode::kP3: {
      SchedulerConfig cfg = SchedulerConfig::P3();
      // P3 runs one stop-and-wait stream per parameter server, so its
      // effective in-flight window scales with the shard count.
      cfg.credit_bytes = cfg.partition_bytes * config.num_machines;
      return cfg;
    }
  }
  return SchedulerConfig::Vanilla();
}

// Builds and runs one training job. By default owns every simulation entity;
// co-scheduled jobs (§7) instead share a simulator, a PS fabric and —
// under the coordinated policy — the per-worker scheduler Cores. The
// structure mirrors the paper's architecture: engines execute the model DAG,
// plugins wrap communication ops into CommTasks, per-worker Cores schedule
// them onto a shared backend.
class TrainingJob {
 public:
  // External infrastructure for co-scheduled jobs.
  struct Shared {
    Simulator* sim = nullptr;
    PsBackend* ps = nullptr;
    // Non-empty: shared per-worker Cores (coordinated co-scheduling).
    std::vector<SchedulerCore*> cores;
    // Disjoint tensor-id range base for this job.
    int64_t tensor_offset = 0;
  };

  explicit TrainingJob(const JobConfig& config) : TrainingJob(config, Shared{}) {}

  TrainingJob(const JobConfig& config, const Shared& shared)
      : config_(config), shared_(shared) {
    if (config_.shards > 0) {
      BSCHED_CHECK(config_.setup.arch == ArchType::kPs &&
                   "sharded execution is PS-only (all-reduce runs one master Core)");
      BSCHED_CHECK(shared_.sim == nullptr && shared_.ps == nullptr &&
                   "sharded execution cannot share co-scheduled infrastructure");
      BSCHED_CHECK(config_.trace == nullptr &&
                   "flow traces record global interleavings; sharded runs are metrics-only");
      const SimTime lookahead =
          std::min(PsConfig().control_latency, config_.setup.transport.latency);
      BSCHED_CHECK(lookahead.nanos() > 0 &&
                   "sharded execution needs a latency-bearing transport (lookahead > 0)");
      coord_ = std::make_unique<ShardCoordinator>(config_.shards, lookahead);
      // sim_ stays null: every entity lives on one of the coordinator's
      // per-shard simulators (see WorkerSim), and any stray serial-path use
      // should crash loudly rather than silently desynchronize.
    } else {
      sim_ = shared_.sim != nullptr ? shared_.sim : &owned_sim_;
    }
    if ((config_.trace != nullptr || config_.metrics != nullptr) && shared_.sim == nullptr) {
      // Observability is wired only for jobs owning their substrate; flow
      // bookkeeping is single-threaded per simulator, and co-scheduled jobs
      // would interleave flows unpredictably.
      obs_storage_ = ObsContext(config_.trace, config_.metrics);
      obs_ = &obs_storage_;
    }
    if (config_.timeseries != nullptr) {
      BSCHED_CHECK(config_.metrics != nullptr &&
                   "timeseries sampling reads metric handles; set JobConfig::metrics too");
      BSCHED_CHECK(shared_.sim == nullptr &&
                   "timeseries sampling is wired only for jobs owning their substrate");
      BSCHED_CHECK(config_.timeseries->registry() == config_.metrics &&
                   "the recorder must be registered against this job's metrics registry");
    }
    if (config_.chaos.has_value()) {
      // Chaos owns its whole substrate: a shared fabric would splice one
      // job's fault episodes into every co-scheduled job's timeline.
      BSCHED_CHECK(shared_.sim == nullptr && shared_.ps == nullptr &&
                   "chaos mode is unsupported with shared (co-scheduled) infrastructure");
      faults_ = std::make_unique<FaultInjector>(*config_.chaos, sim_, config_.trace);
    }
    if (config_.dynamics.has_value() && config_.dynamics->enabled()) {
      BSCHED_CHECK(config_.setup.arch == ArchType::kPs &&
                   "the dynamic-network fabric is wired for the PS architecture");
      BSCHED_CHECK(shared_.sim == nullptr && shared_.ps == nullptr &&
                   "dynamic network is unsupported with shared (co-scheduled) infrastructure");
    }
    if (shared_.ps != nullptr) {
      BSCHED_CHECK(config_.setup.arch == ArchType::kPs);
      BSCHED_CHECK(shared_.ps->config().num_workers == config_.num_machines);
    }
    BSCHED_CHECK(config_.num_machines >= 1);
    BSCHED_CHECK(config_.warmup_iters >= 1);
    BSCHED_CHECK(config_.measure_iters >= 1);
    BSCHED_CHECK(config_.model.num_layers() >= 1);
    // The paper's PyTorch plugin exists only for all-reduce (PyTorch has no
    // native PS support, §5).
    if (config_.setup.framework == Framework::kPyTorch) {
      BSCHED_CHECK(config_.setup.arch == ArchType::kAllReduce);
    }
    num_layers_ = config_.model.num_layers();
    total_iters_ = config_.warmup_iters + config_.measure_iters;
    // All-reduce workers are fully symmetric (identical model, batch and
    // compute) and the ring cost already accounts for the ring size, so one
    // representative worker chain suffices; PS workers contend at shards and
    // must all be simulated.
    sim_workers_ = (config_.setup.arch == ArchType::kPs) ? config_.num_machines : 1;
    // Per-worker BP-end stamps, merged (max) at Collect: in sharded mode each
    // worker records on its own shard, so a single shared max cell would race.
    worker_bp_end_.assign(sim_workers_, std::vector<SimTime>(total_iters_));
  }

  // Builds the substrate and launches the engines (events pending in sim).
  void Prepare() {
    BuildBackend();
    BuildCores();
    BuildWorkers();
    for (auto& engine : dag_engines_) {
      engine->Start();
    }
    for (auto& engine : imp_engines_) {
      engine->Start();
    }
    SetupTimeSeries();
  }

  // After the simulator drained: validate liveness and collect results.
  JobResult Finish() {
    if (getenv("BSCHED_DEBUG_DEADLOCK") != nullptr) {
      for (auto& core : cores_) {
        std::fprintf(stderr, "%s\n", core->DebugString().c_str());
      }
      if (ps_ != nullptr) {
        std::fprintf(stderr, "%s\n", ps_->DebugString().c_str());
      }
    }
    for (auto& engine : dag_engines_) {
      BSCHED_CHECK(engine->AllDone());
    }
    for (auto& engine : imp_engines_) {
      BSCHED_CHECK(engine->AllDone());
    }
    return Collect();
  }

  JobResult Run() {
    Prepare();
    if (coord_ != nullptr) {
      coord_->Run();
    } else {
      sim_->Run();
    }
    return Finish();
  }

 private:
  // Simulator hosting worker `worker`'s entities (its GPU, engine, Core and
  // NIC-side state): the serial Simulator, or the worker's coordinator shard.
  Simulator* WorkerSim(int worker) const {
    return coord_ != nullptr ? coord_->shard(worker % config_.shards) : sim_;
  }
  // ---- construction of the substrate -------------------------------------

  void BuildBackend() {
    if (config_.setup.arch == ArchType::kPs) {
      if (shared_.ps != nullptr) {
        ps_ = shared_.ps;
      } else {
        PsConfig ps;
        ps.num_workers = config_.num_machines;
        ps.num_shards = config_.num_machines;
        ps.link_rate = config_.bandwidth;
        ps.transport = config_.setup.transport;
        ps.synchronous = !config_.ps_async;
        if (faults_ != nullptr) {
          ps.faults = faults_.get();
          ps.push_ack_timeout = config_.chaos->retry_timeout;
          ps.retry_backoff = config_.chaos->retry_backoff;
          ps.max_push_retries = config_.chaos->max_retries;
        }
        ps.obs = obs_;
        ps.coord = coord_.get();
        if (config_.dynamics.has_value() && config_.dynamics->enabled()) {
          ps.dynamics = &*config_.dynamics;
        }
        owned_ps_ = std::make_unique<PsBackend>(sim_, ps);
        ps_ = owned_ps_.get();
      }
      backend_ = ps_;
      pull_task_ids_.assign(sim_workers_,
                            std::vector<CommTaskId>(num_layers_, kInvalidCommTask));
      agg_counts_.assign(sim_workers_, std::vector<int>(num_layers_, 0));
      push_parts_.assign(sim_workers_, std::vector<int>(num_layers_, 0));
      agg_done_cbs_.assign(sim_workers_, std::vector<std::function<void()>>(num_layers_));
      if (!config_.ps_async) {
        // Server-side notification: aggregated partitions release the
        // corresponding pull partitions. ByteScheduler pipelines at partition
        // granularity; vanilla frameworks issue the pull only once the whole
        // tensor's push completed (tensor-level chaining, §2.2).
        const bool tensor_level = config_.mode == SchedMode::kVanilla;
        // Invoked once per worker (sharded mode delivers each worker's
        // notification on that worker's own shard), so the body touches only
        // worker-indexed state.
        ps_->AddAggregationListener([this, tensor_level](int64_t tensor_id, int partition,
                                                         int w) {
          const int64_t local = tensor_id - shared_.tensor_offset;
          if (local < 0 || local >= num_layers_) {
            return;  // another co-scheduled job's tensor
          }
          const int layer = static_cast<int>(local);
          if (!tensor_level) {
            const CommTaskId id = pull_task_ids_[w][layer];
            if (id != kInvalidCommTask) {
              cores_[w]->NotifyReadyPartition(id, partition);
            }
            return;
          }
          if (++agg_counts_[w][layer] < push_parts_[w][layer]) {
            return;
          }
          agg_counts_[w][layer] = 0;
          // Whole tensor aggregated. MXNet-style engines now issue the
          // pull; barrier engines (TF) complete the send op — the pull
          // happens at the start of the next step.
          if (agg_done_cbs_[w][layer]) {
            auto cb = std::move(agg_done_cbs_[w][layer]);
            agg_done_cbs_[w][layer] = nullptr;
            cb();
          } else if (pull_task_ids_[w][layer] != kInvalidCommTask) {
            cores_[w]->NotifyReady(pull_task_ids_[w][layer]);
          }
        });
      }
    } else {
      AllReduceConfig ar = AllReduceConfig::Nccl(config_.total_gpus(), config_.bandwidth,
                                                 config_.setup.transport);
      if (config_.mode == SchedMode::kVanilla) {
        // Vanilla Horovod negotiates each tensor across workers in periodic
        // cycles (default cycle_time ~5 ms); ByteScheduler's master-ordered
        // Core removes that per-tensor negotiation (§5).
        ar.nego_cycle = SimTime::Millis(5);
      }
      if (faults_ != nullptr) {
        ar.faults = faults_.get();
      }
      ar.obs = obs_;
      ar_ = std::make_unique<AllReduceBackend>(sim_, ar);
      backend_ = ar_.get();
    }
  }

  void BuildCores() {
    if (!shared_.cores.empty()) {
      // Coordinated co-scheduling: every job's tensors flow through the same
      // per-worker Cores, competing by (job-local) layer priority.
      BSCHED_CHECK(static_cast<int>(shared_.cores.size()) == sim_workers_);
      cores_ = shared_.cores;
      return;
    }
    SchedulerConfig sched = SchedulerConfigFor(config_);
    if (faults_ != nullptr) {
      // Arm the Cores' timeout/retry recovery with the plan's retry knobs.
      sched.retry.timeout = config_.chaos->retry_timeout;
      sched.retry.backoff = config_.chaos->retry_backoff;
      sched.retry.max_retries = config_.chaos->max_retries;
    }
    // All-reduce: a single master Core decides the (global) operation order.
    const int num_cores = (config_.setup.arch == ArchType::kPs) ? sim_workers_ : 1;
    for (int w = 0; w < num_cores; ++w) {
      owned_cores_.push_back(
          std::make_unique<SchedulerCore>(sched, backend_, w, WorkerSim(w), faults_.get(), obs_));
      cores_.push_back(owned_cores_.back().get());
    }
  }

  void BuildWorkers() {
    for (int w = 0; w < sim_workers_; ++w) {
      Simulator* wsim = WorkerSim(w);
      gpus_.push_back(std::make_unique<Resource>(wsim, "gpu" + std::to_string(w)));
      if (IsImperative(config_.setup.framework)) {
        imp_engines_.push_back(std::make_unique<ImperativeEngine>(wsim));
        BuildImperativeWorker(w);
      } else {
        dag_engines_.push_back(std::make_unique<DagEngine>(wsim));
        BuildDeclarativeWorker(w);
      }
    }
  }

  // Registers one sampling scope per worker on that worker's simulator
  // (= its coordinator shard in sharded mode). Every sampled source is
  // written exclusively by events on the worker's own simulator — scheduler
  // handles by its Core, net.worker<w>.* by its NIC links (the PS egress
  // forwards pull data to the worker's shard before the downlink sends), the
  // GPU probe by its Resource — so the tick reads are exact at any shard
  // count. The scope stops at the first tick after the worker's engine
  // drained, keeping the simulation finite.
  void SetupTimeSeries() {
    if (config_.timeseries == nullptr) {
      return;
    }
    TimeSeriesRecorder& rec = *config_.timeseries;
    for (int w = 0; w < sim_workers_; ++w) {
      std::function<bool()> active;
      if (!dag_engines_.empty()) {
        const DagEngine* engine = dag_engines_[w].get();
        active = [engine] { return !engine->AllDone(); };
      } else {
        const ImperativeEngine* engine = imp_engines_[w].get();
        active = [engine] { return !engine->AllDone(); };
      }
      const std::string ws = std::to_string(w);
      const int scope = rec.AddScope("w" + ws, WorkerSim(w), std::move(active));
      rec.SampleCounter(scope, "net.worker" + ws + ".up.bytes");
      rec.SampleCounter(scope, "net.worker" + ws + ".down.bytes");
      rec.SampleGauge(scope, "net.worker" + ws + ".up.inflight_bytes");
      rec.SampleSketch(scope, "net.worker" + ws + ".up.queue_ns");
      rec.SampleSketch(scope, "sched.w" + ws + ".queue_depth");
      rec.SampleSketch(scope, "sched.w" + ws + ".credit_in_use");
      rec.SampleCounter(scope, "sched.w" + ws + ".preemptions");
      const Resource* gpu = gpus_[w].get();
      rec.SampleProbe(scope, "gpu.w" + ws + ".busy_ns",
                      [gpu] { return gpu->busy_time().nanos(); });
      if (config_.dynamics.has_value() && config_.dynamics->enabled() && ps_ != nullptr) {
        // Per-link effective-rate gauges: the schedule scale times the AIMD
        // controller scale, read at tick time from the worker's own links.
        // Registered only when dynamics is enabled, so disabled-mode CSVs
        // stay byte-identical to pre-dynamics goldens.
        const Link* up = &ps_->worker_uplink(w);
        const Link* down = &ps_->worker_downlink(w);
        rec.SampleProbe(scope, "net.worker" + ws + ".up.rate_bps",
                        [up] { return static_cast<int64_t>(up->CurrentRateBps()); });
        rec.SampleProbe(scope, "net.worker" + ws + ".down.rate_bps",
                        [down] { return static_cast<int64_t>(down->CurrentRateBps()); });
      }
    }
    rec.Start();
  }

  // ---- shared plugin actions ----------------------------------------------

  // GPU compute op; optionally records a trace span and the BP-end timestamp
  // of iteration `bp_end_iter` (>= 0 only for each iteration's last BP op).
  DagEngine::OpFn ComputeOp(int worker, SimTime duration, std::string name = "",
                            int bp_end_iter = -1) {
    Resource* gpu = gpus_[worker].get();
    Simulator* wsim = WorkerSim(worker);
    return [this, gpu, wsim, worker, duration, name = std::move(name),
            bp_end_iter](DagEngine::Done done) {
      const SimTime queued_at = wsim->Now();
      SimTime effective = duration;
      if (faults_ != nullptr) {
        // Straggler episode: this worker's kernels run slower for a while,
        // judged by the worker's own clock (shards advance independently
        // within a lookahead window).
        effective = faults_->ScaleCompute(worker, effective, wsim->Now());
      }
      gpu->Submit(effective, [this, wsim, worker, queued_at, name, bp_end_iter,
                             done = std::move(done)] {
        if (bp_end_iter >= 0) {
          RecordBpEnd(worker, bp_end_iter, wsim->Now());
        }
        if (config_.trace != nullptr) {
          config_.trace->AddSpan("worker" + std::to_string(worker) + "/gpu", name, queued_at,
                                 wsim->Now());
        }
        done();
      });
    };
  }

  // Records the completion of BP for (worker, iter); Collect() takes the
  // slowest worker's time as the iteration's BP end.
  void RecordBpEnd(int worker, int iter, SimTime now) {
    worker_bp_end_[worker][iter] = std::max(worker_bp_end_[worker][iter], now);
  }

  // Starts the full PS communication for one tensor on `worker`'s Core: a
  // push task plus a pull task whose partitions become ready at partition
  // granularity (§4.1 assumption 3: the done part of a push can be pulled
  // while the rest is still in flight). In synchronous training a pull
  // partition is ready when the shard finished aggregating it (server-side
  // notification via the aggregation listener); in asynchronous training it
  // is ready as soon as this worker's own push partition is acked.
  // `on_done` fires when the pull completes.
  void StartPsTensor(int worker, int layer, std::function<void()> on_done) {
    SchedulerCore& core = *cores_[worker];
    const Bytes bytes = config_.model.layers[layer].param_bytes;

    const Bytes partition_override = PartitionOverride(layer);

    CommTaskDesc pull;
    pull.worker = worker;
    pull.layer = layer;
    pull.tensor_bytes = bytes;
    pull.type = CommOpType::kPull;
    pull.name = config_.model.layers[layer].name + ".pull";
    pull.tensor_id = shared_.tensor_offset + layer;
    pull.partition_bytes_override = partition_override;
    pull.on_finish = std::move(on_done);
    const CommTaskId pull_id = core.Enqueue(std::move(pull));
    pull_task_ids_[worker][layer] = pull_id;

    CommTaskDesc push;
    push.worker = worker;
    push.layer = layer;
    push.tensor_bytes = bytes;
    push.type = CommOpType::kPush;
    push.name = config_.model.layers[layer].name + ".push";
    push.tensor_id = shared_.tensor_offset + layer;
    push.partition_bytes_override = partition_override;
    if (config_.ps_async) {
      if (config_.mode == SchedMode::kVanilla) {
        // Vanilla engines chain pull after the *whole* push (the paper's 50%
        // duplex-waste observation, §2.2).
        push.on_finish = [&core, pull_id] { core.NotifyReady(pull_id); };
      } else {
        push.on_partition_finish = [&core, pull_id](int partition) {
          core.NotifyReadyPartition(pull_id, partition);
        };
      }
    }
    const CommTaskId push_id = core.Enqueue(std::move(push));
    push_parts_[worker][layer] = core.NumPartitions(push_id);
    core.NotifyReady(push_id);
  }

  // Per-task partition override. Vanilla ps-lite splits tensors above its
  // big-array bound evenly across the shards (one slice per server, each
  // still a single message) — except row-sparse tensors, which always land
  // whole on one shard. In ByteScheduler mode, per-layer partition sizes
  // (the §7 "dynamic partition size" extension) take precedence over the
  // uniform scheduler-config size.
  Bytes PartitionOverride(int layer) const {
    const Layer& l = config_.model.layers[layer];
    if (config_.mode == SchedMode::kVanilla) {
      // The big-array split is a ps-lite behaviour; vanilla Horovod/NCCL
      // all-reduces whole tensors.
      if (config_.setup.arch == ArchType::kPs && l.splittable && l.param_bytes > MiB(1) &&
          config_.num_machines > 1) {
        return (l.param_bytes + config_.num_machines - 1) / config_.num_machines;
      }
      return 0;
    }
    if (static_cast<int>(config_.per_layer_partition.size()) == config_.model.num_layers() &&
        config_.per_layer_partition[layer] > 0) {
      return config_.per_layer_partition[layer];
    }
    return 0;
  }

  // TensorFlow-style vanilla PS path, split across the step barrier: the
  // send op completes once the gradient is applied on the shard; parameters
  // are read back at the *start* of the next step (no cross-iteration pull
  // overlap — a key reason scheduling gains most on barrier frameworks).
  void StartPsPush(int worker, int layer, std::function<void()> on_done) {
    SchedulerCore& core = *cores_[worker];
    CommTaskDesc push;
    push.worker = worker;
    push.layer = layer;
    push.tensor_bytes = config_.model.layers[layer].param_bytes;
    push.type = CommOpType::kPush;
    push.name = config_.model.layers[layer].name + ".push";
    push.tensor_id = shared_.tensor_offset + layer;
    push.partition_bytes_override = PartitionOverride(layer);
    if (config_.ps_async) {
      push.on_finish = std::move(on_done);
    } else {
      agg_done_cbs_[worker][layer] = std::move(on_done);
    }
    const CommTaskId push_id = core.Enqueue(std::move(push));
    push_parts_[worker][layer] = core.NumPartitions(push_id);
    core.NotifyReady(push_id);
  }

  void StartPsPull(int worker, int layer, std::function<void()> on_done) {
    SchedulerCore& core = *cores_[worker];
    CommTaskDesc pull;
    pull.worker = worker;
    pull.layer = layer;
    pull.tensor_bytes = config_.model.layers[layer].param_bytes;
    pull.type = CommOpType::kPull;
    pull.name = config_.model.layers[layer].name + ".pull";
    pull.tensor_id = shared_.tensor_offset + layer;
    pull.partition_bytes_override = PartitionOverride(layer);
    pull.on_finish = std::move(on_done);
    const CommTaskId pull_id = core.Enqueue(std::move(pull));
    // The step barrier has passed, so aggregation is already complete.
    core.NotifyReady(pull_id);
  }

  // Starts (or joins) the all-reduce for one tensor. With multiple machines
  // the master Core runs one operation per tensor; `on_done` fires when the
  // ring pass completes.
  void StartAllReduceTensor(int layer, std::function<void()> on_done) {
    SchedulerCore& core = *cores_[0];
    CommTaskDesc task;
    task.worker = 0;
    task.layer = layer;
    task.tensor_bytes = config_.model.layers[layer].param_bytes;
    task.type = CommOpType::kAllReduce;
    task.name = config_.model.layers[layer].name + ".allreduce";
    task.partition_bytes_override = PartitionOverride(layer);
    task.on_finish = std::move(on_done);
    const CommTaskId id = core.Enqueue(std::move(task));
    core.NotifyReady(id);
  }

  void StartCommTensor(int worker, int layer, std::function<void()> on_done) {
    if (config_.trace != nullptr) {
      const SimTime start = sim_->Now();
      const std::string track = "worker" + std::to_string(worker) + "/comm";
      const std::string name =
          config_.model.layers[layer].name +
          (config_.setup.arch == ArchType::kPs ? ".push+pull" : ".allreduce");
      on_done = [this, start, track, name, inner = std::move(on_done)] {
        config_.trace->AddSpan(track, name, start, sim_->Now());
        inner();
      };
    }
    if (config_.setup.arch == ArchType::kPs) {
      StartPsTensor(worker, layer, std::move(on_done));
    } else {
      StartAllReduceTensor(layer, std::move(on_done));
    }
  }

  // ---- declarative frameworks (MXNet, TensorFlow) -------------------------

  void BuildDeclarativeWorker(int worker) {
    DagEngine& dag = *dag_engines_[worker];
    const bool barrier = HasGlobalBarrier(config_.setup.framework);
    const bool scheduled = config_.mode != SchedMode::kVanilla;
    const ModelProfile& model = config_.model;

    std::vector<OpId> prev_comm(num_layers_, kInvalidOp);       // in-engine comm ops
    std::vector<DependencyProxy*> prev_proxy(num_layers_, nullptr);  // barrier crossing
    OpId prev_barrier = kInvalidOp;

    for (int k = 0; k < total_iters_; ++k) {
      // Forward chain.
      std::vector<OpId> f(num_layers_);
      for (int i = 0; i < num_layers_; ++i) {
        const std::string name = "f" + std::to_string(k) + "_" + std::to_string(i);
        f[i] = dag.AddOp(name, ComputeOp(worker, model.layers[i].fp_time, name));
        if (i > 0) {
          dag.AddDep(f[i - 1], f[i]);
        }
      }
      // Cross-iteration gating of forward compute.
      {
        // Layer-wise dependencies: engine edges (MXNet, Fig. 6; or TF's
        // step-start variable reads) or ByteScheduler's out-of-engine proxies
        // (Fig. 8).
        for (int i = 0; i < num_layers_; ++i) {
          if (prev_comm[i] != kInvalidOp) {
            dag.AddDep(prev_comm[i], f[i]);
          }
          if (prev_proxy[i] != nullptr) {
            OpId proxy_op = dag.AddOp("proxy_f" + std::to_string(k) + "_" + std::to_string(i),
                                      prev_proxy[i]->MakeOpFn());
            dag.AddDep(proxy_op, f[i]);
            if (i > 0) {
              // The proxy guards this layer's forward op within the chain.
              dag.AddDep(f[i - 1], proxy_op);
            }
          }
        }
      }
      if (barrier && prev_barrier != kInvalidOp) {
        // Global barrier between iterations (Fig. 3): nothing of iteration k
        // starts before it passes.
        dag.AddDep(prev_barrier, f[0]);
      }

      // Backward chain.
      std::vector<OpId> b(num_layers_);
      for (int i = num_layers_ - 1; i >= 0; --i) {
        const std::string name = "b" + std::to_string(k) + "_" + std::to_string(i);
        // The last BP op (layer 0) marks the iteration's BP end.
        b[i] = dag.AddOp(name,
                         ComputeOp(worker, model.layers[i].bp_time, name, i == 0 ? k : -1));
        if (i == num_layers_ - 1) {
          dag.AddDep(f[num_layers_ - 1], b[i]);
        } else {
          dag.AddDep(b[i + 1], b[i]);
        }
      }

      // Communication ops, posted per layer after its gradient is ready.
      // TensorFlow's vanilla PS path has no cross-iteration pull overlap:
      // the send op finishes when the shard applied the gradient; variables
      // are read back only at the next step's start (after the barrier).
      const bool tf_vanilla_ps =
          !scheduled && barrier && config_.setup.arch == ArchType::kPs;
      std::vector<OpId> comm(num_layers_);
      std::fill(prev_comm.begin(), prev_comm.end(), kInvalidOp);
      std::fill(prev_proxy.begin(), prev_proxy.end(), nullptr);
      for (int i = 0; i < num_layers_; ++i) {
        const std::string name = "comm" + std::to_string(k) + "_" + std::to_string(i);
        if (tf_vanilla_ps) {
          comm[i] = dag.AddOp(name, [this, worker, i](DagEngine::Done done) {
            StartPsPush(worker, i, std::move(done));
          });
        } else if (scheduled && barrier && !config_.disable_barrier_crossing) {
          // ByteScheduler on a barrier framework (Fig. 7): the engine op is
          // asynchronous — it hands the tensor to the Core and returns so the
          // barrier can pass; a Dependency Proxy blocks the next iteration's
          // forward op until notify_finish.
          auto proxy = std::make_unique<DependencyProxy>();
          DependencyProxy* proxy_ptr = proxy.get();
          proxies_.push_back(std::move(proxy));
          comm[i] = dag.AddOp(name, [this, worker, i, proxy_ptr](DagEngine::Done done) {
            StartCommTensor(worker, i, [proxy_ptr] { proxy_ptr->Release(); });
            done();  // returns immediately: communication runs out-of-engine
          });
          prev_proxy[i] = proxy_ptr;
        } else {
          // Vanilla, or ByteScheduler on a barrier-free framework (Fig. 6):
          // the engine op completes when the communication finishes.
          comm[i] = dag.AddOp(name, [this, worker, i](DagEngine::Done done) {
            StartCommTensor(worker, i, std::move(done));
          });
          prev_comm[i] = comm[i];
        }
        dag.AddDep(b[i], comm[i]);
      }

      if (barrier) {
        OpId barrier_op = dag.AddOp("barrier" + std::to_string(k), nullptr);
        for (int i = 0; i < num_layers_; ++i) {
          dag.AddDep(comm[i], barrier_op);
        }
        prev_barrier = barrier_op;
        if (tf_vanilla_ps) {
          // Step-start variable reads: issued after the barrier, each gating
          // its layer's forward op of the next iteration.
          for (int i = 0; i < num_layers_; ++i) {
            OpId pull_op = dag.AddOp(
                "read_var" + std::to_string(k) + "_" + std::to_string(i),
                [this, worker, i](DagEngine::Done done) {
                  StartPsPull(worker, i, std::move(done));
                });
            dag.AddDep(barrier_op, pull_op);
            prev_comm[i] = pull_op;
          }
        }
      }
    }
  }

  // ---- imperative framework (PyTorch) -------------------------------------

  // Per-layer gate used by the PyTorch plugin's hooks: the forward pre-hook
  // of iteration k waits until the layer's communication of iteration k-1 has
  // finished. This is the imperative-engine embodiment of the Dependency
  // Proxy — the hook op holds its stream position until released.
  struct LayerGate {
    int finished = 0;
    int next_wait = 0;  // successive hook invocations = successive iterations
    std::vector<std::pair<int, DagEngine::Done>> waiters;

    void Arrive(DagEngine::Done done) {
      const int needed = next_wait++;
      if (finished >= needed) {
        done();
      } else {
        waiters.emplace_back(needed, std::move(done));
      }
    }

    void FinishOne() {
      ++finished;
      std::vector<DagEngine::Done> ready;
      std::erase_if(waiters, [&](auto& w) {
        if (w.first <= finished) {
          ready.push_back(std::move(w.second));
          return true;
        }
        return false;
      });
      for (auto& done : ready) {
        done();
      }
    }
  };

  void BuildImperativeWorker(int worker) {
    ImperativeEngine& eng = *imp_engines_[worker];
    const bool scheduled = config_.mode != SchedMode::kVanilla;
    const ModelProfile& model = config_.model;

    auto gates = std::make_shared<std::vector<LayerGate>>(num_layers_);
    if (scheduled) {
      for (int i = 0; i < num_layers_; ++i) {
        // register_forward_pre_hook: blocks this layer's forward compute
        // until its previous-iteration communication completed (Fig. 8).
        eng.RegisterForwardPreHook(i, [gates, i](DagEngine::Done done) {
          (*gates)[i].Arrive(std::move(done));
        });
        // register_hook on the gradient: hands the tensor to the Core the
        // moment BP produces it, then returns (communication runs
        // out-of-engine, crossing the step barrier).
        eng.RegisterBackwardHook(i, [this, gates, i, worker](DagEngine::Done done) {
          StartCommTensor(worker, i, [gates, i] { (*gates)[i].FinishOne(); });
          done();
        });
      }
    }

    for (int k = 0; k < total_iters_; ++k) {
      for (int i = 0; i < num_layers_; ++i) {
        const std::string name = "f" + std::to_string(k) + "_" + std::to_string(i);
        eng.PostForward(i, name, ComputeOp(worker, model.layers[i].fp_time, name));
      }
      std::vector<OpId> comm_ops;
      for (int i = num_layers_ - 1; i >= 0; --i) {
        const std::string name = "b" + std::to_string(k) + "_" + std::to_string(i);
        OpId b_op = eng.PostBackward(
            i, name, ComputeOp(worker, model.layers[i].bp_time, name, i == 0 ? k : -1));
        if (!scheduled) {
          // Vanilla Horovod: background all-reduce launched in gradient-ready
          // order; the optimizer step below waits for all of them.
          OpId comm = eng.PostBackground(
              "comm" + std::to_string(k) + "_" + std::to_string(i),
              [this, worker, i](DagEngine::Done done) {
                StartCommTensor(worker, i, std::move(done));
              });
          eng.After(b_op, comm);
          comm_ops.push_back(comm);
        }
      }
      // optimizer.step(): the inter-iteration global barrier of Fig. 3. With
      // ByteScheduler it no longer waits for communication (§3.4).
      OpId step = eng.Post("step" + std::to_string(k), nullptr);
      for (OpId comm : comm_ops) {
        eng.After(comm, step);
      }
    }
  }

  // ---- results -------------------------------------------------------------

  JobResult Collect() {
    JobResult result;
    // Total processed events is shard-count-invariant (same global event set
    // regardless of partition), so the sharded oracle can compare it.
    result.sim_events =
        coord_ != nullptr ? coord_->total_processed() : sim_->processed_events();
    for (const auto& core : cores_) {
      result.subtasks_started += core->subtasks_started();
    }
    std::vector<SimTime> iter_bp_end(total_iters_);
    for (int k = 0; k < total_iters_; ++k) {
      for (int w = 0; w < sim_workers_; ++w) {
        iter_bp_end[k] = std::max(iter_bp_end[k], worker_bp_end_[w][k]);
      }
    }
    result.iter_end_times = iter_bp_end;
    if (faults_ != nullptr) {
      result.fault_stats = faults_->stats();
    }
    for (const auto& core : cores_) {
      result.subtasks_abandoned += core->subtasks_abandoned();
    }
    const SimTime start = iter_bp_end[config_.warmup_iters - 1];
    const SimTime end = iter_bp_end[total_iters_ - 1];
    const double span_sec = (end - start).ToSeconds();
    BSCHED_CHECK(span_sec > 0);
    result.avg_iter_time = SimTime::Seconds(span_sec / config_.measure_iters);
    const double samples_per_iter =
        static_cast<double>(config_.total_gpus()) * config_.model.batch_per_gpu;
    result.samples_per_sec = samples_per_iter / result.avg_iter_time.ToSeconds();
    if (ps_ != nullptr) {
      result.shard_load_imbalance = ps_->ShardLoadImbalance();
      result.rate_ctrl_decreases = ps_->rate_ctrl_decreases();
      result.rate_ctrl_increases = ps_->rate_ctrl_increases();
      result.link_repaces = ps_->link_repaces();
    }
    ExportMetrics(result);
    return result;
  }

  // End-of-run subsystem totals into the metrics registry (on top of the
  // hot-path histograms/counters recorded while the simulation ran).
  void ExportMetrics(const JobResult& result) {
    if (obs_ == nullptr || config_.metrics == nullptr) {
      return;
    }
    MetricsRegistry& reg = *config_.metrics;
    for (const auto& core : cores_) {
      core->ExportMetrics();
    }
    if (ps_ != nullptr) {
      ps_->ExportMetrics();
    }
    if (ar_ != nullptr) {
      ar_->ExportMetrics();
    }
    if (coord_ != nullptr) {
      // Only shard-count-invariant gauges are exported in sharded mode:
      // allocated_slots / skipped_cancelled / compactions depend on how
      // events landed on shards, and the sharded oracle compares metric
      // snapshots byte for byte across shard counts.
      reg.gauge("sim.processed_events")
          ->Set(static_cast<int64_t>(coord_->total_processed()));
      reg.gauge("sim.windows")->Set(static_cast<int64_t>(coord_->windows()));
      reg.gauge("sim.cross_shard_messages")
          ->Set(static_cast<int64_t>(coord_->messages_posted()));
    } else {
      reg.gauge("sim.processed_events")->Set(static_cast<int64_t>(sim_->processed_events()));
      reg.gauge("sim.allocated_slots")->Set(static_cast<int64_t>(sim_->AllocatedSlots()));
      reg.gauge("sim.skipped_cancelled")->Set(static_cast<int64_t>(sim_->skipped_cancelled()));
      reg.gauge("sim.compactions")->Set(static_cast<int64_t>(sim_->compactions()));
    }
    for (size_t w = 0; w < gpus_.size(); ++w) {
      reg.gauge("gpu.w" + std::to_string(w) + ".busy_ns")
          ->Set(gpus_[w]->busy_time().nanos());
    }
    // Fault/recovery counters are always exported (zero without chaos), so
    // obs_report and the acceptance checks see a stable key set.
    reg.counter("fault.core_retries")->Inc(result.fault_stats.core_retries);
    reg.counter("fault.core_timeouts")->Inc(result.fault_stats.core_timeouts);
    reg.counter("fault.core_late_completions")->Inc(result.fault_stats.core_late_completions);
    reg.counter("fault.core_abandoned")->Inc(result.fault_stats.core_abandoned);
    reg.counter("fault.backend_retransmits")->Inc(result.fault_stats.backend_retransmits);
    reg.counter("fault.drops_injected")->Inc(result.fault_stats.drops_injected);
    reg.counter("fault.delays_injected")->Inc(result.fault_stats.delays_injected);
  }

  JobConfig config_;
  Shared shared_;
  int num_layers_ = 0;
  int total_iters_ = 0;
  int sim_workers_ = 0;

  Simulator owned_sim_;
  Simulator* sim_ = nullptr;  // null in sharded mode (see WorkerSim)
  std::unique_ptr<ShardCoordinator> coord_;
  // Observability sinks (flow bookkeeping + metrics handles); set only for
  // jobs owning their substrate, see the ctor.
  ObsContext obs_storage_;
  ObsContext* obs_ = nullptr;
  std::unique_ptr<FaultInjector> faults_;
  std::unique_ptr<PsBackend> owned_ps_;
  PsBackend* ps_ = nullptr;
  std::unique_ptr<AllReduceBackend> ar_;
  CommBackend* backend_ = nullptr;
  std::vector<std::unique_ptr<SchedulerCore>> owned_cores_;
  std::vector<SchedulerCore*> cores_;
  std::vector<std::unique_ptr<Resource>> gpus_;
  std::vector<std::unique_ptr<DagEngine>> dag_engines_;
  std::vector<std::unique_ptr<ImperativeEngine>> imp_engines_;
  std::vector<std::unique_ptr<DependencyProxy>> proxies_;
  // BP-finish stamp per (worker, iteration); each worker writes only its own
  // row (on its own shard in sharded mode), merged by max at Collect().
  std::vector<std::vector<SimTime>> worker_bp_end_;
  // Latest pull CommTask per (worker, layer); targets of the aggregation
  // listener in synchronous PS mode.
  std::vector<std::vector<CommTaskId>> pull_task_ids_;
  // Aggregated-partition counters for tensor-level (vanilla) pull chaining.
  std::vector<std::vector<int>> agg_counts_;
  // Partition count of the current push task per (worker, layer).
  std::vector<std::vector<int>> push_parts_;
  // TF-vanilla: completion callbacks of in-engine send ops, fired when the
  // whole tensor is aggregated on its shard.
  std::vector<std::vector<std::function<void()>>> agg_done_cbs_;
};

}  // namespace

JobResult RunTrainingJob(const JobConfig& config) { return TrainingJob(config).Run(); }

std::vector<JobResult> RunCoscheduledPsJobs(const std::vector<JobConfig>& jobs,
                                            CoschedulePolicy policy) {
  BSCHED_CHECK(!jobs.empty());
  const JobConfig& first = jobs.front();
  for (const JobConfig& job : jobs) {
    BSCHED_CHECK(job.setup.arch == ArchType::kPs);
    BSCHED_CHECK(job.num_machines == first.num_machines);
    BSCHED_CHECK(job.bandwidth == first.bandwidth);
    BSCHED_CHECK(job.ps_async == first.ps_async);
    BSCHED_CHECK(!job.chaos.has_value() && "chaos mode is unsupported for co-scheduled jobs");
    BSCHED_CHECK((!job.dynamics.has_value() || !job.dynamics->enabled()) &&
                 "dynamic network is unsupported for co-scheduled jobs");
    BSCHED_CHECK(job.shards == 0 && "sharded execution is unsupported for co-scheduled jobs");
  }

  Simulator sim;
  PsConfig ps_config;
  ps_config.num_workers = first.num_machines;
  ps_config.num_shards = first.num_machines;
  ps_config.link_rate = first.bandwidth;
  ps_config.transport = first.setup.transport;
  ps_config.synchronous = !first.ps_async;
  PsBackend ps(&sim, ps_config);

  std::vector<std::unique_ptr<SchedulerCore>> shared_cores;
  std::vector<SchedulerCore*> shared_core_ptrs;
  if (policy == CoschedulePolicy::kCoordinated) {
    const SchedulerConfig sched = SchedulerConfigFor(first);
    for (int w = 0; w < first.num_machines; ++w) {
      shared_cores.push_back(std::make_unique<SchedulerCore>(sched, &ps, w));
      shared_core_ptrs.push_back(shared_cores.back().get());
    }
  }

  // Disjoint tensor-id ranges keep each job's aggregation slots and shard
  // assignment independent even on the shared backend.
  constexpr int64_t kTensorStride = 1 << 20;
  std::vector<std::unique_ptr<TrainingJob>> running;
  running.reserve(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    TrainingJob::Shared shared;
    shared.sim = &sim;
    shared.ps = &ps;
    shared.cores = shared_core_ptrs;
    shared.tensor_offset = static_cast<int64_t>(j) * kTensorStride;
    running.push_back(std::make_unique<TrainingJob>(jobs[j], shared));
    running.back()->Prepare();
  }
  sim.Run();
  std::vector<JobResult> results;
  results.reserve(jobs.size());
  for (auto& job : running) {
    results.push_back(job->Finish());
  }
  return results;
}

double LinearScalingSpeed(const ModelProfile& model, int total_gpus) {
  const double iter_sec = model.TotalComputeTime().ToSeconds();
  return total_gpus * model.batch_per_gpu / iter_sec;
}

double PaperLinearScaling(const JobConfig& config) {
  // The paper's reference is the one-machine *local* training speed (all
  // GPUs on one box, no cross-machine network) multiplied by the machine
  // count — which is compute-bound in this substrate for every model.
  return LinearScalingSpeed(config.model, config.total_gpus());
}

TunedParams DefaultTunedParams(const ModelProfile& model, ArchType arch,
                               const TransportModel& transport, Bandwidth bandwidth) {
  TunedParams params{};
  if (arch == ArchType::kPs) {
    // Around half a millisecond of effective line rate balances preemption
    // granularity against per-partition overhead (§4.1).
    const double rate = transport.EffectiveRate(bandwidth).bytes_per_sec();
    const Bytes bdp = static_cast<Bytes>(rate * 500e-6);
    params.partition_bytes = std::clamp<Bytes>(bdp, KiB(256), MiB(16));
    params.credit_bytes = params.partition_bytes * 5;
  } else {
    // All-reduce pays a ring-size-dependent cost per operation, so large
    // partitions win (Table 1's NCCL column).
    params.partition_bytes = std::clamp<Bytes>(model.TotalParamBytes() / 6, MiB(24), MiB(96));
    params.credit_bytes = params.partition_bytes * 2;
  }
  return params;
}

}  // namespace bsched
