// Cluster / framework / scheduler configuration for a training job, plus the
// named setups used throughout the paper's evaluation (§6.1).
#ifndef SRC_RUNTIME_CLUSTER_H_
#define SRC_RUNTIME_CLUSTER_H_

#include <string>

#include "src/common/units.h"
#include "src/core/comm_task.h"
#include "src/net/transport.h"

namespace bsched {

enum class ArchType {
  kPs,         // parameter server: workers push/pull against shards
  kAllReduce,  // ring all-reduce (NCCL-style)
};

// The three framework classes the paper targets. What matters for scheduling
// is the engine style and whether an inter-iteration global barrier exists
// (§2.3 Challenge 1, Figure 3).
enum class Framework {
  kMxnet,       // declarative engine, no global barrier
  kTensorFlow,  // declarative engine, global barrier
  kPyTorch,     // imperative engine, global barrier
};

bool HasGlobalBarrier(Framework fw);
bool IsImperative(Framework fw);
const char* ToString(ArchType arch);
const char* ToString(Framework fw);

// Which scheduling system runs the communication.
enum class SchedMode {
  kVanilla,        // the unmodified framework: FIFO, whole tensors
  kByteScheduler,  // priority + partition + credit (+ barrier crossing)
  kP3,             // P3 baseline: priority, 160 KB slices, stop-and-wait
};

const char* ToString(SchedMode mode);

// One of the paper's evaluation setups, e.g. "MXNet PS RDMA".
struct Setup {
  std::string name;
  Framework framework = Framework::kMxnet;
  ArchType arch = ArchType::kPs;
  TransportModel transport = TransportModel::Tcp();

  // The five setups shown in Figures 10-12.
  static Setup MxnetPsTcp();
  static Setup MxnetPsRdma();
  static Setup TensorFlowPsTcp();
  static Setup MxnetNcclRdma();
  static Setup PyTorchNcclTcp();
};

}  // namespace bsched

#endif  // SRC_RUNTIME_CLUSTER_H_
