#include "src/runtime/cluster.h"

namespace bsched {

bool HasGlobalBarrier(Framework fw) { return fw != Framework::kMxnet; }

bool IsImperative(Framework fw) { return fw == Framework::kPyTorch; }

const char* ToString(ArchType arch) {
  switch (arch) {
    case ArchType::kPs:
      return "ps";
    case ArchType::kAllReduce:
      return "allreduce";
  }
  return "unknown";
}

const char* ToString(Framework fw) {
  switch (fw) {
    case Framework::kMxnet:
      return "mxnet";
    case Framework::kTensorFlow:
      return "tensorflow";
    case Framework::kPyTorch:
      return "pytorch";
  }
  return "unknown";
}

const char* ToString(SchedMode mode) {
  switch (mode) {
    case SchedMode::kVanilla:
      return "baseline";
    case SchedMode::kByteScheduler:
      return "bytescheduler";
    case SchedMode::kP3:
      return "p3";
  }
  return "unknown";
}

// PS setups carry a per-path goodput ceiling reflecting the communication
// library implementation, not just the wire: ps-lite's single TCP connection
// per server plateaus far below a 100 Gbps NIC; the paper's in-house RDMA
// ps-lite reaches higher but nowhere near NCCL's line-rate transfers;
// TensorFlow's gRPC-based PS is the slowest of the three (visible in the
// paper's Figure 10(c) axis, ~5x below MXNet's).

Setup Setup::MxnetPsTcp() {
  TransportModel t = TransportModel::Tcp();
  t.goodput_cap = Bandwidth::Gbps(26);
  return Setup{"MXNet PS TCP", Framework::kMxnet, ArchType::kPs, t};
}

Setup Setup::MxnetPsRdma() {
  TransportModel t = TransportModel::Rdma();
  t.goodput_cap = Bandwidth::Gbps(40);
  return Setup{"MXNet PS RDMA", Framework::kMxnet, ArchType::kPs, t};
}

Setup Setup::TensorFlowPsTcp() {
  TransportModel t = TransportModel::Tcp();
  t.goodput_cap = Bandwidth::Gbps(7);
  t.serial_overhead = SimTime::Micros(120);  // protobuf serialization in gRPC
  return Setup{"TensorFlow PS TCP", Framework::kTensorFlow, ArchType::kPs, t};
}

Setup Setup::MxnetNcclRdma() {
  return Setup{"MXNet NCCL RDMA", Framework::kMxnet, ArchType::kAllReduce,
               TransportModel::Rdma()};
}

Setup Setup::PyTorchNcclTcp() {
  return Setup{"PyTorch NCCL TCP", Framework::kPyTorch, ArchType::kAllReduce,
               TransportModel::Tcp()};
}

}  // namespace bsched
