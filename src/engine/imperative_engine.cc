#include "src/engine/imperative_engine.h"

#include <utility>

#include "src/common/check.h"

namespace bsched {

void ImperativeEngine::RegisterForwardPreHook(int layer, DagEngine::OpFn hook) {
  BSCHED_CHECK(forward_pre_hooks_.find(layer) == forward_pre_hooks_.end());
  forward_pre_hooks_[layer] = std::move(hook);
}

void ImperativeEngine::RegisterBackwardHook(int layer, DagEngine::OpFn hook) {
  BSCHED_CHECK(backward_hooks_.find(layer) == backward_hooks_.end());
  backward_hooks_[layer] = std::move(hook);
}

OpId ImperativeEngine::Chain(OpId op) {
  if (last_stream_op_ != kInvalidOp) {
    dag_.AddDep(last_stream_op_, op);
  }
  last_stream_op_ = op;
  return op;
}

OpId ImperativeEngine::Post(std::string name, DagEngine::OpFn fn) {
  return Chain(dag_.AddOp(std::move(name), std::move(fn)));
}

OpId ImperativeEngine::PostForward(int layer, std::string name, DagEngine::OpFn fn) {
  auto hook = forward_pre_hooks_.find(layer);
  if (hook != forward_pre_hooks_.end()) {
    Chain(dag_.AddOp(name + ".pre_hook", hook->second));
  }
  return Chain(dag_.AddOp(std::move(name), std::move(fn)));
}

OpId ImperativeEngine::PostBackward(int layer, std::string name, DagEngine::OpFn fn) {
  const OpId op = Chain(dag_.AddOp(std::move(name), std::move(fn)));
  auto hook = backward_hooks_.find(layer);
  if (hook != backward_hooks_.end()) {
    Chain(dag_.AddOp(dag_.OpName(op) + ".hook", hook->second));
  }
  return op;
}

OpId ImperativeEngine::PostBackground(std::string name, DagEngine::OpFn fn) {
  return dag_.AddOp(std::move(name), std::move(fn));
}

void ImperativeEngine::After(OpId before, OpId after) { dag_.AddDep(before, after); }

}  // namespace bsched
