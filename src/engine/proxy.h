// Dependency Proxy (§3.3): an engine operation created by ByteScheduler that
// claims dependencies from/to other operations without the engine knowing
// about communication scheduling. When the engine starts the Proxy, the
// scheduler is notified (CommTask.notify_ready()); the Proxy then holds its
// position in the graph until the scheduler releases it.
#ifndef SRC_ENGINE_PROXY_H_
#define SRC_ENGINE_PROXY_H_

#include <functional>
#include <utility>

#include "src/engine/dag_engine.h"

namespace bsched {

class DependencyProxy {
 public:
  DependencyProxy() = default;
  DependencyProxy(const DependencyProxy&) = delete;
  DependencyProxy& operator=(const DependencyProxy&) = delete;

  // Invoked when the engine starts the proxy op, i.e. when all original
  // precedent operations have finished. Typically wired to notify_ready().
  void set_on_start(std::function<void()> fn) { on_start_ = std::move(fn); }

  // Builds the op body to install into an engine. The op completes only once
  // Release() has been called (before or after the engine starts it).
  DagEngine::OpFn MakeOpFn();

  // Lets the proxy finish; called by scheduler logic (e.g. on CommTask start
  // or notify_finish, depending on which side of the operation it guards).
  void Release();

  bool started() const { return started_; }
  bool released() const { return released_; }

 private:
  std::function<void()> on_start_;
  DagEngine::Done pending_done_;
  bool started_ = false;
  bool released_ = false;
};

}  // namespace bsched

#endif  // SRC_ENGINE_PROXY_H_
