// Imperative execution engine: models PyTorch-style frameworks. Operations
// posted to the (single) compute stream run strictly in post order; hooks can
// be registered per layer (register_forward_pre_hook / register_hook in
// PyTorch) and are spliced into the stream around the layer's ops — this is
// how the PyTorch plugin inserts Dependency Proxies without engine changes
// (§3.3, §5). Background ops model communication launched on side threads
// (e.g. Horovod), ordered only by explicit dependencies.
#ifndef SRC_ENGINE_IMPERATIVE_ENGINE_H_
#define SRC_ENGINE_IMPERATIVE_ENGINE_H_

#include <map>
#include <string>

#include "src/engine/dag_engine.h"

namespace bsched {

class ImperativeEngine {
 public:
  explicit ImperativeEngine(Simulator* sim) : dag_(sim) {}

  // Hooks must be registered before the corresponding ops are posted.
  // The forward pre-hook op runs in-stream immediately before layer ops
  // posted via PostForward; it blocks the stream until it completes.
  void RegisterForwardPreHook(int layer, DagEngine::OpFn hook);
  // The backward hook op runs in-stream immediately after ops posted via
  // PostBackward (gradient-ready hooks).
  void RegisterBackwardHook(int layer, DagEngine::OpFn hook);

  // Stream ops: strictly FIFO with everything else posted to the stream.
  OpId Post(std::string name, DagEngine::OpFn fn);
  OpId PostForward(int layer, std::string name, DagEngine::OpFn fn);
  OpId PostBackward(int layer, std::string name, DagEngine::OpFn fn);

  // Off-stream op (communication library thread). Runs when its explicit
  // dependencies (if any) are done.
  OpId PostBackground(std::string name, DagEngine::OpFn fn);

  // Explicit extra dependency edge (e.g. barrier waits on communication).
  void After(OpId before, OpId after);

  void Start() { dag_.Start(); }
  bool AllDone() const { return dag_.AllDone(); }
  DagEngine& dag() { return dag_; }

 private:
  OpId Chain(OpId op);

  DagEngine dag_;
  OpId last_stream_op_ = kInvalidOp;
  std::map<int, DagEngine::OpFn> forward_pre_hooks_;
  std::map<int, DagEngine::OpFn> backward_hooks_;
};

}  // namespace bsched

#endif  // SRC_ENGINE_IMPERATIVE_ENGINE_H_
