#include "src/engine/dag_engine.h"

#include <utility>

#include "src/common/check.h"

namespace bsched {

DagEngine::DagEngine(Simulator* sim) : sim_(sim) { BSCHED_CHECK(sim_ != nullptr); }

OpId DagEngine::AddOp(std::string name, OpFn fn) {
  BSCHED_CHECK(!started_);
  OpNode node;
  node.name = std::move(name);
  node.fn = std::move(fn);
  ops_.push_back(std::move(node));
  return static_cast<OpId>(ops_.size() - 1);
}

void DagEngine::AddDep(OpId before, OpId after) {
  BSCHED_CHECK(!started_);
  BSCHED_CHECK(before >= 0 && before < static_cast<OpId>(ops_.size()));
  BSCHED_CHECK(after >= 0 && after < static_cast<OpId>(ops_.size()));
  BSCHED_CHECK(before != after);
  ops_[before].dependents.push_back(after);
  ops_[after].indegree++;
}

void DagEngine::Start() {
  BSCHED_CHECK(!started_);
  started_ = true;
  for (OpId id = 0; id < static_cast<OpId>(ops_.size()); ++id) {
    if (ops_[id].indegree == 0) {
      Launch(id);
    }
  }
}

void DagEngine::Launch(OpId id) {
  OpNode& node = ops_[id];
  BSCHED_CHECK(!node.launched);
  node.launched = true;
  // Op start is its own simulator event: keeps call stacks flat even for long
  // chains of instant ops.
  sim_->Schedule(SimTime(), [this, id] {
    OpNode& n = ops_[id];
    if (!n.fn) {
      OnOpDone(id);
      return;
    }
    n.fn([this, id] { OnOpDone(id); });
  });
}

void DagEngine::OnOpDone(OpId id) {
  OpNode& node = ops_[id];
  BSCHED_CHECK(node.launched);
  BSCHED_CHECK(!node.done);
  node.done = true;
  ++ops_completed_;
  for (OpId dep : node.dependents) {
    OpNode& d = ops_[dep];
    BSCHED_DCHECK(d.indegree > 0);
    if (--d.indegree == 0) {
      Launch(dep);
    }
  }
}

const std::string& DagEngine::OpName(OpId id) const {
  BSCHED_CHECK(id >= 0 && id < static_cast<OpId>(ops_.size()));
  return ops_[id].name;
}

bool DagEngine::OpDone(OpId id) const {
  BSCHED_CHECK(id >= 0 && id < static_cast<OpId>(ops_.size()));
  return ops_[id].done;
}

}  // namespace bsched
