// Declarative execution engine: runs a DAG of asynchronous operations over
// the simulator, starting each op as soon as its dependencies complete. This
// models engines like MXNet's and TensorFlow's, which decide execution order
// from dependency graphs (§3.3). ByteScheduler never reorders engine ops —
// it only adds Dependency Proxy ops and claims edges, exactly as the paper
// requires for genericity.
#ifndef SRC_ENGINE_DAG_ENGINE_H_
#define SRC_ENGINE_DAG_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace bsched {

using OpId = int32_t;
inline constexpr OpId kInvalidOp = -1;

class DagEngine {
 public:
  // Completion callback handed to every op; the op must invoke it exactly
  // once when its work is finished (possibly much later, e.g. a Proxy).
  using Done = std::function<void()>;
  // Op body. A null OpFn is an instant no-op (used for barriers and joins).
  using OpFn = std::function<void(Done done)>;

  explicit DagEngine(Simulator* sim);
  DagEngine(const DagEngine&) = delete;
  DagEngine& operator=(const DagEngine&) = delete;

  // Adds an operation; ops may be added only before Start().
  OpId AddOp(std::string name, OpFn fn);

  // Declares that `before` must complete before `after` starts.
  void AddDep(OpId before, OpId after);

  // Launches all ops whose dependencies are already satisfied. After Start()
  // the graph is frozen.
  void Start();

  bool started() const { return started_; }
  bool AllDone() const { return ops_completed_ == ops_.size(); }
  size_t ops_completed() const { return ops_completed_; }
  size_t num_ops() const { return ops_.size(); }
  const std::string& OpName(OpId id) const;
  bool OpDone(OpId id) const;

 private:
  struct OpNode {
    std::string name;
    OpFn fn;
    std::vector<OpId> dependents;
    int indegree = 0;
    bool launched = false;
    bool done = false;
  };

  void Launch(OpId id);
  void OnOpDone(OpId id);

  Simulator* sim_;
  std::vector<OpNode> ops_;
  bool started_ = false;
  size_t ops_completed_ = 0;
};

}  // namespace bsched

#endif  // SRC_ENGINE_DAG_ENGINE_H_
