#include "src/engine/proxy.h"

#include "src/common/check.h"

namespace bsched {

DagEngine::OpFn DependencyProxy::MakeOpFn() {
  return [this](DagEngine::Done done) {
    BSCHED_CHECK(!started_);
    started_ = true;
    if (on_start_) {
      on_start_();
    }
    if (released_) {
      // Scheduler released the proxy before the engine reached it; the op
      // completes immediately (the blocked dependency is already satisfied).
      done();
    } else {
      pending_done_ = std::move(done);
    }
  };
}

void DependencyProxy::Release() {
  BSCHED_CHECK(!released_);
  released_ = true;
  if (pending_done_) {
    DagEngine::Done done = std::move(pending_done_);
    pending_done_ = nullptr;
    done();
  }
}

}  // namespace bsched
