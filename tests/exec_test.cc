// Parallel sweep execution layer: ThreadPool / SweepRunner semantics
// (ordering, exception propagation), and the serial-vs-parallel
// bit-exactness guarantees of the sweeps built on it (AutoTuner::Tune and
// the figure scaling grid).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/exec/sweep_runner.h"
#include "src/exec/thread_pool.h"
#include "src/model/zoo.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/tuning/auto_tuner.h"
#include "src/tuning/search.h"

#include <sstream>

namespace bsched {
namespace {

// ---- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  while (!ran) {
    std::this_thread::yield();
  }
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  // Two tasks that can only finish once both have started: requires 2 workers.
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      ++arrived;
      cv.notify_all();
      cv.wait(lock, [&] { return arrived == 2; });
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] { return arrived == 2; }));
}

// ---- SweepRunner ----------------------------------------------------------

TEST(SweepRunnerTest, ResultsComeBackInInputOrder) {
  SweepRunner runner(4);
  const std::vector<int> results = runner.ParallelFor(64, [](size_t i) {
    if (i % 7 == 0) {  // stagger completion order
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(results.size(), 64u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(SweepRunnerTest, SerialAndParallelProduceIdenticalResults) {
  const auto body = [](size_t i) { return 3.0 * static_cast<double>(i) + 1.0; };
  SweepRunner serial(1);
  SweepRunner parallel(8);
  EXPECT_EQ(serial.ParallelFor(33, body), parallel.ParallelFor(33, body));
}

TEST(SweepRunnerTest, VoidBodyRunsEveryIndexExactlyOnce) {
  SweepRunner runner(4);
  std::vector<std::atomic<int>> hits(50);
  runner.ParallelFor(50, [&hits](size_t i) { ++hits[i]; });
  for (const std::atomic<int>& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(SweepRunnerTest, ZeroAndSingleItemSweeps) {
  SweepRunner runner(4);
  EXPECT_TRUE(runner.ParallelFor(0, [](size_t) { return 1; }).empty());
  const std::vector<int> one = runner.ParallelFor(1, [](size_t i) { return static_cast<int>(i); });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0);
}

TEST(SweepRunnerTest, LowestIndexExceptionPropagates) {
  SweepRunner runner(4);
  try {
    runner.ParallelFor(16, [](size_t i) -> int {
      if (i == 11 || i == 5) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 5");
  }
}

TEST(SweepRunnerTest, SerialExceptionPropagates) {
  SweepRunner runner(1);
  EXPECT_THROW(runner.ParallelFor(4, [](size_t) -> int { throw std::runtime_error("x"); }),
               std::runtime_error);
}

TEST(SweepRunnerTest, DefaultJobsOverride) {
  const int before = SweepRunner::DefaultJobs();
  SweepRunner::SetDefaultJobs(3);
  EXPECT_EQ(SweepRunner::DefaultJobs(), 3);
  EXPECT_EQ(SweepRunner().jobs(), 3);
  SweepRunner::SetDefaultJobs(0);  // restore the hardware default
  EXPECT_GE(SweepRunner::DefaultJobs(), 1);
  EXPECT_GE(before, 1);
}

TEST(SweepRunnerTest, UsesMultipleThreadsWhenParallel) {
  SweepRunner runner(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> arrived{0};
  runner.ParallelFor(4, [&](size_t) {
    ++arrived;
    // Hold each task open briefly so one worker cannot drain the whole queue.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (arrived.load() < 2 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

// ---- serial-vs-parallel bit-exactness of the real sweeps ------------------

AutoTunerOptions BatchedOptions(int jobs) {
  AutoTunerOptions opt;
  opt.max_trials = 8;
  opt.batch_size = 3;  // rounds of 3, 3, 2
  opt.jobs = jobs;
  opt.seed = 11;
  opt.profile_iters = 2;
  return opt;
}

JobConfig TunerJob() {
  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  return job;
}

TEST(ParallelTuneTest, TuneIsBitIdenticalAcrossWorkerCounts) {
  AutoTuner serial_tuner(TunerJob(), BatchedOptions(/*jobs=*/1));
  AutoTuner parallel_tuner(TunerJob(), BatchedOptions(/*jobs=*/8));
  const AutoTuner::Result a = serial_tuner.TuneWithBo();
  const AutoTuner::Result b = parallel_tuner.TuneWithBo();

  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].partition_bytes, b.trials[i].partition_bytes) << i;
    EXPECT_EQ(a.trials[i].credit_bytes, b.trials[i].credit_bytes) << i;
    // Bitwise equality, not approximate: the parallel tuner must reproduce
    // the serial result stream exactly.
    EXPECT_EQ(std::memcmp(&a.trials[i].speed, &b.trials[i].speed, sizeof(double)), 0) << i;
  }
  EXPECT_EQ(a.best.partition_bytes, b.best.partition_bytes);
  EXPECT_EQ(a.best.credit_bytes, b.best.credit_bytes);
  EXPECT_EQ(std::memcmp(&a.best_speed, &b.best_speed, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.tuning_cost_sec, &b.tuning_cost_sec, sizeof(double)), 0);
}

TEST(ParallelTuneTest, BatchSizeOneMatchesLegacySequentialTuner) {
  // batch_size = 1 must reproduce the strictly sequential pre-batching tuner:
  // same suggestions, same rng draw order, same trials.
  AutoTunerOptions sequential = BatchedOptions(/*jobs=*/1);
  sequential.batch_size = 1;
  AutoTuner tuner(TunerJob(), sequential);
  const AutoTuner::Result result = tuner.TuneWithBo();

  // Replay the legacy loop by hand against the same search and seed.
  AutoTuner replay(TunerJob(), sequential);
  BayesianOptimizer bo(2, sequential.seed);
  for (size_t i = 0; i < result.trials.size(); ++i) {
    const std::vector<double> x = bo.Suggest();
    const double speed =
        replay.EvaluateObjective(replay.PartitionFromUnit(x[0]), replay.CreditFromUnit(x[1]));
    bo.Observe(x, speed);
    EXPECT_EQ(std::memcmp(&speed, &result.trials[i].speed, sizeof(double)), 0) << i;
  }
}

TEST(ParallelGridTest, ScalingGridIsBitIdenticalAcrossWorkerCounts) {
  const std::vector<bench::ScalingPane> serial =
      bench::ComputeScalingGrid(Vgg16(), /*include_p3=*/true, /*jobs=*/1);
  const std::vector<bench::ScalingPane> parallel =
      bench::ComputeScalingGrid(Vgg16(), /*include_p3=*/true, /*jobs=*/8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t s = 0; s < serial.size(); ++s) {
    EXPECT_EQ(serial[s].setup, parallel[s].setup);
    ASSERT_EQ(serial[s].cells.size(), parallel[s].cells.size());
    for (size_t c = 0; c < serial[s].cells.size(); ++c) {
      const bench::ScalingCell& a = serial[s].cells[c];
      const bench::ScalingCell& b = parallel[s].cells[c];
      EXPECT_EQ(a.gpus, b.gpus);
      EXPECT_EQ(a.has_p3, b.has_p3);
      EXPECT_EQ(std::memcmp(&a.baseline, &b.baseline, sizeof(double)), 0) << s << "," << c;
      EXPECT_EQ(std::memcmp(&a.sched, &b.sched, sizeof(double)), 0) << s << "," << c;
      EXPECT_EQ(std::memcmp(&a.linear, &b.linear, sizeof(double)), 0) << s << "," << c;
      EXPECT_EQ(std::memcmp(&a.p3, &b.p3, sizeof(double)), 0) << s << "," << c;
    }
  }
}

// ---- sharded parallel-DES determinism oracle ------------------------------
//
// JobConfig::shards > 0 runs a PS job on a ShardCoordinator: K simulators
// advancing in lookahead windows with cross-shard messages merged at barriers
// in a fixed order. The contract is that the trajectory depends only on
// whether the job is sharded, never on K — so every observable below must be
// bit-identical between --shards 1 and --shards N.

JobConfig ShardedOracleJob(int shards) {
  JobConfig job = bench::WithMode(
      bench::MakeJob(Vgg16(), Setup::MxnetPsTcp(), /*num_machines=*/3, Bandwidth::Gbps(10)),
      SchedMode::kByteScheduler);
  job.warmup_iters = 1;
  job.measure_iters = 2;
  job.shards = shards;
  return job;
}

void ExpectBitIdentical(const JobResult& a, const JobResult& b) {
  EXPECT_EQ(std::memcmp(&a.samples_per_sec, &b.samples_per_sec, sizeof(double)), 0);
  EXPECT_EQ(a.avg_iter_time, b.avg_iter_time);
  EXPECT_EQ(std::memcmp(&a.shard_load_imbalance, &b.shard_load_imbalance, sizeof(double)), 0);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.subtasks_started, b.subtasks_started);
  EXPECT_EQ(a.subtasks_abandoned, b.subtasks_abandoned);
  ASSERT_EQ(a.iter_end_times.size(), b.iter_end_times.size());
  for (size_t i = 0; i < a.iter_end_times.size(); ++i) {
    EXPECT_EQ(a.iter_end_times[i], b.iter_end_times[i]) << "iter " << i;
  }
}

TEST(ShardedDeterminismTest, ResultsAreBitIdenticalAcrossShardCounts) {
  const JobResult one = RunTrainingJob(ShardedOracleJob(1));
  EXPECT_GT(one.samples_per_sec, 0.0);
  // 8 shards exceeds the 3-worker entity count: surplus shards idle at every
  // barrier but must not perturb the merge order.
  for (int shards : {2, 3, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ExpectBitIdentical(one, RunTrainingJob(ShardedOracleJob(shards)));
  }
}

TEST(ShardedDeterminismTest, ShardedSpeedTracksSerialSpeed) {
  // The sharded path deliberately turns PS acks/aggregation notifications
  // into explicit control messages, so it is NOT bit-identical to the serial
  // single-Simulator path — but the physics are the same control_latency, so
  // steady-state speed must stay within a few percent.
  JobConfig serial = ShardedOracleJob(1);
  serial.shards = 0;
  const double serial_speed = RunTrainingJob(serial).samples_per_sec;
  const double sharded_speed = RunTrainingJob(ShardedOracleJob(1)).samples_per_sec;
  EXPECT_GT(serial_speed, 0.0);
  EXPECT_NEAR(sharded_speed / serial_speed, 1.0, 0.10);
}

TEST(ShardedDeterminismTest, MetricsSnapshotIsByteIdenticalAcrossShardCounts) {
  // The exported metrics snapshot (counters only — assignment-variant gauges
  // are excluded in sharded mode) must serialize to the same bytes.
  auto snapshot_json = [](int shards) {
    MetricsRegistry metrics;
    JobConfig job = ShardedOracleJob(shards);
    job.metrics = &metrics;
    RunTrainingJob(job);
    std::ostringstream out;
    metrics.Snapshot().WriteJson(out);
    return out.str();
  };
  const std::string one = snapshot_json(1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, snapshot_json(3));
}

TEST(ShardedDeterminismTest, TimeSeriesCsvIsByteIdenticalAcrossShardCounts) {
  // The sim-time sampling pipeline merges per-scope series in fixed
  // (time, scope) order, so the exported CSV — tick times, instantaneous
  // values and per-window sketch percentiles alike — must not depend on how
  // many shard threads produced it.
  auto series_csv = [](int shards) {
    MetricsRegistry metrics;
    TimeSeriesRecorder recorder(&metrics, SimTime::Micros(200));
    JobConfig job = ShardedOracleJob(shards);
    job.metrics = &metrics;
    job.timeseries = &recorder;
    RunTrainingJob(job);
    return recorder.ToCsv();
  };
  const std::string one = series_csv(1);
  ASSERT_FALSE(one.empty());
  // Sanity: the series actually carries sampled rows, not just the header.
  EXPECT_NE(one.find(",w0,"), std::string::npos)
      << "expected worker-0 sample rows in:\n"
      << one.substr(0, 400);
  for (int shards : {2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(one, series_csv(shards));
  }
}

TEST(ShardedDeterminismTest, Fig04StyleGridIsByteIdenticalAcrossShardCounts) {
  // A miniature of bench/fig04_partition_credit.cc's sweep: the figure CSV a
  // user would regenerate with --shards must not depend on the shard count.
  auto grid_csv = [](int shards) {
    std::ostringstream csv;
    csv << "partition_kb,img_per_sec\n";
    for (Bytes p : {KiB(160), KiB(320), KiB(640)}) {
      JobConfig job = bench::MakeJob(Vgg16(), Setup::MxnetPsTcp(), /*num_machines=*/2,
                                     Bandwidth::Gbps(10));
      job.mode = SchedMode::kByteScheduler;
      SchedulerConfig cfg;
      cfg.policy = SchedulerConfig::Policy::kFifo;
      cfg.partition_bytes = p;
      cfg.credit_bytes = 8 * p;
      job.sched_override = cfg;
      job.warmup_iters = 1;
      job.measure_iters = 2;
      job.shards = shards;
      char row[96];
      std::snprintf(row, sizeof(row), "%llu,%.17g\n",
                    static_cast<unsigned long long>(p / 1024),
                    RunTrainingJob(job).samples_per_sec);
      csv << row;
    }
    return csv.str();
  };
  const std::string one = grid_csv(1);
  EXPECT_NE(one.find("img_per_sec"), std::string::npos);
  EXPECT_EQ(one, grid_csv(2));
}

}  // namespace
}  // namespace bsched
