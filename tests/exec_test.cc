// Parallel sweep execution layer: ThreadPool / SweepRunner semantics
// (ordering, exception propagation), and the serial-vs-parallel
// bit-exactness guarantees of the sweeps built on it (AutoTuner::Tune and
// the figure scaling grid).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/exec/sweep_runner.h"
#include "src/exec/thread_pool.h"
#include "src/model/zoo.h"
#include "src/tuning/auto_tuner.h"
#include "src/tuning/search.h"

namespace bsched {
namespace {

// ---- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  while (!ran) {
    std::this_thread::yield();
  }
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  // Two tasks that can only finish once both have started: requires 2 workers.
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      ++arrived;
      cv.notify_all();
      cv.wait(lock, [&] { return arrived == 2; });
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] { return arrived == 2; }));
}

// ---- SweepRunner ----------------------------------------------------------

TEST(SweepRunnerTest, ResultsComeBackInInputOrder) {
  SweepRunner runner(4);
  const std::vector<int> results = runner.ParallelFor(64, [](size_t i) {
    if (i % 7 == 0) {  // stagger completion order
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(results.size(), 64u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(SweepRunnerTest, SerialAndParallelProduceIdenticalResults) {
  const auto body = [](size_t i) { return 3.0 * static_cast<double>(i) + 1.0; };
  SweepRunner serial(1);
  SweepRunner parallel(8);
  EXPECT_EQ(serial.ParallelFor(33, body), parallel.ParallelFor(33, body));
}

TEST(SweepRunnerTest, VoidBodyRunsEveryIndexExactlyOnce) {
  SweepRunner runner(4);
  std::vector<std::atomic<int>> hits(50);
  runner.ParallelFor(50, [&hits](size_t i) { ++hits[i]; });
  for (const std::atomic<int>& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(SweepRunnerTest, ZeroAndSingleItemSweeps) {
  SweepRunner runner(4);
  EXPECT_TRUE(runner.ParallelFor(0, [](size_t) { return 1; }).empty());
  const std::vector<int> one = runner.ParallelFor(1, [](size_t i) { return static_cast<int>(i); });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0);
}

TEST(SweepRunnerTest, LowestIndexExceptionPropagates) {
  SweepRunner runner(4);
  try {
    runner.ParallelFor(16, [](size_t i) -> int {
      if (i == 11 || i == 5) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 5");
  }
}

TEST(SweepRunnerTest, SerialExceptionPropagates) {
  SweepRunner runner(1);
  EXPECT_THROW(runner.ParallelFor(4, [](size_t) -> int { throw std::runtime_error("x"); }),
               std::runtime_error);
}

TEST(SweepRunnerTest, DefaultJobsOverride) {
  const int before = SweepRunner::DefaultJobs();
  SweepRunner::SetDefaultJobs(3);
  EXPECT_EQ(SweepRunner::DefaultJobs(), 3);
  EXPECT_EQ(SweepRunner().jobs(), 3);
  SweepRunner::SetDefaultJobs(0);  // restore the hardware default
  EXPECT_GE(SweepRunner::DefaultJobs(), 1);
  EXPECT_GE(before, 1);
}

TEST(SweepRunnerTest, UsesMultipleThreadsWhenParallel) {
  SweepRunner runner(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> arrived{0};
  runner.ParallelFor(4, [&](size_t) {
    ++arrived;
    // Hold each task open briefly so one worker cannot drain the whole queue.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (arrived.load() < 2 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

// ---- serial-vs-parallel bit-exactness of the real sweeps ------------------

AutoTunerOptions BatchedOptions(int jobs) {
  AutoTunerOptions opt;
  opt.max_trials = 8;
  opt.batch_size = 3;  // rounds of 3, 3, 2
  opt.jobs = jobs;
  opt.seed = 11;
  opt.profile_iters = 2;
  return opt;
}

JobConfig TunerJob() {
  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  return job;
}

TEST(ParallelTuneTest, TuneIsBitIdenticalAcrossWorkerCounts) {
  AutoTuner serial_tuner(TunerJob(), BatchedOptions(/*jobs=*/1));
  AutoTuner parallel_tuner(TunerJob(), BatchedOptions(/*jobs=*/8));
  const AutoTuner::Result a = serial_tuner.TuneWithBo();
  const AutoTuner::Result b = parallel_tuner.TuneWithBo();

  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].partition_bytes, b.trials[i].partition_bytes) << i;
    EXPECT_EQ(a.trials[i].credit_bytes, b.trials[i].credit_bytes) << i;
    // Bitwise equality, not approximate: the parallel tuner must reproduce
    // the serial result stream exactly.
    EXPECT_EQ(std::memcmp(&a.trials[i].speed, &b.trials[i].speed, sizeof(double)), 0) << i;
  }
  EXPECT_EQ(a.best.partition_bytes, b.best.partition_bytes);
  EXPECT_EQ(a.best.credit_bytes, b.best.credit_bytes);
  EXPECT_EQ(std::memcmp(&a.best_speed, &b.best_speed, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.tuning_cost_sec, &b.tuning_cost_sec, sizeof(double)), 0);
}

TEST(ParallelTuneTest, BatchSizeOneMatchesLegacySequentialTuner) {
  // batch_size = 1 must reproduce the strictly sequential pre-batching tuner:
  // same suggestions, same rng draw order, same trials.
  AutoTunerOptions sequential = BatchedOptions(/*jobs=*/1);
  sequential.batch_size = 1;
  AutoTuner tuner(TunerJob(), sequential);
  const AutoTuner::Result result = tuner.TuneWithBo();

  // Replay the legacy loop by hand against the same search and seed.
  AutoTuner replay(TunerJob(), sequential);
  BayesianOptimizer bo(2, sequential.seed);
  for (size_t i = 0; i < result.trials.size(); ++i) {
    const std::vector<double> x = bo.Suggest();
    const double speed =
        replay.EvaluateObjective(replay.PartitionFromUnit(x[0]), replay.CreditFromUnit(x[1]));
    bo.Observe(x, speed);
    EXPECT_EQ(std::memcmp(&speed, &result.trials[i].speed, sizeof(double)), 0) << i;
  }
}

TEST(ParallelGridTest, ScalingGridIsBitIdenticalAcrossWorkerCounts) {
  const std::vector<bench::ScalingPane> serial =
      bench::ComputeScalingGrid(Vgg16(), /*include_p3=*/true, /*jobs=*/1);
  const std::vector<bench::ScalingPane> parallel =
      bench::ComputeScalingGrid(Vgg16(), /*include_p3=*/true, /*jobs=*/8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t s = 0; s < serial.size(); ++s) {
    EXPECT_EQ(serial[s].setup, parallel[s].setup);
    ASSERT_EQ(serial[s].cells.size(), parallel[s].cells.size());
    for (size_t c = 0; c < serial[s].cells.size(); ++c) {
      const bench::ScalingCell& a = serial[s].cells[c];
      const bench::ScalingCell& b = parallel[s].cells[c];
      EXPECT_EQ(a.gpus, b.gpus);
      EXPECT_EQ(a.has_p3, b.has_p3);
      EXPECT_EQ(std::memcmp(&a.baseline, &b.baseline, sizeof(double)), 0) << s << "," << c;
      EXPECT_EQ(std::memcmp(&a.sched, &b.sched, sizeof(double)), 0) << s << "," << c;
      EXPECT_EQ(std::memcmp(&a.linear, &b.linear, sizeof(double)), 0) << s << "," << c;
      EXPECT_EQ(std::memcmp(&a.p3, &b.p3, sizeof(double)), 0) << s << "," << c;
    }
  }
}

}  // namespace
}  // namespace bsched
