// Validation of the paper's §4.1 analysis against the implementation:
//  - Theorem 1: under ideal conditions (no overhead, fine partitions),
//    priority scheduling is at least as fast as FIFO on arbitrary models and
//    approaches the analytic lower bound of iteration time.
//  - The finite-partition/overhead delay bound: the extra iteration time
//    caused by partition size δ and per-partition overhead θ is at most
//    Σ_i ⌈s_i/δ⌉·θ + θ + 2δ/B for PS (and the analogous bound for
//    all-reduce).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/model/zoo.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

namespace bsched {
namespace {

Setup IdealPsSetup() {
  ::bsched::Setup setup;
  setup.name = "ideal PS";
  setup.framework = Framework::kMxnet;
  setup.arch = ArchType::kPs;
  setup.transport = TransportModel::Ideal();
  return setup;
}

JobConfig IdealJob(const ModelProfile& model, Bandwidth bw) {
  JobConfig job;
  job.model = model;
  job.setup = IdealPsSetup();
  job.num_machines = 1;
  job.gpus_per_machine = 1;
  job.bandwidth = bw;
  job.warmup_iters = 2;
  job.measure_iters = 6;
  return job;
}

// Near-ideal ByteScheduler: fine partitions, ample credit.
JobConfig NearIdealScheduled(JobConfig job) {
  job.mode = SchedMode::kByteScheduler;
  job.partition_bytes = std::max<Bytes>(job.model.MaxTensorBytes() / 256, KiB(4));
  job.credit_bytes = SchedulerConfig::kUnlimited;
  return job;
}

class Theorem1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem1Test, PriorityBeatsFifoOnRandomModels) {
  Rng rng(GetParam());
  SyntheticSpec spec;
  spec.num_layers = static_cast<int>(rng.UniformInt(4, 24));
  spec.min_layer_bytes = KiB(64);
  spec.max_layer_bytes = MiB(32);
  spec.total_compute = SimTime::Millis(static_cast<int64_t>(rng.UniformInt(20, 120)));
  ModelProfile model = SyntheticModel(spec, rng);

  JobConfig job = NearIdealScheduled(IdealJob(model, Bandwidth::Gbps(10)));
  const double priority_speed = RunTrainingJob(job).samples_per_sec;

  JobConfig fifo = job;
  SchedulerConfig cfg = SchedulerConfig::ByteScheduler(job.partition_bytes, job.credit_bytes);
  cfg.policy = SchedulerConfig::Policy::kFifo;
  fifo.sched_override = cfg;
  const double fifo_speed = RunTrainingJob(fifo).samples_per_sec;

  // Theorem 1: priority queuing is optimal, so it can never lose to FIFO
  // (tiny tolerance for partition-boundary rounding).
  EXPECT_GE(priority_speed, fifo_speed * 0.999) << "layers=" << spec.num_layers;
}

INSTANTIATE_TEST_SUITE_P(RandomModels, Theorem1Test,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16));

TEST(Theorem1BoundTest, PriorityApproachesAnalyticLowerBound) {
  // Ideal case: each iteration cannot be shorter than
  //   max(total compute, time to push all bytes, time to pull all bytes)
  // and with infinitely small partitions priority scheduling should approach
  // a small constant factor of it.
  for (const ModelProfile& model : {Vgg16(), ResNet50(), Transformer()}) {
    for (double gbps : {10.0, 40.0}) {
      JobConfig job = NearIdealScheduled(IdealJob(model, Bandwidth::Gbps(gbps)));
      const JobResult r = RunTrainingJob(job);
      const double comm_sec =
          static_cast<double>(model.TotalParamBytes()) / Bandwidth::Gbps(gbps).bytes_per_sec();
      const double lower_bound_sec =
          std::max(model.TotalComputeTime().ToSeconds(), comm_sec);
      EXPECT_GE(r.avg_iter_time.ToSeconds(), lower_bound_sec * 0.999)
          << model.name << " @ " << gbps;
      // Within 40% of the unachievable lower bound: the bound ignores the
      // store-and-forward hops (4 serialization stages per tensor round
      // trip), the aggregation/update stage, and FP/BP phase structure.
      EXPECT_LE(r.avg_iter_time.ToSeconds(), lower_bound_sec * 1.40)
          << model.name << " @ " << gbps;
    }
  }
}

TEST(DelayBoundTest, PsExtraDelayWithinPaperBound) {
  // Compare a run with per-partition overhead θ and partition size δ against
  // the near-ideal run, and check the §4.1 bound.
  const ModelProfile model = Vgg16();
  const Bandwidth bw = Bandwidth::Gbps(10);
  const JobConfig ideal_job = NearIdealScheduled(IdealJob(model, bw));
  const double ideal_iter = RunTrainingJob(ideal_job).avg_iter_time.ToSeconds();

  for (Bytes delta : {MiB(1), MiB(4), MiB(16)}) {
    for (int64_t theta_us : {50, 300}) {
      JobConfig job = IdealJob(model, bw);
      TransportModel transport = TransportModel::Ideal();
      transport.serial_overhead = SimTime::Micros(theta_us);
      job.setup.transport = transport;
      job.mode = SchedMode::kByteScheduler;
      job.partition_bytes = delta;
      job.credit_bytes = SchedulerConfig::kUnlimited;
      const double iter = RunTrainingJob(job).avg_iter_time.ToSeconds();

      // Bound: sum over layers of ceil(s_i/δ)·θ (push) plus the same for the
      // pull direction, plus θ and the pipelining start-up term. The paper's
      // abstract model has 2 serialization stages (2δ/B); this substrate
      // stores-and-forwards through 4 (uplink, shard ingress, shard egress,
      // downlink), so the granularity term is 4δ/B here.
      double bound = 0.0;
      for (const Layer& layer : model.layers) {
        const double parts = std::ceil(static_cast<double>(layer.param_bytes) /
                                       static_cast<double>(delta));
        bound += 2.0 * parts * theta_us * 1e-6;
      }
      bound += theta_us * 1e-6 + 4.0 * static_cast<double>(delta) / bw.bytes_per_sec();

      EXPECT_LE(iter - ideal_iter, bound * 1.001)
          << "delta=" << FormatBytes(delta) << " theta=" << theta_us << "us";
    }
  }
}

TEST(DelayBoundTest, AllReduceExtraDelayWithinPaperBound) {
  const ModelProfile model = Vgg16();
  ::bsched::Setup setup;
  setup.name = "ideal allreduce";
  setup.framework = Framework::kMxnet;
  setup.arch = ArchType::kAllReduce;
  setup.transport = TransportModel::Ideal();

  JobConfig base;
  base.model = model;
  base.setup = setup;
  base.num_machines = 2;
  base.gpus_per_machine = 1;
  base.bandwidth = Bandwidth::Gbps(10);
  base.warmup_iters = 2;
  base.measure_iters = 6;
  base.mode = SchedMode::kByteScheduler;
  base.credit_bytes = SchedulerConfig::kUnlimited;

  JobConfig ideal = base;
  ideal.partition_bytes = std::max<Bytes>(model.MaxTensorBytes() / 256, KiB(4));
  const double ideal_iter = RunTrainingJob(ideal).avg_iter_time.ToSeconds();

  // Finite partitions only (the launch overhead plays θ's role but the
  // backend pipelines it; partitioning granularity is what the bound covers).
  for (Bytes delta : {MiB(8), MiB(64)}) {
    JobConfig job = base;
    job.partition_bytes = delta;
    const double iter = RunTrainingJob(job).avg_iter_time.ToSeconds();
    const double bound = static_cast<double>(delta) / base.bandwidth.bytes_per_sec();
    EXPECT_LE(iter - ideal_iter, bound + 1e-4) << FormatBytes(delta);
  }
}

}  // namespace
}  // namespace bsched
