// Chaos suite for the deterministic fault-injection fabric: plan determinism,
// injector accounting, SchedulerCore timeout/retry recovery, PS push
// retransmission, and scheduler invariants under seeded fault grids.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/comm/ps_backend.h"
#include "src/common/trace.h"
#include "src/core/scheduler_core.h"
#include "src/exec/sweep_runner.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/model/zoo.h"
#include "src/net/net_dynamics.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

// ---- FaultPlan ------------------------------------------------------------

TEST(FaultPlanTest, SameSeedProducesIdenticalPlanAndDraws) {
  const FaultPlanConfig cfg = FaultPlanConfig::Chaos(42);
  const FaultPlan a(cfg);
  const FaultPlan b(cfg);
  ASSERT_EQ(a.episodes().size(), b.episodes().size());
  for (size_t i = 0; i < a.episodes().size(); ++i) {
    EXPECT_EQ(a.episodes()[i].kind, b.episodes()[i].kind);
    EXPECT_EQ(a.episodes()[i].start, b.episodes()[i].start);
    EXPECT_EQ(a.episodes()[i].end, b.episodes()[i].end);
    EXPECT_EQ(a.episodes()[i].salt, b.episodes()[i].salt);
  }
  const uint64_t site = FaultPlan::HashSite("worker0.up");
  for (int ms = 0; ms < 600; ms += 7) {
    const SimTime now = SimTime::Millis(ms);
    EXPECT_EQ(a.DropMessage(site, ms, now), b.DropMessage(site, ms, now));
    EXPECT_EQ(a.ExtraLatency(site, now), b.ExtraLatency(site, now));
    EXPECT_EQ(a.ComputeFactor(1, now), b.ComputeFactor(1, now));
    EXPECT_EQ(a.ShardFactor(0, now), b.ShardFactor(0, now));
  }
}

TEST(FaultPlanTest, ChaosEpisodesMatchConfigAndFitHorizon) {
  const FaultPlanConfig cfg = FaultPlanConfig::Chaos(3);
  const FaultPlan plan(cfg);
  const int expected = cfg.drop_episodes + cfg.latency_episodes + cfg.link_down_episodes +
                       cfg.straggler_episodes + cfg.shard_slow_episodes;
  EXPECT_EQ(static_cast<int>(plan.episodes().size()), expected);
  for (const FaultEpisode& ep : plan.episodes()) {
    EXPECT_GE(ep.start.nanos(), 0);
    EXPECT_LT(ep.start, ep.end);
    EXPECT_LE(ep.end, cfg.horizon);
  }
}

TEST(FaultPlanTest, QuietAfterHorizon) {
  const FaultPlan plan(FaultPlanConfig::Chaos(11));
  const SimTime later = plan.config().horizon + SimTime::Millis(1);
  const uint64_t site = FaultPlan::HashSite("shard1.out");
  for (uint64_t msg = 0; msg < 200; ++msg) {
    EXPECT_FALSE(plan.DropMessage(site, msg, later));
  }
  EXPECT_EQ(plan.ExtraLatency(site, later), SimTime());
  for (int w = 0; w < 8; ++w) {
    EXPECT_EQ(plan.ComputeFactor(w, later), 1.0);
    EXPECT_EQ(plan.ShardFactor(w, later), 1.0);
  }
}

TEST(FaultPlanTest, DifferentSeedsProduceDifferentPlans) {
  const FaultPlan a(FaultPlanConfig::Chaos(1));
  const FaultPlan b(FaultPlanConfig::Chaos(2));
  ASSERT_EQ(a.episodes().size(), b.episodes().size());
  bool any_difference = false;
  for (size_t i = 0; i < a.episodes().size(); ++i) {
    any_difference |= a.episodes()[i].start != b.episodes()[i].start;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlanTest, DefaultConfigInjectsNothing) {
  const FaultPlanConfig cfg;  // zero episodes of every kind
  EXPECT_TRUE(cfg.empty());
  const FaultPlan plan(cfg);
  EXPECT_TRUE(plan.episodes().empty());
  const uint64_t site = FaultPlan::HashSite("worker0.up");
  for (int ms = 0; ms < 100; ms += 3) {
    EXPECT_FALSE(plan.DropMessage(site, ms, SimTime::Millis(ms)));
    EXPECT_EQ(plan.ExtraLatency(site, SimTime::Millis(ms)), SimTime());
    EXPECT_EQ(plan.ComputeFactor(0, SimTime::Millis(ms)), 1.0);
  }
}

// ---- FaultInjector --------------------------------------------------------

// One certain-drop window covering [0, len) on every site.
FaultPlanConfig CertainDropPlan(SimTime len) {
  FaultPlanConfig cfg;
  cfg.seed = 5;
  cfg.horizon = len;
  cfg.site_prob = 1.0;
  cfg.drop_episodes = 1;
  cfg.drop_prob = 1.0;
  cfg.drop_len = len;
  return cfg;
}

TEST(FaultInjectorTest, CountsDropsAndMessages) {
  Simulator sim;
  FaultInjector faults(CertainDropPlan(SimTime::Millis(10)), &sim);
  const uint64_t site = FaultPlan::HashSite("worker0.up");
  const FaultInjector::MessageFault fate = faults.OnMessageSend(site, SimTime());
  EXPECT_TRUE(fate.drop);
  EXPECT_EQ(faults.stats().messages_seen, 1u);
  EXPECT_EQ(faults.stats().drops_injected, 1u);
  EXPECT_TRUE(faults.stats().any_injected());
}

TEST(FaultInjectorTest, ExportsPlanToTrace) {
  Simulator sim;
  TraceRecorder trace;
  FaultInjector faults(FaultPlanConfig::Chaos(1), &sim, &trace);
  const std::vector<std::string> tracks = trace.Tracks();
  bool has_plan_track = false;
  for (const std::string& track : tracks) {
    has_plan_track |= track == "faults/plan";
  }
  EXPECT_TRUE(has_plan_track);
}

// ---- SchedulerCore recovery ----------------------------------------------

// Backend that swallows the first `fail_first` start callbacks (the message
// is "lost"), keeping them around so tests can fire them late.
class FlakyBackend : public CommBackend {
 public:
  explicit FlakyBackend(int fail_first) : fail_first_(fail_first) {}

  void Start(const SubCommTask& subtask, std::function<void()> on_finish) override {
    started.push_back(subtask);
    if (static_cast<int>(started.size()) <= fail_first_) {
      swallowed.push_back(std::move(on_finish));
      return;
    }
    pending.push_back(std::move(on_finish));
  }

  void FinishOldest() {
    ASSERT_FALSE(pending.empty());
    auto cb = std::move(pending.front());
    pending.pop_front();
    cb();
  }

  std::vector<SubCommTask> started;
  std::vector<std::function<void()>> swallowed;
  std::deque<std::function<void()>> pending;

 private:
  int fail_first_;
};

SchedulerConfig RetryConfig(Bytes credit, SimTime timeout, double backoff = 2.0,
                            int max_retries = 12) {
  SchedulerConfig cfg = SchedulerConfig::ByteScheduler(SchedulerConfig::kNoPartition, credit);
  cfg.retry.timeout = timeout;
  cfg.retry.backoff = backoff;
  cfg.retry.max_retries = max_retries;
  return cfg;
}

CommTaskDesc PushDesc(int layer, Bytes bytes) {
  CommTaskDesc desc;
  desc.layer = layer;
  desc.tensor_bytes = bytes;
  desc.type = CommOpType::kPush;
  desc.name = "t" + std::to_string(layer);
  return desc;
}

TEST(CoreRecoveryTest, TimeoutRestoresCreditAndRetries) {
  Simulator sim;
  FlakyBackend backend(/*fail_first=*/1);
  SchedulerCore core(RetryConfig(MiB(1), SimTime::Millis(10)), &backend, 0, &sim);

  bool finished = false;
  CommTaskDesc desc = PushDesc(0, KiB(256));
  desc.on_finish = [&] { finished = true; };
  core.NotifyReady(core.Enqueue(std::move(desc)));
  ASSERT_EQ(backend.started.size(), 1u);
  EXPECT_EQ(core.credit(), core.credit_cap() - KiB(256));

  // The first attempt's message was lost; the timeout requeues and restarts.
  sim.Run(SimTime::Millis(10));
  EXPECT_EQ(core.timeouts_fired(), 1u);
  EXPECT_EQ(core.retries(), 1u);
  ASSERT_EQ(backend.started.size(), 2u);
  EXPECT_EQ(core.credit(), core.credit_cap() - KiB(256));  // re-charged for attempt 2
  EXPECT_FALSE(finished);

  backend.FinishOldest();
  sim.Run();  // drains the cancelled attempt-2 timer
  EXPECT_TRUE(finished);
  EXPECT_EQ(core.credit(), core.credit_cap());
  EXPECT_EQ(core.subtasks_in_flight(), 0u);
  EXPECT_EQ(core.tasks_finished(), 1u);
}

TEST(CoreRecoveryTest, LateCompletionOfTimedOutAttemptIsIgnored) {
  Simulator sim;
  FlakyBackend backend(/*fail_first=*/1);
  SchedulerCore core(RetryConfig(MiB(1), SimTime::Millis(10)), &backend, 0, &sim);

  int finish_count = 0;
  CommTaskDesc desc = PushDesc(0, KiB(256));
  desc.on_finish = [&] { ++finish_count; };
  core.NotifyReady(core.Enqueue(std::move(desc)));
  sim.Run(SimTime::Millis(10));  // attempt 1 times out, attempt 2 in flight
  ASSERT_EQ(backend.started.size(), 2u);

  // The "lost" message turns out merely delayed: its completion must not
  // finish the partition or leak credit.
  ASSERT_EQ(backend.swallowed.size(), 1u);
  backend.swallowed[0]();
  EXPECT_EQ(core.late_completions(), 1u);
  EXPECT_EQ(finish_count, 0);
  EXPECT_EQ(core.credit(), core.credit_cap() - KiB(256));

  backend.FinishOldest();
  sim.Run();
  EXPECT_EQ(finish_count, 1);
  EXPECT_EQ(core.credit(), core.credit_cap());
}

TEST(CoreRecoveryTest, AbandonsAfterRetryBudgetAndReportsSubtask) {
  Simulator sim;
  FlakyBackend backend(/*fail_first=*/1000);  // nothing ever completes
  SchedulerConfig cfg = RetryConfig(MiB(1), SimTime::Millis(1), /*backoff=*/1.0,
                                    /*max_retries=*/2);
  std::vector<SubCommTask> abandoned;
  cfg.retry.on_abandon = [&](const SubCommTask& subtask) { abandoned.push_back(subtask); };
  SchedulerCore core(cfg, &backend, 0, &sim);

  bool finished = false;
  CommTaskDesc desc = PushDesc(3, KiB(64));
  desc.on_finish = [&] { finished = true; };
  core.NotifyReady(core.Enqueue(std::move(desc)));
  sim.Run();

  EXPECT_EQ(backend.started.size(), 3u);  // initial + 2 retries
  EXPECT_EQ(core.timeouts_fired(), 3u);
  EXPECT_EQ(core.retries(), 2u);
  EXPECT_EQ(core.subtasks_abandoned(), 1u);
  ASSERT_EQ(abandoned.size(), 1u);
  EXPECT_EQ(abandoned[0].layer, 3);
  EXPECT_FALSE(finished);
  EXPECT_EQ(core.credit(), core.credit_cap());  // restored even on abandon
  EXPECT_EQ(core.subtasks_in_flight(), 0u);
}

TEST(CoreRecoveryTest, RetryKeepsOriginalPriorityOverNewerArrivals) {
  Simulator sim;
  FlakyBackend backend(/*fail_first=*/1);
  // Credit admits exactly one 256 KiB subtask at a time.
  SchedulerCore core(RetryConfig(KiB(256), SimTime::Millis(10)), &backend, 0, &sim);

  core.NotifyReady(core.Enqueue(PushDesc(0, KiB(256))));
  core.NotifyReady(core.Enqueue(PushDesc(1, KiB(256))));  // queued behind layer 0
  ASSERT_EQ(backend.started.size(), 1u);
  EXPECT_EQ(backend.started[0].layer, 0);

  sim.Run(SimTime::Millis(10));  // layer 0 times out and is requeued
  // The retry must beat the younger layer-1 subtask: original priority key.
  ASSERT_EQ(backend.started.size(), 2u);
  EXPECT_EQ(backend.started[1].layer, 0);

  backend.FinishOldest();  // layer 0 retry completes; layer 1 admitted
  ASSERT_EQ(backend.started.size(), 3u);
  EXPECT_EQ(backend.started[2].layer, 1);
  backend.FinishOldest();
  sim.Run();
  EXPECT_EQ(core.credit(), core.credit_cap());
  EXPECT_EQ(core.tasks_finished(), 2u);
}

TEST(CoreRecoveryTest, DisabledRecoveryKeepsLegacyBehaviour) {
  FlakyBackend backend(/*fail_first=*/0);
  // No Simulator, no retry policy: the pre-recovery code path.
  SchedulerCore core(SchedulerConfig::ByteScheduler(SchedulerConfig::kNoPartition, MiB(1)),
                     &backend);
  bool finished = false;
  CommTaskDesc desc = PushDesc(0, KiB(128));
  desc.on_finish = [&] { finished = true; };
  core.NotifyReady(core.Enqueue(std::move(desc)));
  backend.FinishOldest();
  EXPECT_TRUE(finished);
  EXPECT_EQ(core.timeouts_fired(), 0u);
  EXPECT_EQ(core.subtasks_in_flight(), 0u);
}

// ---- PS backend push retransmission ---------------------------------------

TEST(PsRetransmitTest, LostPushDataLegIsRetransmittedAndDeduped) {
  Simulator sim;
  // Drops are certain inside [0, 1 ms); the 2 ms ack timeout retransmits
  // after the window, so exactly one retransmission succeeds.
  FaultInjector faults(CertainDropPlan(SimTime::Millis(1)), &sim);
  PsConfig cfg;
  cfg.num_workers = 1;
  cfg.num_shards = 1;
  cfg.faults = &faults;
  cfg.push_ack_timeout = SimTime::Millis(2);
  PsBackend ps(&sim, cfg);

  int aggregations = 0;
  ps.AddAggregationListener([&](int64_t, int, int) { ++aggregations; });

  SubCommTask push;
  push.worker = 0;
  push.layer = 0;
  push.tensor_id = 0;
  push.bytes = KiB(64);
  push.type = CommOpType::kPush;
  bool push_acked = false;
  ps.Start(push, [&] { push_acked = true; });
  sim.Run();

  EXPECT_TRUE(push_acked);  // sender flush succeeded despite the lost data leg
  EXPECT_EQ(ps.push_retransmits(), 1u);
  EXPECT_EQ(faults.stats().backend_retransmits, 1u);
  EXPECT_EQ(aggregations, 1);  // aggregated exactly once
  EXPECT_NE(ps.DebugString().find("unacked_pushes=0"), std::string::npos);

  // The recovered parameters are pullable.
  SubCommTask pull = push;
  pull.type = CommOpType::kPull;
  bool pulled = false;
  ps.Start(pull, [&] { pulled = true; });
  sim.Run();
  EXPECT_TRUE(pulled);
}

// ---- chaos invariant grid -------------------------------------------------

// Compressed chaos plan matched to the harness's ~10 ms of simulated traffic.
FaultPlanConfig HarnessChaos(uint64_t seed) {
  FaultPlanConfig cfg;
  cfg.seed = seed;
  cfg.horizon = SimTime::Millis(10);
  cfg.site_prob = 0.7;
  cfg.drop_episodes = 3;
  cfg.drop_prob = 0.4;
  cfg.drop_len = SimTime::Millis(2);
  cfg.latency_episodes = 3;
  cfg.latency_spike = SimTime::Micros(200);
  cfg.latency_len = SimTime::Millis(3);
  cfg.link_down_episodes = 2;
  cfg.link_down_len = SimTime::Millis(1);
  cfg.shard_slow_episodes = 2;
  cfg.shard_slow_factor = 4.0;
  cfg.shard_slow_len = SimTime::Millis(2);
  cfg.retry_timeout = SimTime::Millis(2);
  return cfg;
}

struct HarnessOutcome {
  int pulls_finished = 0;
  FaultStats stats;
};

// Two Cores pushing/pulling through a real PsBackend under a fault plan.
// Pull partitions are released by the shard-side aggregation listener, as in
// the real runtime. Verifies the scheduler invariants on drain.
HarnessOutcome RunPsChaosHarness(const FaultPlanConfig& plan_cfg, int rounds) {
  constexpr int kWorkers = 2;
  constexpr int kLayers = 4;
  const Bytes bytes = KiB(300);

  Simulator sim;
  FaultInjector faults(plan_cfg, &sim);
  PsConfig ps_cfg;
  ps_cfg.num_workers = kWorkers;
  ps_cfg.num_shards = 2;
  ps_cfg.synchronous = true;
  ps_cfg.faults = &faults;
  ps_cfg.push_ack_timeout = plan_cfg.retry_timeout;
  ps_cfg.retry_backoff = plan_cfg.retry_backoff;
  ps_cfg.max_push_retries = plan_cfg.max_retries;
  PsBackend ps(&sim, ps_cfg);

  SchedulerConfig sched = SchedulerConfig::ByteScheduler(KiB(128), KiB(512));
  sched.retry.timeout = plan_cfg.retry_timeout;
  sched.retry.backoff = plan_cfg.retry_backoff;
  sched.retry.max_retries = plan_cfg.max_retries;
  std::vector<std::unique_ptr<SchedulerCore>> cores;
  for (int w = 0; w < kWorkers; ++w) {
    cores.push_back(std::make_unique<SchedulerCore>(sched, &ps, w, &sim, &faults));
  }

  std::vector<std::vector<CommTaskId>> pull_ids(kWorkers,
                                                std::vector<CommTaskId>(kLayers, kInvalidCommTask));
  ps.AddAggregationListener([&](int64_t tensor_id, int partition, int w) {
    const CommTaskId id = pull_ids[w][tensor_id];
    if (id != kInvalidCommTask) {
      cores[w]->NotifyReadyPartition(id, partition);
    }
  });

  HarnessOutcome out;
  int finished_this_round = 0;
  std::function<void(int)> start_round = [&](int round) {
    if (round == rounds) {
      return;
    }
    finished_this_round = 0;
    for (int w = 0; w < kWorkers; ++w) {
      for (int layer = 0; layer < kLayers; ++layer) {
        CommTaskDesc pull;
        pull.worker = w;
        pull.layer = layer;
        pull.tensor_bytes = bytes;
        pull.type = CommOpType::kPull;
        pull.tensor_id = layer;
        pull.name = "t" + std::to_string(layer) + ".pull";
        pull.on_finish = [&, round] {
          ++out.pulls_finished;
          if (++finished_this_round == kWorkers * kLayers) {
            start_round(round + 1);
          }
        };
        pull_ids[w][layer] = cores[w]->Enqueue(std::move(pull));

        CommTaskDesc push;
        push.worker = w;
        push.layer = layer;
        push.tensor_bytes = bytes;
        push.type = CommOpType::kPush;
        push.tensor_id = layer;
        push.name = "t" + std::to_string(layer) + ".push";
        cores[w]->NotifyReady(cores[w]->Enqueue(std::move(push)));
      }
    }
  };
  start_round(0);
  sim.Run();

  EXPECT_EQ(out.pulls_finished, rounds * kWorkers * kLayers);
  for (const auto& core : cores) {
    // Credit conservation: everything charged was restored on finish or
    // timeout, and nothing is left queued or in flight.
    EXPECT_EQ(core->credit(), core->credit_cap()) << core->DebugString();
    EXPECT_EQ(core->queue_length(), 0u) << core->DebugString();
    EXPECT_EQ(core->subtasks_in_flight(), 0u) << core->DebugString();
    EXPECT_EQ(core->subtasks_abandoned(), 0u) << core->DebugString();
  }
  EXPECT_TRUE(sim.Empty());
  EXPECT_NE(ps.DebugString().find("unacked_pushes=0"), std::string::npos);
  out.stats = faults.stats();
  return out;
}

// The seed x plan grids run complete, independent harness instances, so the
// chaos suite sweeps them concurrently (results collected in seed order).

TEST(ChaosInvariantTest, MixedPlansAcrossTwentySeeds) {
  SweepRunner runner;
  const std::vector<HarnessOutcome> outcomes = runner.ParallelFor(20, [](size_t i) {
    SCOPED_TRACE("seed=" + std::to_string(i + 1));
    return RunPsChaosHarness(HarnessChaos(i + 1), /*rounds=*/40);
  });
  uint64_t total_injected = 0;
  uint64_t total_recoveries = 0;
  for (const HarnessOutcome& out : outcomes) {
    total_injected += out.stats.drops_injected + out.stats.delays_injected +
                      out.stats.shard_slowdowns;
    total_recoveries += out.stats.core_timeouts + out.stats.backend_retransmits;
  }
  // The grid as a whole must actually exercise injection and recovery.
  EXPECT_GT(total_injected, 0u);
  EXPECT_GT(total_recoveries, 0u);
}

FaultPlanConfig DropHeavyPlan(uint64_t seed) {
  FaultPlanConfig cfg;
  cfg.seed = seed;
  cfg.horizon = SimTime::Millis(10);
  cfg.site_prob = 1.0;
  cfg.drop_episodes = 4;
  cfg.drop_prob = 0.8;
  cfg.drop_len = SimTime::Millis(2);
  cfg.retry_timeout = SimTime::Millis(2);
  return cfg;
}

TEST(ChaosInvariantTest, DropHeavyPlan) {
  SweepRunner runner;
  const std::vector<HarnessOutcome> outcomes = runner.ParallelFor(5, [](size_t i) {
    SCOPED_TRACE("seed=" + std::to_string(100 + i));
    return RunPsChaosHarness(DropHeavyPlan(100 + i), /*rounds=*/40);
  });
  uint64_t total_drops = 0;
  for (const HarnessOutcome& out : outcomes) {
    total_drops += out.stats.drops_injected;
  }
  EXPECT_GT(total_drops, 0u);
}

TEST(ChaosInvariantTest, LatencyAndLinkDownOnlyPlan) {
  SweepRunner runner;
  const std::vector<HarnessOutcome> outcomes = runner.ParallelFor(5, [](size_t i) {
    SCOPED_TRACE("seed=" + std::to_string(200 + i));
    FaultPlanConfig cfg;
    cfg.seed = 200 + i;
    cfg.horizon = SimTime::Millis(10);
    cfg.site_prob = 1.0;
    cfg.latency_episodes = 4;
    cfg.latency_spike = SimTime::Micros(400);
    cfg.latency_len = SimTime::Millis(3);
    cfg.link_down_episodes = 3;
    cfg.link_down_len = SimTime::Millis(1);
    cfg.retry_timeout = SimTime::Millis(4);
    return RunPsChaosHarness(cfg, /*rounds=*/40);
  });
  for (const HarnessOutcome& out : outcomes) {
    EXPECT_EQ(out.stats.drops_injected, 0u);
  }
}

TEST(ChaosInvariantTest, ParallelGridMatchesSerialGrid) {
  constexpr size_t kSeeds = 6;
  const auto sweep = [](int jobs) {
    SweepRunner runner(jobs);
    return runner.ParallelFor(kSeeds, [](size_t i) {
      return RunPsChaosHarness(HarnessChaos(i + 1), /*rounds=*/20);
    });
  };
  const std::vector<HarnessOutcome> serial = sweep(1);
  const std::vector<HarnessOutcome> parallel = sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].pulls_finished, parallel[i].pulls_finished) << i;
    EXPECT_EQ(serial[i].stats.messages_seen, parallel[i].stats.messages_seen) << i;
    EXPECT_EQ(serial[i].stats.drops_injected, parallel[i].stats.drops_injected) << i;
    EXPECT_EQ(serial[i].stats.delays_injected, parallel[i].stats.delays_injected) << i;
    EXPECT_EQ(serial[i].stats.core_timeouts, parallel[i].stats.core_timeouts) << i;
    EXPECT_EQ(serial[i].stats.backend_retransmits, parallel[i].stats.backend_retransmits) << i;
  }
}

// ---- end-to-end chaos jobs ------------------------------------------------

JobConfig ChaosJobConfig(const Setup& setup, uint64_t seed, bool ps_async = false) {
  JobConfig job;
  job.model = Vgg16();
  job.setup = setup;
  job.mode = SchedMode::kByteScheduler;
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  job.warmup_iters = 1;
  job.measure_iters = 2;
  job.ps_async = ps_async;
  const TunedParams tuned =
      DefaultTunedParams(job.model, setup.arch, setup.transport, job.bandwidth);
  job.partition_bytes = tuned.partition_bytes;
  job.credit_bytes = tuned.credit_bytes;
  FaultPlanConfig chaos = FaultPlanConfig::Chaos(seed);
  chaos.horizon = SimTime::Millis(150);
  job.chaos = chaos;
  return job;
}

void ExpectRecovered(const JobResult& result) {
  EXPECT_GT(result.samples_per_sec, 0.0);
  EXPECT_EQ(result.subtasks_abandoned, 0u);
  EXPECT_GT(result.fault_stats.messages_seen, 0u);
}

TEST(ChaosEndToEndTest, MxnetPsSynchronous) {
  const JobResult result = RunTrainingJob(ChaosJobConfig(Setup::MxnetPsRdma(), 1));
  ExpectRecovered(result);
  EXPECT_TRUE(result.fault_stats.any_injected());
}

TEST(ChaosEndToEndTest, MxnetPsAsynchronous) {
  const JobResult result =
      RunTrainingJob(ChaosJobConfig(Setup::MxnetPsRdma(), 2, /*ps_async=*/true));
  ExpectRecovered(result);
}

TEST(ChaosEndToEndTest, TensorFlowBarrierPs) {
  const JobResult result = RunTrainingJob(ChaosJobConfig(Setup::TensorFlowPsTcp(), 3));
  ExpectRecovered(result);
}

TEST(ChaosEndToEndTest, PyTorchAllReduce) {
  uint64_t drops = 0;
  uint64_t timeouts = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const JobResult result = RunTrainingJob(ChaosJobConfig(Setup::PyTorchNcclTcp(), seed));
    ExpectRecovered(result);
    drops += result.fault_stats.drops_injected;
    timeouts += result.fault_stats.core_timeouts;
  }
  // Every dropped collective launch must be recovered by a Core timeout
  // (all-reduce has no backend-level retransmission).
  EXPECT_GE(timeouts, drops);
}

TEST(ChaosEndToEndTest, FaultTracksAppearInTrace) {
  TraceRecorder trace;
  JobConfig job = ChaosJobConfig(Setup::MxnetPsRdma(), 4);
  job.trace = &trace;
  const JobResult result = RunTrainingJob(job);
  ExpectRecovered(result);
  bool has_plan = false;
  bool has_injected = false;
  for (const std::string& track : trace.Tracks()) {
    has_plan |= track == "faults/plan";
    has_injected |= track == "faults/injected";
  }
  EXPECT_TRUE(has_plan);
  EXPECT_EQ(has_injected, result.fault_stats.any_injected());
}

// ---- determinism & zero-cost regressions ----------------------------------

TEST(ChaosDeterminismTest, SameSeedSamePlanIsBitIdentical) {
  const JobConfig job = ChaosJobConfig(Setup::MxnetPsRdma(), 7);
  const JobResult a = RunTrainingJob(job);
  const JobResult b = RunTrainingJob(job);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.avg_iter_time, b.avg_iter_time);
  ASSERT_EQ(a.iter_end_times.size(), b.iter_end_times.size());
  for (size_t i = 0; i < a.iter_end_times.size(); ++i) {
    EXPECT_EQ(a.iter_end_times[i], b.iter_end_times[i]);
  }
  EXPECT_EQ(a.fault_stats.drops_injected, b.fault_stats.drops_injected);
  EXPECT_EQ(a.fault_stats.core_timeouts, b.fault_stats.core_timeouts);
  EXPECT_EQ(a.fault_stats.backend_retransmits, b.fault_stats.backend_retransmits);
}

TEST(ChaosZeroCostTest, EmptyPlanMatchesFaultFreeRunExactly) {
  JobConfig job = ChaosJobConfig(Setup::MxnetPsRdma(), 1);
  job.chaos.reset();
  const JobResult plain = RunTrainingJob(job);

  // Armed but never-firing fault fabric: empty plan, recovery timers enabled
  // with a timeout no healthy subtask reaches. Must be event-for-event equal.
  FaultPlanConfig empty;
  empty.retry_timeout = SimTime::Millis(250);
  job.chaos = empty;
  const JobResult armed = RunTrainingJob(job);

  EXPECT_EQ(plain.sim_events, armed.sim_events);
  EXPECT_EQ(plain.avg_iter_time, armed.avg_iter_time);
  ASSERT_EQ(plain.iter_end_times.size(), armed.iter_end_times.size());
  for (size_t i = 0; i < plain.iter_end_times.size(); ++i) {
    EXPECT_EQ(plain.iter_end_times[i], armed.iter_end_times[i]);
  }
  EXPECT_FALSE(armed.fault_stats.any_injected());
  EXPECT_EQ(armed.fault_stats.core_timeouts, 0u);
  EXPECT_GT(armed.fault_stats.messages_seen, 0u);  // the hooks did run
}

// ---- sharded chaos determinism --------------------------------------------
//
// Under the sharded coordinator a retransmission's timeout timer lives on the
// worker's shard while the ack it races lives on the PS shard, so fault
// recovery regularly crosses the lookahead barrier. The injected plan, every
// recovery counter, and the full timing trajectory must still be independent
// of the shard count.

TEST(ChaosShardBoundaryTest, RecoveryIsBitIdenticalAcrossShardCounts) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    JobConfig job = ChaosJobConfig(Setup::MxnetPsRdma(), seed);
    job.shards = 1;
    const JobResult one = RunTrainingJob(job);
    job.shards = 2;
    const JobResult two = RunTrainingJob(job);

    ExpectRecovered(one);
    ExpectRecovered(two);
    EXPECT_EQ(one.sim_events, two.sim_events);
    EXPECT_EQ(one.avg_iter_time, two.avg_iter_time);
    ASSERT_EQ(one.iter_end_times.size(), two.iter_end_times.size());
    for (size_t i = 0; i < one.iter_end_times.size(); ++i) {
      EXPECT_EQ(one.iter_end_times[i], two.iter_end_times[i]) << "iter " << i;
    }
    const FaultStats& a = one.fault_stats;
    const FaultStats& b = two.fault_stats;
    EXPECT_EQ(a.messages_seen, b.messages_seen);
    EXPECT_EQ(a.drops_injected, b.drops_injected);
    EXPECT_EQ(a.delays_injected, b.delays_injected);
    EXPECT_EQ(a.delay_injected_total, b.delay_injected_total);
    EXPECT_EQ(a.compute_slowdowns, b.compute_slowdowns);
    EXPECT_EQ(a.shard_slowdowns, b.shard_slowdowns);
    EXPECT_EQ(a.core_timeouts, b.core_timeouts);
    EXPECT_EQ(a.core_retries, b.core_retries);
    EXPECT_EQ(a.core_late_completions, b.core_late_completions);
    EXPECT_EQ(a.core_abandoned, b.core_abandoned);
    EXPECT_EQ(a.backend_retransmits, b.backend_retransmits);
    EXPECT_EQ(a.credit_restored, b.credit_restored);
  }
}

TEST(ChaosShardBoundaryTest, TimeSeriesCsvIsByteIdenticalAcrossShardCounts) {
  // The sampling tick chains interleave with retransmission recovery that
  // crosses the lookahead barrier; the exported series — including the
  // per-window sketches that see the recovery spikes — must still not depend
  // on the shard count.
  for (const uint64_t seed : {uint64_t{1}, uint64_t{3}}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto series_csv = [seed](int shards) {
      MetricsRegistry metrics;
      TimeSeriesRecorder recorder(&metrics, SimTime::Micros(200));
      JobConfig job = ChaosJobConfig(Setup::MxnetPsRdma(), seed);
      job.shards = shards;
      job.metrics = &metrics;
      job.timeseries = &recorder;
      RunTrainingJob(job);
      return recorder.ToCsv();
    };
    const std::string one = series_csv(1);
    ASSERT_FALSE(one.empty());
    EXPECT_NE(one.find(",w0,"), std::string::npos);
    EXPECT_EQ(one, series_csv(2));
  }
}

// ---- chaos on a dynamic-network fabric ------------------------------------
//
// The dynamic fabric (src/net/net_dynamics.h) adds volatile link schedules,
// cross traffic and AIMD rate control on top of the same links the fault
// fabric perturbs. Both derive every decision from (seed, site, time), so
// stacking them must not cost any determinism: recovery counters, timings,
// the metrics snapshot and the sampled time series stay byte-identical at
// any shard count.

NetDynamicsConfig VolatileFabric(uint64_t seed) {
  NetDynamicsConfig dyn;
  dyn.seed = seed;
  dyn.volatility_amplitude = 0.5;
  dyn.volatility_period = SimTime::Millis(2);
  dyn.cross_flows = 2;
  dyn.cross_load = 0.4;
  dyn.down_scale = 0.8;
  dyn.aimd.enable = true;
  return dyn;
}

TEST(ChaosShardBoundaryTest, VolatileFabricRecoveryIsBitIdenticalAcrossShardCounts) {
  struct Run {
    JobResult result;
    std::string metrics_json;
    std::string series_csv;
  };
  for (const uint64_t seed : {uint64_t{1}, uint64_t{3}}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto run = [seed](int shards) {
      Run out;
      MetricsRegistry metrics;
      TimeSeriesRecorder recorder(&metrics, SimTime::Micros(200));
      JobConfig job = ChaosJobConfig(Setup::MxnetPsRdma(), seed);
      job.dynamics = VolatileFabric(seed);
      job.shards = shards;
      job.metrics = &metrics;
      job.timeseries = &recorder;
      out.result = RunTrainingJob(job);
      std::ostringstream json;
      metrics.Snapshot().WriteJson(json);
      out.metrics_json = json.str();
      out.series_csv = recorder.ToCsv();
      return out;
    };
    const Run one = run(1);
    ExpectRecovered(one.result);
    ASSERT_FALSE(one.series_csv.empty());
    // The dynamic fabric was actually live: the recorder sampled the
    // per-link effective-rate gauges the new layer exports.
    EXPECT_NE(one.series_csv.find(".up.rate_bps,"), std::string::npos);
    for (const int shards : {2, 8}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      const Run other = run(shards);
      const JobResult& a = one.result;
      const JobResult& b = other.result;
      EXPECT_EQ(a.sim_events, b.sim_events);
      EXPECT_EQ(a.avg_iter_time, b.avg_iter_time);
      ASSERT_EQ(a.iter_end_times.size(), b.iter_end_times.size());
      for (size_t i = 0; i < a.iter_end_times.size(); ++i) {
        EXPECT_EQ(a.iter_end_times[i], b.iter_end_times[i]) << "iter " << i;
      }
      EXPECT_EQ(a.fault_stats.messages_seen, b.fault_stats.messages_seen);
      EXPECT_EQ(a.fault_stats.drops_injected, b.fault_stats.drops_injected);
      EXPECT_EQ(a.fault_stats.delays_injected, b.fault_stats.delays_injected);
      EXPECT_EQ(a.fault_stats.delay_injected_total, b.fault_stats.delay_injected_total);
      EXPECT_EQ(a.fault_stats.core_timeouts, b.fault_stats.core_timeouts);
      EXPECT_EQ(a.fault_stats.core_retries, b.fault_stats.core_retries);
      EXPECT_EQ(a.fault_stats.backend_retransmits, b.fault_stats.backend_retransmits);
      EXPECT_EQ(a.fault_stats.credit_restored, b.fault_stats.credit_restored);
      EXPECT_EQ(a.rate_ctrl_decreases, b.rate_ctrl_decreases);
      EXPECT_EQ(a.rate_ctrl_increases, b.rate_ctrl_increases);
      EXPECT_EQ(a.link_repaces, b.link_repaces);
      EXPECT_EQ(one.metrics_json, other.metrics_json);
      EXPECT_EQ(one.series_csv, other.series_csv);
    }
  }
}

// ---- fault / rate-model composition ---------------------------------------
//
// A link-down fault is "rate 0 for the outage window". FaultPlan implements
// it as a delivery deferral (OutageDeferral) applied in Link::FinishSend —
// one code path shared by the legacy fixed-rate links and the RateModel
// links, so arming an identity-rate dynamic fabric must reproduce the
// discrete-fault goldens event for event.

FaultPlanConfig LinkDownOnlyPlan(uint64_t seed) {
  FaultPlanConfig plan;
  plan.seed = seed;
  plan.horizon = SimTime::Millis(150);
  plan.link_down_episodes = 4;
  plan.link_down_len = SimTime::Millis(8);
  return plan;
}

TEST(FaultDynamicsComposeTest, LinkDownGoldensSurviveIdentityRateModels) {
  for (const uint64_t seed : {uint64_t{7}, uint64_t{11}}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    JobConfig job = ChaosJobConfig(Setup::MxnetPsRdma(), seed);
    job.chaos = LinkDownOnlyPlan(seed);
    const JobResult golden = RunTrainingJob(job);

    NetDynamicsConfig idle;  // identity schedules on every link
    idle.force_enable = true;
    job.dynamics = idle;
    const JobResult composed = RunTrainingJob(job);

    EXPECT_EQ(golden.sim_events, composed.sim_events);
    EXPECT_EQ(golden.avg_iter_time, composed.avg_iter_time);
    ASSERT_EQ(golden.iter_end_times.size(), composed.iter_end_times.size());
    for (size_t i = 0; i < golden.iter_end_times.size(); ++i) {
      EXPECT_EQ(golden.iter_end_times[i], composed.iter_end_times[i]) << "iter " << i;
    }
    EXPECT_EQ(golden.fault_stats.messages_seen, composed.fault_stats.messages_seen);
    EXPECT_EQ(golden.fault_stats.delays_injected, composed.fault_stats.delays_injected);
    EXPECT_EQ(golden.fault_stats.delay_injected_total,
              composed.fault_stats.delay_injected_total);
    EXPECT_EQ(golden.fault_stats.core_timeouts, composed.fault_stats.core_timeouts);
    EXPECT_EQ(golden.fault_stats.core_retries, composed.fault_stats.core_retries);
    EXPECT_EQ(golden.fault_stats.backend_retransmits,
              composed.fault_stats.backend_retransmits);
    EXPECT_EQ(golden.fault_stats.credit_restored, composed.fault_stats.credit_restored);
    EXPECT_EQ(composed.link_repaces, 0u);  // identity models never re-pace
  }
}

TEST(FaultDynamicsComposeTest, LinkDownRecoversOnAVolatileFabric) {
  // Outage deferrals stack on top of volatile rate schedules: the run must
  // still recover every deferred delivery, and a replay must be
  // bit-identical — the composed plan is still a pure function of the seeds.
  JobConfig job = ChaosJobConfig(Setup::MxnetPsRdma(), 5);
  job.chaos = LinkDownOnlyPlan(5);
  job.dynamics = VolatileFabric(5);
  const JobResult a = RunTrainingJob(job);
  const JobResult b = RunTrainingJob(job);
  ExpectRecovered(a);
  EXPECT_GT(a.fault_stats.delays_injected, 0u);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.avg_iter_time, b.avg_iter_time);
  EXPECT_EQ(a.fault_stats.delay_injected_total, b.fault_stats.delay_injected_total);
  EXPECT_EQ(a.rate_ctrl_decreases, b.rate_ctrl_decreases);
  EXPECT_EQ(a.rate_ctrl_increases, b.rate_ctrl_increases);
  EXPECT_EQ(a.link_repaces, b.link_repaces);
}

}  // namespace
}  // namespace bsched
