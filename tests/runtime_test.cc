#include <gtest/gtest.h>

#include <vector>

#include "src/model/zoo.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

namespace bsched {
namespace {

JobConfig BaseJob(const ModelProfile& model, const Setup& setup, int machines) {
  JobConfig job;
  job.model = model;
  job.setup = setup;
  job.num_machines = machines;
  job.bandwidth = Bandwidth::Gbps(100);
  job.warmup_iters = 2;
  job.measure_iters = 4;
  return job;
}

JobConfig WithMode(JobConfig job, SchedMode mode) {
  job.mode = mode;
  if (mode == SchedMode::kByteScheduler) {
    const TunedParams tuned =
        DefaultTunedParams(job.model, job.setup.arch, job.setup.transport, job.bandwidth);
    job.partition_bytes = tuned.partition_bytes;
    job.credit_bytes = tuned.credit_bytes;
  }
  return job;
}

TEST(ClusterTest, FrameworkProperties) {
  EXPECT_FALSE(HasGlobalBarrier(Framework::kMxnet));
  EXPECT_TRUE(HasGlobalBarrier(Framework::kTensorFlow));
  EXPECT_TRUE(HasGlobalBarrier(Framework::kPyTorch));
  EXPECT_FALSE(IsImperative(Framework::kMxnet));
  EXPECT_FALSE(IsImperative(Framework::kTensorFlow));
  EXPECT_TRUE(IsImperative(Framework::kPyTorch));
}

TEST(ClusterTest, SetupPresets) {
  EXPECT_EQ(Setup::MxnetPsTcp().arch, ArchType::kPs);
  EXPECT_EQ(Setup::MxnetPsTcp().transport.name, "tcp");
  EXPECT_EQ(Setup::MxnetPsRdma().transport.name, "rdma");
  EXPECT_EQ(Setup::TensorFlowPsTcp().framework, Framework::kTensorFlow);
  EXPECT_EQ(Setup::MxnetNcclRdma().arch, ArchType::kAllReduce);
  EXPECT_EQ(Setup::PyTorchNcclTcp().framework, Framework::kPyTorch);
}

TEST(ClusterTest, ToStrings) {
  EXPECT_STREQ(ToString(ArchType::kPs), "ps");
  EXPECT_STREQ(ToString(ArchType::kAllReduce), "allreduce");
  EXPECT_STREQ(ToString(Framework::kMxnet), "mxnet");
  EXPECT_STREQ(ToString(SchedMode::kVanilla), "baseline");
  EXPECT_STREQ(ToString(SchedMode::kP3), "p3");
}

TEST(TrainingJobTest, DeterministicAcrossRuns) {
  JobConfig job = WithMode(BaseJob(Vgg16(), Setup::MxnetPsRdma(), 2), SchedMode::kByteScheduler);
  JobResult a = RunTrainingJob(job);
  JobResult b = RunTrainingJob(job);
  EXPECT_EQ(a.avg_iter_time, b.avg_iter_time);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(TrainingJobTest, IterationTimesMonotonic) {
  JobConfig job = WithMode(BaseJob(Vgg16(), Setup::MxnetPsTcp(), 2), SchedMode::kVanilla);
  JobResult r = RunTrainingJob(job);
  ASSERT_EQ(r.iter_end_times.size(), 6u);
  for (size_t i = 1; i < r.iter_end_times.size(); ++i) {
    EXPECT_GT(r.iter_end_times[i], r.iter_end_times[i - 1]);
  }
}

TEST(TrainingJobTest, ByteSchedulerBeatsBaselineInAllFiveSetups) {
  const std::vector<::bsched::Setup> setups = {Setup::MxnetPsTcp(), Setup::MxnetPsRdma(),
                                     Setup::TensorFlowPsTcp(), Setup::MxnetNcclRdma(),
                                     Setup::PyTorchNcclTcp()};
  for (const ::bsched::Setup& setup : setups) {
    JobConfig base = BaseJob(Vgg16(), setup, 2);
    const double baseline = RunTrainingJob(WithMode(base, SchedMode::kVanilla)).samples_per_sec;
    const double sched =
        RunTrainingJob(WithMode(base, SchedMode::kByteScheduler)).samples_per_sec;
    EXPECT_GT(sched, baseline) << setup.name;
  }
}

TEST(TrainingJobTest, NeverExceedsLinearScalingByMuch) {
  for (const ::bsched::Setup& setup : {Setup::MxnetPsRdma(), Setup::MxnetNcclRdma()}) {
    JobConfig job = WithMode(BaseJob(ResNet50(), setup, 4), SchedMode::kByteScheduler);
    JobResult r = RunTrainingJob(job);
    const double linear = LinearScalingSpeed(job.model, job.total_gpus());
    EXPECT_LE(r.samples_per_sec, linear * 1.01) << setup.name;
  }
}

TEST(TrainingJobTest, P3BetweenBaselineAndByteScheduler) {
  // P3's only scenario: MXNet PS TCP (§6.2). ByteScheduler outperforms it
  // because stop-and-wait cannot fill the pipe.
  JobConfig base = BaseJob(Vgg16(), Setup::MxnetPsTcp(), 4);
  const double baseline = RunTrainingJob(WithMode(base, SchedMode::kVanilla)).samples_per_sec;
  const double p3 = RunTrainingJob(WithMode(base, SchedMode::kP3)).samples_per_sec;
  const double bs = RunTrainingJob(WithMode(base, SchedMode::kByteScheduler)).samples_per_sec;
  EXPECT_GT(p3, baseline);
  EXPECT_GT(bs, p3);
}

TEST(TrainingJobTest, PartitioningBalancesPsLoad) {
  // Transformer's row-sparse embedding is not splittable by vanilla ps-lite,
  // so its 150 MB gradient lands whole on one shard; ByteScheduler's
  // partitioning stripes it (§6.2 "PS load balancing").
  JobConfig base = BaseJob(Transformer(), Setup::MxnetPsRdma(), 4);
  JobResult baseline = RunTrainingJob(WithMode(base, SchedMode::kVanilla));
  JobResult sched = RunTrainingJob(WithMode(base, SchedMode::kByteScheduler));
  EXPECT_GT(baseline.shard_load_imbalance, 1.5);
  EXPECT_LT(sched.shard_load_imbalance, 1.2);
  // VGG16's fc6 is dense and thus split by vanilla ps-lite: mostly balanced.
  JobConfig vgg = BaseJob(Vgg16(), Setup::MxnetPsRdma(), 4);
  EXPECT_LT(RunTrainingJob(WithMode(vgg, SchedMode::kVanilla)).shard_load_imbalance, 1.3);
}

TEST(TrainingJobTest, BarrierMakesVanillaTensorFlowSlowerThanMxnet) {
  JobConfig mx = WithMode(BaseJob(Vgg16(), Setup::MxnetPsTcp(), 2), SchedMode::kVanilla);
  const ::bsched::Setup tf_setup = Setup::TensorFlowPsTcp();
  JobConfig tf = WithMode(BaseJob(Vgg16(), tf_setup, 2), SchedMode::kVanilla);
  EXPECT_LE(RunTrainingJob(tf).samples_per_sec, RunTrainingJob(mx).samples_per_sec * 1.001);
}

TEST(TrainingJobTest, PsGainsExceedAllReduceGains) {
  // §6.2: "ByteScheduler has larger speedup in PS architecture than in
  // all-reduce" (VGG16, RDMA).
  JobConfig ps = BaseJob(Vgg16(), Setup::MxnetPsRdma(), 2);
  JobConfig ar = BaseJob(Vgg16(), Setup::MxnetNcclRdma(), 2);
  const double ps_gain =
      RunTrainingJob(WithMode(ps, SchedMode::kByteScheduler)).samples_per_sec /
      RunTrainingJob(WithMode(ps, SchedMode::kVanilla)).samples_per_sec;
  const double ar_gain =
      RunTrainingJob(WithMode(ar, SchedMode::kByteScheduler)).samples_per_sec /
      RunTrainingJob(WithMode(ar, SchedMode::kVanilla)).samples_per_sec;
  EXPECT_GT(ps_gain, ar_gain);
}

TEST(TrainingJobTest, ResNetGainsSmallerThanVggAt100Gbps) {
  // §6.2: ResNet50 at 100 Gbps RDMA is not communication-bound.
  JobConfig vgg = BaseJob(Vgg16(), Setup::MxnetPsRdma(), 2);
  JobConfig rn = BaseJob(ResNet50(), Setup::MxnetPsRdma(), 2);
  const double vgg_gain =
      RunTrainingJob(WithMode(vgg, SchedMode::kByteScheduler)).samples_per_sec /
      RunTrainingJob(WithMode(vgg, SchedMode::kVanilla)).samples_per_sec;
  const double rn_gain =
      RunTrainingJob(WithMode(rn, SchedMode::kByteScheduler)).samples_per_sec /
      RunTrainingJob(WithMode(rn, SchedMode::kVanilla)).samples_per_sec;
  EXPECT_GT(vgg_gain, rn_gain);
}

TEST(TrainingJobTest, AsyncPsRunsAndIsAtLeastAsFastAsSync) {
  JobConfig sync_job = WithMode(BaseJob(Vgg16(), Setup::MxnetPsRdma(), 2), SchedMode::kVanilla);
  JobConfig async_job = sync_job;
  async_job.ps_async = true;
  const double sync_speed = RunTrainingJob(sync_job).samples_per_sec;
  const double async_speed = RunTrainingJob(async_job).samples_per_sec;
  EXPECT_GE(async_speed, sync_speed * 0.99);
}

TEST(TrainingJobTest, SingleMachineJobsWork) {
  for (const ::bsched::Setup& setup : {Setup::MxnetPsTcp(), Setup::PyTorchNcclTcp()}) {
    JobConfig job = WithMode(BaseJob(ResNet50(), setup, 1), SchedMode::kByteScheduler);
    JobResult r = RunTrainingJob(job);
    EXPECT_GT(r.samples_per_sec, 0.0) << setup.name;
  }
}

TEST(TrainingJobTest, MoreMachinesMoreThroughput) {
  JobConfig two = WithMode(BaseJob(ResNet50(), Setup::MxnetNcclRdma(), 2),
                           SchedMode::kByteScheduler);
  JobConfig eight = WithMode(BaseJob(ResNet50(), Setup::MxnetNcclRdma(), 8),
                             SchedMode::kByteScheduler);
  EXPECT_GT(RunTrainingJob(eight).samples_per_sec, RunTrainingJob(two).samples_per_sec * 2);
}

TEST(TrainingJobTest, LinearScalingFormula) {
  ModelProfile m = Vgg16();
  const double one_gpu = LinearScalingSpeed(m, 1);
  EXPECT_NEAR(one_gpu, 190.0, 1.0);  // calibrated throughput
  EXPECT_NEAR(LinearScalingSpeed(m, 64), 64 * one_gpu, 1e-6);
}

TEST(TrainingJobTest, TunedParamsShapes) {
  ModelProfile m = Vgg16();
  const TunedParams ps =
      DefaultTunedParams(m, ArchType::kPs, TransportModel::Rdma(), Bandwidth::Gbps(100));
  const TunedParams ar =
      DefaultTunedParams(m, ArchType::kAllReduce, TransportModel::Rdma(), Bandwidth::Gbps(100));
  // Table 1: NCCL wants much larger partitions and credits than PS.
  EXPECT_GT(ar.partition_bytes, 4 * ps.partition_bytes);
  EXPECT_GT(ps.credit_bytes, ps.partition_bytes);
  // Lower bandwidth -> smaller PS partitions.
  const TunedParams ps_slow =
      DefaultTunedParams(m, ArchType::kPs, TransportModel::Rdma(), Bandwidth::Gbps(10));
  EXPECT_LT(ps_slow.partition_bytes, ps.partition_bytes);
}

TEST(TrainingJobTest, TransformerImbalanceDrivenGains) {
  // §6.2: Transformer's embedding tensor severely imbalances the PS; the
  // paper saw up to 171 % with 2 workers on RDMA.
  JobConfig base = BaseJob(Transformer(), Setup::MxnetPsRdma(), 2);
  JobResult vanilla = RunTrainingJob(WithMode(base, SchedMode::kVanilla));
  JobResult sched = RunTrainingJob(WithMode(base, SchedMode::kByteScheduler));
  EXPECT_GT(vanilla.shard_load_imbalance, 1.1);
  EXPECT_GT(sched.samples_per_sec, vanilla.samples_per_sec * 1.15);
}

TEST(TrainingJobTest, BertLargeEndToEnd) {
  // A 1.3 GB model is deeply communication-bound even on RDMA PS: the
  // scheduler should deliver a clear speedup and stay under linear scaling.
  // (The gain is smaller than VGG16's: BERT's 24 uniform encoder layers give
  // the vanilla baseline little load skew to lose to.)
  JobConfig base = BaseJob(BertLarge(), Setup::MxnetPsRdma(), 4);
  const double baseline = RunTrainingJob(WithMode(base, SchedMode::kVanilla)).samples_per_sec;
  const double sched =
      RunTrainingJob(WithMode(base, SchedMode::kByteScheduler)).samples_per_sec;
  EXPECT_GT(sched, baseline * 1.15);
  EXPECT_LE(sched, PaperLinearScaling(base) * 1.005);
}

TEST(TrainingJobTest, VanillaAllReduceSendsWholeTensors) {
  // Regression: the ps-lite big-array split must not leak into the all-reduce
  // path — vanilla Horovod all-reduces exactly one operation per tensor.
  JobConfig job = WithMode(BaseJob(ResNet50(), Setup::MxnetNcclRdma(), 8), SchedMode::kVanilla);
  const JobResult r = RunTrainingJob(job);
  const uint64_t iters = job.warmup_iters + job.measure_iters;
  EXPECT_EQ(r.subtasks_started, iters * static_cast<uint64_t>(job.model.num_layers()));
}

TEST(TrainingJobTest, VanillaPsSplitsOnlyLargeDenseTensors) {
  JobConfig job = WithMode(BaseJob(Transformer(), Setup::MxnetPsRdma(), 4), SchedMode::kVanilla);
  const JobResult r = RunTrainingJob(job);
  const uint64_t iters = job.warmup_iters + job.measure_iters;
  uint64_t expected_per_worker_iter = 0;
  for (const Layer& l : job.model.layers) {
    const uint64_t parts =
        (l.splittable && l.param_bytes > MiB(1)) ? job.num_machines : 1;  // ps-lite split
    expected_per_worker_iter += 2 * parts;  // push + pull
  }
  EXPECT_EQ(r.subtasks_started, iters * job.num_machines * expected_per_worker_iter);
}

TEST(TrainingJobTest, ByteSchedulerPartitionCountMatchesConfig) {
  JobConfig job = WithMode(BaseJob(Vgg16(), Setup::MxnetPsRdma(), 2), SchedMode::kByteScheduler);
  job.partition_bytes = MiB(8);
  const JobResult r = RunTrainingJob(job);
  const uint64_t iters = job.warmup_iters + job.measure_iters;
  uint64_t per_worker_iter = 0;
  for (const Layer& l : job.model.layers) {
    per_worker_iter += 2 * ((l.param_bytes + MiB(8) - 1) / MiB(8));
  }
  EXPECT_EQ(r.subtasks_started, iters * job.num_machines * per_worker_iter);
}

}  // namespace
}  // namespace bsched
