#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/model/zoo.h"
#include "src/tuning/auto_tuner.h"
#include "src/tuning/gaussian_process.h"
#include "src/tuning/search.h"

namespace bsched {
namespace {

TEST(GaussianProcessTest, PriorWithoutData) {
  GaussianProcess gp(2);
  auto p = gp.Predict({0.5, 0.5});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.0);
}

TEST(GaussianProcessTest, InterpolatesObservations) {
  GaussianProcess::Hyper hyper;
  hyper.noise_var = 1e-6;
  GaussianProcess gp(1, hyper);
  gp.Add({0.2}, 1.0);
  gp.Add({0.8}, 3.0);
  auto at_obs = gp.Predict({0.2});
  EXPECT_NEAR(at_obs.mean, 1.0, 0.02);
  EXPECT_LT(at_obs.variance, 0.01);
  // Mid-point: between the two values, with higher uncertainty.
  auto mid = gp.Predict({0.5});
  EXPECT_GT(mid.mean, 1.0);
  EXPECT_LT(mid.mean, 3.0);
  EXPECT_GT(mid.variance, at_obs.variance);
}

TEST(GaussianProcessTest, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp(1);
  gp.Add({0.5}, 2.0);
  EXPECT_LT(gp.Predict({0.5}).variance, gp.Predict({0.0}).variance);
}

TEST(GaussianProcessTest, FitsSmoothFunction) {
  GaussianProcess::Hyper hyper;
  hyper.noise_var = 1e-4;
  GaussianProcess gp(1, hyper);
  auto f = [](double x) { return std::sin(3.0 * x); };
  for (int i = 0; i <= 10; ++i) {
    const double x = i / 10.0;
    gp.Add({x}, f(x));
  }
  for (double x : {0.05, 0.33, 0.71, 0.95}) {
    EXPECT_NEAR(gp.Predict({x}).mean, f(x), 0.05) << x;
  }
}

TEST(GaussianProcessTest, BestYTracksMaximum) {
  GaussianProcess gp(1);
  gp.Add({0.1}, 5.0);
  gp.Add({0.9}, 2.0);
  EXPECT_DOUBLE_EQ(gp.best_y(), 5.0);
}

TEST(NormalTest, PdfCdf) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989, 1e-3);
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-9);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(ExpectedImprovementTest, Properties) {
  // Zero variance, mean below best: no improvement possible.
  EXPECT_DOUBLE_EQ(ExpectedImprovement(1.0, 0.0, 2.0, 0.0), 0.0);
  // Zero variance, mean above best: improvement is the gap.
  EXPECT_DOUBLE_EQ(ExpectedImprovement(3.0, 0.0, 2.0, 0.0), 1.0);
  // Positive variance always gives positive EI.
  EXPECT_GT(ExpectedImprovement(1.0, 0.5, 2.0, 0.0), 0.0);
  // More uncertainty -> more EI at equal mean (exploration).
  EXPECT_GT(ExpectedImprovement(1.0, 1.0, 2.0, 0.0), ExpectedImprovement(1.0, 0.1, 2.0, 0.0));
}

double Rosenbrockish(const std::vector<double>& x) {
  // Smooth 2-D objective with maximum at (0.7, 0.3).
  const double dx = x[0] - 0.7;
  const double dy = x[1] - 0.3;
  return 10.0 - 40.0 * dx * dx - 25.0 * dy * dy;
}

double RunSearch(ParamSearch& search, int trials, double noise, uint64_t seed) {
  Rng rng(seed);
  double best = -1e300;
  for (int t = 0; t < trials; ++t) {
    auto x = search.Suggest();
    const double y = Rosenbrockish(x) + noise * rng.NextGaussian();
    search.Observe(x, y);
    best = std::max(best, Rosenbrockish(x));  // true value of sampled point
  }
  return best;
}

TEST(BayesianOptimizerTest, FindsOptimumOfSmoothFunction) {
  BayesianOptimizer bo(2, 42);
  const double best = RunSearch(bo, 15, 0.05, 1);
  EXPECT_GT(best, 9.3);  // within ~7% of the max 10.0
}

TEST(BayesianOptimizerTest, BeatsRandomSearchOnAverage) {
  double bo_sum = 0.0;
  double rnd_sum = 0.0;
  const int kRepeats = 10;
  const int kTrials = 12;
  for (uint64_t seed = 0; seed < kRepeats; ++seed) {
    BayesianOptimizer bo(2, seed);
    RandomSearch rnd(2, seed);
    bo_sum += RunSearch(bo, kTrials, 0.05, seed);
    rnd_sum += RunSearch(rnd, kTrials, 0.05, seed);
  }
  EXPECT_GT(bo_sum / kRepeats, rnd_sum / kRepeats);
}

TEST(BayesianOptimizerTest, DeterministicPerSeed) {
  BayesianOptimizer a(2, 7);
  BayesianOptimizer b(2, 7);
  for (int t = 0; t < 6; ++t) {
    auto xa = a.Suggest();
    auto xb = b.Suggest();
    EXPECT_EQ(xa, xb);
    a.Observe(xa, Rosenbrockish(xa));
    b.Observe(xb, Rosenbrockish(xb));
  }
}

TEST(RandomSearchTest, PointsInUnitCube) {
  RandomSearch rnd(3, 5);
  for (int t = 0; t < 100; ++t) {
    for (double v : rnd.Suggest()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(GridSearchTest, CoversLatticeExactlyOnce) {
  GridSearch grid(2, 4);
  EXPECT_EQ(grid.total_points(), 16);
  std::set<std::pair<double, double>> seen;
  for (int t = 0; t < 16; ++t) {
    auto x = grid.Suggest();
    seen.insert({x[0], x[1]});
  }
  EXPECT_EQ(seen.size(), 16u);
  // Wraps around afterwards.
  auto x = grid.Suggest();
  EXPECT_TRUE(seen.count({x[0], x[1]}) > 0);
}

TEST(GridSearchTest, EndpointsIncluded) {
  GridSearch grid(1, 5);
  std::set<double> xs;
  for (int t = 0; t < 5; ++t) {
    xs.insert(grid.Suggest()[0]);
  }
  EXPECT_TRUE(xs.count(0.0) > 0);
  EXPECT_TRUE(xs.count(1.0) > 0);
}

TEST(SgdMomentumTest, ClimbsSmoothObjective) {
  SgdMomentumSearch sgd(2, 3);
  const double best = RunSearch(sgd, 30, 0.0, 1);
  EXPECT_GT(best, 8.5);
}

TEST(SgdMomentumTest, SuggestionsStayInBounds) {
  SgdMomentumSearch sgd(2, 11);
  Rng rng(2);
  for (int t = 0; t < 50; ++t) {
    auto x = sgd.Suggest();
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    sgd.Observe(x, rng.NextDouble());  // adversarial noise
  }
}

JobConfig TinyJob() {
  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  return job;
}

TEST(AutoTunerTest, UnitMappingIsLogScale) {
  AutoTunerOptions opt;
  opt.partition_lo = KiB(64);
  opt.partition_hi = MiB(64);
  AutoTuner tuner(TinyJob(), opt);
  EXPECT_EQ(tuner.PartitionFromUnit(0.0), KiB(64));
  EXPECT_EQ(tuner.PartitionFromUnit(1.0), MiB(64));
  // Half-way in log space = geometric mean (2 MiB).
  EXPECT_NEAR(static_cast<double>(tuner.PartitionFromUnit(0.5)), 2.0 * MiB(1),
              0.01 * MiB(1));
}

TEST(AutoTunerTest, BoTuningFindsGoodConfiguration) {
  AutoTunerOptions opt;
  opt.max_trials = 10;
  opt.seed = 4;
  AutoTuner tuner(TinyJob(), opt);
  AutoTuner::Result result = tuner.TuneWithBo();
  EXPECT_EQ(result.trials.size(), 10u);
  EXPECT_GT(result.best_speed, 0.0);
  // The tuned configuration should be close to the heuristic sweet spot:
  // within 3x either way of the DefaultTunedParams partition.
  const TunedParams heuristic = DefaultTunedParams(
      Vgg16(), ArchType::kPs, Setup::MxnetPsRdma().transport, Bandwidth::Gbps(100));
  const double ratio = static_cast<double>(result.best.partition_bytes) /
                       static_cast<double>(heuristic.partition_bytes);
  EXPECT_GT(ratio, 1.0 / 16);
  EXPECT_LT(ratio, 16.0);
}

TEST(AutoTunerTest, CreditFlooredAtPartition) {
  AutoTunerOptions opt;
  opt.max_trials = 6;
  opt.seed = 9;
  AutoTuner tuner(TinyJob(), opt);
  AutoTuner::Result result = tuner.TuneWithBo();
  EXPECT_GE(result.best.credit_bytes, result.best.partition_bytes);
}

TEST(AutoTunerTest, PsRestartCostCharged) {
  AutoTunerOptions opt;
  opt.max_trials = 5;
  opt.ps_restart_sec = 100.0;  // make restarts dominate
  AutoTuner tuner(TinyJob(), opt);
  RandomSearch rnd(2, 3);
  AutoTuner::Result result = tuner.Tune(rnd);
  // 4 partition changes after the first trial -> at least 400s of cost.
  EXPECT_GT(result.tuning_cost_sec, 400.0);
}

TEST(AutoTunerTest, ObjectiveRewardsSaneParameters) {
  AutoTunerOptions opt;
  opt.noise_frac = 0.0;
  AutoTuner tuner(TinyJob(), opt);
  const double tiny = tuner.EvaluateObjective(KiB(64), KiB(64));
  const double sane = tuner.EvaluateObjective(MiB(4), MiB(20));
  EXPECT_GT(sane, tiny);
}

TEST(AutoTunerTest, PerLayerTuningNeverWorseThanUniform) {
  AutoTunerOptions opt;
  opt.noise_frac = 0.0;
  opt.seed = 5;
  AutoTuner tuner(TinyJob(), opt);
  const TunedParams uniform{MiB(4), MiB(20)};
  const double uniform_speed =
      tuner.EvaluateObjective(uniform.partition_bytes, uniform.credit_bytes);
  const AutoTuner::PerLayerResult refined = tuner.TunePerLayer(uniform, /*rounds=*/1);
  EXPECT_EQ(refined.per_layer.size(), TinyJob().model.layers.size());
  // Greedy refinement keeps the best seen, so it cannot end below uniform.
  EXPECT_GE(refined.speed, uniform_speed * 0.999);
  EXPECT_GT(refined.extra_trials, 1);
}

TEST(AutoTunerTest, PerLayerTuningOnlyTouchesPartitionedLayers) {
  AutoTunerOptions opt;
  opt.noise_frac = 0.0;
  AutoTuner tuner(TinyJob(), opt);
  const TunedParams uniform{MiB(4), MiB(20)};
  const AutoTuner::PerLayerResult refined = tuner.TunePerLayer(uniform, 1);
  const ModelProfile model = TinyJob().model;
  for (size_t i = 0; i < refined.per_layer.size(); ++i) {
    if (model.layers[i].param_bytes <= uniform.partition_bytes) {
      EXPECT_EQ(refined.per_layer[i], uniform.partition_bytes) << i;
    }
  }
}

}  // namespace
}  // namespace bsched
