#include <gtest/gtest.h>

#include <vector>

#include "src/net/link.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

TEST(TransportTest, IdealHasNoOverhead) {
  TransportModel t = TransportModel::Ideal();
  EXPECT_EQ(t.TotalOverhead().nanos(), 0);
  Bandwidth line = Bandwidth::Gbps(8);  // 1 GB/s
  EXPECT_EQ(t.MessageTime(line, 1'000'000).nanos(), 1'000'000);
}

TEST(TransportTest, TcpAddsOverheadAndCapsGoodput) {
  TransportModel t = TransportModel::Tcp();
  // At 1 Gbps the cap is irrelevant; efficiency 0.9 applies.
  Bandwidth low = Bandwidth::Gbps(1);
  EXPECT_DOUBLE_EQ(t.EffectiveRate(low).ToGbps(), 0.9);
  // At 100 Gbps the per-connection cap dominates.
  Bandwidth high = Bandwidth::Gbps(100);
  EXPECT_DOUBLE_EQ(t.EffectiveRate(high).ToGbps(), 34.0);
  // Total per-message overhead is the paper's ~300us, split between a serial
  // stack component and pipelined latency.
  EXPECT_EQ(t.TotalOverhead(), SimTime::Micros(300));
  EXPECT_LT(t.serial_overhead, t.latency);
}

TEST(TransportTest, RdmaSaturatesFastLinks) {
  TransportModel t = TransportModel::Rdma();
  Bandwidth high = Bandwidth::Gbps(100);
  EXPECT_DOUBLE_EQ(t.EffectiveRate(high).ToGbps(), 95.0);
  EXPECT_LT(t.TotalOverhead(), TransportModel::Tcp().TotalOverhead());
}

TEST(TransportTest, MessageTimeIsTransmitPlusSerialOverhead) {
  TransportModel t = TransportModel::Rdma();
  Bandwidth line = Bandwidth::Gbps(80);  // effective 76 Gbps = 9.5 GB/s
  SimTime msg = t.MessageTime(line, 9'500'000);
  EXPECT_EQ(msg, SimTime::Micros(1000) + t.serial_overhead);
}

TEST(LinkTest, SerializesMessagesFifo) {
  Simulator sim;
  Link link(&sim, "l", Bandwidth::Gbps(8), TransportModel::Ideal());
  std::vector<int64_t> deliveries;
  link.Send(1'000'000, [&] { deliveries.push_back(sim.Now().nanos()); });  // 1ms
  link.Send(2'000'000, [&] { deliveries.push_back(sim.Now().nanos()); });  // +2ms
  sim.Run();
  EXPECT_EQ(deliveries, (std::vector<int64_t>{1'000'000, 3'000'000}));
  EXPECT_EQ(link.bytes_sent(), 3'000'000);
  EXPECT_EQ(link.messages_sent(), 2u);
}

TEST(LinkTest, OverheadPaidPerMessage) {
  Simulator sim;
  TransportModel t = TransportModel::Ideal();
  t.serial_overhead = SimTime::Micros(100);
  Link link(&sim, "l", Bandwidth::Gbps(8), t);
  SimTime last;
  for (int i = 0; i < 4; ++i) {
    link.Send(1'000'000, [&] { last = sim.Now(); });
  }
  sim.Run();
  // 4 x (1ms + 100us)
  EXPECT_EQ(last, SimTime::Micros(4400));
}

TEST(LinkTest, SmallPartitionsWasteBandwidth) {
  // Sending 8 MB as 1 message vs 128 messages: the partitioned send pays
  // 128 overheads. This is the partition-overhead penalty of §4.1.
  auto total_time = [](int num_parts) {
    Simulator sim;
    TransportModel t = TransportModel::Ideal();
    t.serial_overhead = SimTime::Micros(300);
    Link link(&sim, "l", Bandwidth::Gbps(8), t);
    const Bytes total = MiB(8);
    for (int i = 0; i < num_parts; ++i) {
      link.Send(total / num_parts, nullptr);
    }
    sim.Run();
    return sim.Now();
  };
  SimTime one = total_time(1);
  SimTime many = total_time(128);
  EXPECT_EQ((many - one), SimTime::Micros(300) * 127);
}

TEST(DuplexLinkTest, DirectionsAreIndependent) {
  Simulator sim;
  DuplexLink nic(&sim, "nic", Bandwidth::Gbps(8), TransportModel::Ideal());
  SimTime up_done;
  SimTime down_done;
  nic.up().Send(1'000'000, [&] { up_done = sim.Now(); });
  nic.down().Send(1'000'000, [&] { down_done = sim.Now(); });
  sim.Run();
  // Full duplex: both finish at 1ms, not serialized to 2ms.
  EXPECT_EQ(up_done, SimTime::Millis(1));
  EXPECT_EQ(down_done, SimTime::Millis(1));
}

TEST(LinkTest, LatencyPipelinesAcrossMessages) {
  // Two back-to-back messages: occupancy serializes but latency overlaps,
  // so the second delivery lags the first by exactly one occupancy.
  Simulator sim;
  TransportModel t = TransportModel::Ideal();
  t.latency = SimTime::Micros(500);
  Link link(&sim, "l", Bandwidth::Gbps(8), t);
  std::vector<int64_t> deliveries;
  link.Send(1'000'000, [&] { deliveries.push_back(sim.Now().nanos()); });
  link.Send(1'000'000, [&] { deliveries.push_back(sim.Now().nanos()); });
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 1'500'000);  // 1ms occupancy + 500us latency
  EXPECT_EQ(deliveries[1], 2'500'000);  // +1ms occupancy only
}

TEST(LinkTest, SendWithFlushSeparatesFlushFromDelivery) {
  Simulator sim;
  TransportModel t = TransportModel::Ideal();
  t.latency = SimTime::Micros(200);
  Link link(&sim, "l", Bandwidth::Gbps(8), t);
  SimTime flushed;
  SimTime delivered;
  link.SendWithFlush(
      1'000'000, [&] { flushed = sim.Now(); }, [&] { delivered = sim.Now(); });
  sim.Run();
  EXPECT_EQ(flushed, SimTime::Millis(1));
  EXPECT_EQ(delivered, SimTime::Millis(1) + SimTime::Micros(200));
}

TEST(LinkTest, BusyAndQueueLength) {
  Simulator sim;
  Link link(&sim, "l", Bandwidth::Gbps(8), TransportModel::Ideal());
  EXPECT_FALSE(link.busy());
  link.Send(1'000'000, nullptr);
  link.Send(1'000'000, nullptr);
  EXPECT_TRUE(link.busy());
  EXPECT_EQ(link.queue_length(), 1u);
  sim.Run();
  EXPECT_FALSE(link.busy());
}

}  // namespace
}  // namespace bsched
