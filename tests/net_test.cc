#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/common/trace.h"
#include "src/model/zoo.h"
#include "src/net/link.h"
#include "src/net/net_dynamics.h"
#include "src/net/rate_controller.h"
#include "src/net/rate_model.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/runtime/training_job.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

TEST(TransportTest, IdealHasNoOverhead) {
  TransportModel t = TransportModel::Ideal();
  EXPECT_EQ(t.TotalOverhead().nanos(), 0);
  Bandwidth line = Bandwidth::Gbps(8);  // 1 GB/s
  EXPECT_EQ(t.MessageTime(line, 1'000'000).nanos(), 1'000'000);
}

TEST(TransportTest, TcpAddsOverheadAndCapsGoodput) {
  TransportModel t = TransportModel::Tcp();
  // At 1 Gbps the cap is irrelevant; efficiency 0.9 applies.
  Bandwidth low = Bandwidth::Gbps(1);
  EXPECT_DOUBLE_EQ(t.EffectiveRate(low).ToGbps(), 0.9);
  // At 100 Gbps the per-connection cap dominates.
  Bandwidth high = Bandwidth::Gbps(100);
  EXPECT_DOUBLE_EQ(t.EffectiveRate(high).ToGbps(), 34.0);
  // Total per-message overhead is the paper's ~300us, split between a serial
  // stack component and pipelined latency.
  EXPECT_EQ(t.TotalOverhead(), SimTime::Micros(300));
  EXPECT_LT(t.serial_overhead, t.latency);
}

TEST(TransportTest, RdmaSaturatesFastLinks) {
  TransportModel t = TransportModel::Rdma();
  Bandwidth high = Bandwidth::Gbps(100);
  EXPECT_DOUBLE_EQ(t.EffectiveRate(high).ToGbps(), 95.0);
  EXPECT_LT(t.TotalOverhead(), TransportModel::Tcp().TotalOverhead());
}

TEST(TransportTest, MessageTimeIsTransmitPlusSerialOverhead) {
  TransportModel t = TransportModel::Rdma();
  Bandwidth line = Bandwidth::Gbps(80);  // effective 76 Gbps = 9.5 GB/s
  SimTime msg = t.MessageTime(line, 9'500'000);
  EXPECT_EQ(msg, SimTime::Micros(1000) + t.serial_overhead);
}

TEST(LinkTest, SerializesMessagesFifo) {
  Simulator sim;
  Link link(&sim, "l", Bandwidth::Gbps(8), TransportModel::Ideal());
  std::vector<int64_t> deliveries;
  link.Send(1'000'000, [&] { deliveries.push_back(sim.Now().nanos()); });  // 1ms
  link.Send(2'000'000, [&] { deliveries.push_back(sim.Now().nanos()); });  // +2ms
  sim.Run();
  EXPECT_EQ(deliveries, (std::vector<int64_t>{1'000'000, 3'000'000}));
  EXPECT_EQ(link.bytes_sent(), 3'000'000);
  EXPECT_EQ(link.messages_sent(), 2u);
}

TEST(LinkTest, OverheadPaidPerMessage) {
  Simulator sim;
  TransportModel t = TransportModel::Ideal();
  t.serial_overhead = SimTime::Micros(100);
  Link link(&sim, "l", Bandwidth::Gbps(8), t);
  SimTime last;
  for (int i = 0; i < 4; ++i) {
    link.Send(1'000'000, [&] { last = sim.Now(); });
  }
  sim.Run();
  // 4 x (1ms + 100us)
  EXPECT_EQ(last, SimTime::Micros(4400));
}

TEST(LinkTest, SmallPartitionsWasteBandwidth) {
  // Sending 8 MB as 1 message vs 128 messages: the partitioned send pays
  // 128 overheads. This is the partition-overhead penalty of §4.1.
  auto total_time = [](int num_parts) {
    Simulator sim;
    TransportModel t = TransportModel::Ideal();
    t.serial_overhead = SimTime::Micros(300);
    Link link(&sim, "l", Bandwidth::Gbps(8), t);
    const Bytes total = MiB(8);
    for (int i = 0; i < num_parts; ++i) {
      link.Send(total / num_parts, nullptr);
    }
    sim.Run();
    return sim.Now();
  };
  SimTime one = total_time(1);
  SimTime many = total_time(128);
  EXPECT_EQ((many - one), SimTime::Micros(300) * 127);
}

TEST(DuplexLinkTest, DirectionsAreIndependent) {
  Simulator sim;
  DuplexLink nic(&sim, "nic", Bandwidth::Gbps(8), TransportModel::Ideal());
  SimTime up_done;
  SimTime down_done;
  nic.up().Send(1'000'000, [&] { up_done = sim.Now(); });
  nic.down().Send(1'000'000, [&] { down_done = sim.Now(); });
  sim.Run();
  // Full duplex: both finish at 1ms, not serialized to 2ms.
  EXPECT_EQ(up_done, SimTime::Millis(1));
  EXPECT_EQ(down_done, SimTime::Millis(1));
}

TEST(LinkTest, LatencyPipelinesAcrossMessages) {
  // Two back-to-back messages: occupancy serializes but latency overlaps,
  // so the second delivery lags the first by exactly one occupancy.
  Simulator sim;
  TransportModel t = TransportModel::Ideal();
  t.latency = SimTime::Micros(500);
  Link link(&sim, "l", Bandwidth::Gbps(8), t);
  std::vector<int64_t> deliveries;
  link.Send(1'000'000, [&] { deliveries.push_back(sim.Now().nanos()); });
  link.Send(1'000'000, [&] { deliveries.push_back(sim.Now().nanos()); });
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 1'500'000);  // 1ms occupancy + 500us latency
  EXPECT_EQ(deliveries[1], 2'500'000);  // +1ms occupancy only
}

TEST(LinkTest, SendWithFlushSeparatesFlushFromDelivery) {
  Simulator sim;
  TransportModel t = TransportModel::Ideal();
  t.latency = SimTime::Micros(200);
  Link link(&sim, "l", Bandwidth::Gbps(8), t);
  SimTime flushed;
  SimTime delivered;
  link.SendWithFlush(
      1'000'000, [&] { flushed = sim.Now(); }, [&] { delivered = sim.Now(); });
  sim.Run();
  EXPECT_EQ(flushed, SimTime::Millis(1));
  EXPECT_EQ(delivered, SimTime::Millis(1) + SimTime::Micros(200));
}

TEST(LinkTest, BusyAndQueueLength) {
  Simulator sim;
  Link link(&sim, "l", Bandwidth::Gbps(8), TransportModel::Ideal());
  EXPECT_FALSE(link.busy());
  link.Send(1'000'000, nullptr);
  link.Send(1'000'000, nullptr);
  EXPECT_TRUE(link.busy());
  EXPECT_EQ(link.queue_length(), 1u);
  sim.Run();
  EXPECT_FALSE(link.busy());
}

// ---- RateModel schedules --------------------------------------------------

TEST(RateModelTest, IdentityAndConstant) {
  RateModel id;
  EXPECT_TRUE(id.IsIdentity());
  EXPECT_DOUBLE_EQ(id.ScaleAt(SimTime::Millis(5)), 1.0);
  EXPECT_EQ(id.NextChangeAfter(SimTime()), SimTime::Max());
  RateModel half = RateModel::Constant(0.5);
  EXPECT_FALSE(half.IsIdentity());
  EXPECT_DOUBLE_EQ(half.ScaleAt(SimTime()), 0.5);
  EXPECT_EQ(half.NextChangeAfter(SimTime()), SimTime::Max());
}

TEST(RateModelTest, PiecewiseLookupAndBreakpoints) {
  RateModel m = RateModel::Piecewise(
      {{SimTime::Millis(1), 0.5}, {SimTime::Millis(3), 0.0}, {SimTime::Millis(4), 1.0}});
  // A leading identity segment is synthesized before the first step.
  EXPECT_DOUBLE_EQ(m.ScaleAt(SimTime()), 1.0);
  EXPECT_DOUBLE_EQ(m.ScaleAt(SimTime::Millis(1)), 0.5);
  EXPECT_DOUBLE_EQ(m.ScaleAt(SimTime::Millis(2)), 0.5);
  EXPECT_DOUBLE_EQ(m.ScaleAt(SimTime::Millis(3)), 0.0);
  EXPECT_DOUBLE_EQ(m.ScaleAt(SimTime::Millis(10)), 1.0);
  EXPECT_EQ(m.NextChangeAfter(SimTime()), SimTime::Millis(1));
  EXPECT_EQ(m.NextChangeAfter(SimTime::Millis(1)), SimTime::Millis(3));
  EXPECT_EQ(m.NextChangeAfter(SimTime::Millis(4)), SimTime::Max());
}

TEST(RateModelTest, BuildersAreDeterministicAndBounded) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const RateModel walk =
        RateModel::RandomWalk(seed, 0.6, SimTime::Micros(500), SimTime::Millis(40));
    const RateModel walk2 =
        RateModel::RandomWalk(seed, 0.6, SimTime::Micros(500), SimTime::Millis(40));
    ASSERT_EQ(walk.steps().size(), walk2.steps().size());
    for (size_t i = 0; i < walk.steps().size(); ++i) {
      EXPECT_EQ(walk.steps()[i].start, walk2.steps()[i].start);
      EXPECT_DOUBLE_EQ(walk.steps()[i].scale, walk2.steps()[i].scale);
      EXPECT_GE(walk.steps()[i].scale, 0.4);
      EXPECT_LE(walk.steps()[i].scale, 1.0);
    }
    const RateModel cross = RateModel::CrossTraffic(seed, 3, 0.4, SimTime::Millis(2), 0.5,
                                                    SimTime::Millis(40));
    EXPECT_GT(cross.steps().size(), 1u);
    for (const RateStep& s : cross.steps()) {
      EXPECT_GE(s.scale, RateModel::kMinScale);
      EXPECT_LE(s.scale, 1.0);
    }
  }
  // Different seeds wander differently.
  const RateModel a = RateModel::RandomWalk(1, 0.6, SimTime::Micros(500), SimTime::Millis(40));
  const RateModel b = RateModel::RandomWalk(2, 0.6, SimTime::Micros(500), SimTime::Millis(40));
  bool differs = false;
  for (int t = 0; t < 40 && !differs; ++t) {
    differs = a.ScaleAt(SimTime::Millis(t)) != b.ScaleAt(SimTime::Millis(t));
  }
  EXPECT_TRUE(differs);
}

TEST(RateModelTest, ComposeIsPointwiseProduct) {
  const RateModel a =
      RateModel::Piecewise({{SimTime(), 0.8}, {SimTime::Millis(2), 0.5}});
  const RateModel b =
      RateModel::Piecewise({{SimTime::Millis(1), 0.5}, {SimTime::Millis(3), 1.0}});
  const RateModel c = RateModel::Compose(a, b);
  for (int64_t us = 0; us <= 4000; us += 137) {
    const SimTime t = SimTime::Micros(us);
    EXPECT_DOUBLE_EQ(c.ScaleAt(t), a.ScaleAt(t) * b.ScaleAt(t)) << us;
  }
  EXPECT_TRUE(RateModel::Compose(RateModel(), RateModel()).IsIdentity());
}

TEST(NetDynamicsTest, LinkModelsAreDeterministicPerName) {
  NetDynamicsConfig dyn;
  dyn.seed = 7;
  dyn.volatility_amplitude = 0.5;
  dyn.cross_flows = 2;
  const RateModel a = BuildLinkRateModel(dyn, "worker0.up", false);
  const RateModel a2 = BuildLinkRateModel(dyn, "worker0.up", false);
  ASSERT_EQ(a.steps().size(), a2.steps().size());
  for (size_t i = 0; i < a.steps().size(); ++i) {
    EXPECT_EQ(a.steps()[i].start, a2.steps()[i].start);
    EXPECT_DOUBLE_EQ(a.steps()[i].scale, a2.steps()[i].scale);
  }
  // Distinct links get decorrelated schedules.
  const RateModel b = BuildLinkRateModel(dyn, "worker1.up", false);
  bool differs = false;
  for (int t = 0; t < 40 && !differs; ++t) {
    differs = a.ScaleAt(SimTime::Millis(t)) != b.ScaleAt(SimTime::Millis(t));
  }
  EXPECT_TRUE(differs);
}

TEST(NetDynamicsTest, CrossRackScaleDeratesSpineTransfers) {
  NetDynamicsConfig dyn;
  dyn.racks = 2;
  dyn.oversubscription = 4.0;
  EXPECT_DOUBLE_EQ(CrossRackScale(dyn, 0, 0), 1.0);   // same rack
  EXPECT_DOUBLE_EQ(CrossRackScale(dyn, 0, 2), 1.0);   // same rack (2 % 2 == 0)
  EXPECT_DOUBLE_EQ(CrossRackScale(dyn, 0, 1), 0.25);  // across the spine
  dyn.racks = 1;
  EXPECT_DOUBLE_EQ(CrossRackScale(dyn, 0, 1), 1.0);
}

// ---- dynamic-path trajectory oracle ---------------------------------------

// Independent closed-form oracle: integrates the rate trajectory segment by
// segment and inverts the integral at nanosecond resolution (the same
// resolution the simulator clocks at). Deliberately coded with a different
// multiplication order than the Link, so agreement within 1 ulp of sim-time
// is a property check, not a tautology.
int64_t OracleFinishNs(const RateModel& model, const TransportModel& t, double line_bps,
                       double msg_scale, Bytes size, SimTime start) {
  double remaining = static_cast<double>(size);
  SimTime at = start + t.serial_overhead;
  for (;;) {
    const double rate =
        std::min(model.ScaleAt(at) * msg_scale * t.efficiency * line_bps,
                 t.goodput_cap.bytes_per_sec());
    const SimTime next = model.NextChangeAfter(at);
    if (rate <= 0.0) {
      EXPECT_LT(next, SimTime::Max()) << "stalled on a terminal zero-rate segment";
      at = next;
      continue;
    }
    const SimTime fin = at + SimTime(static_cast<int64_t>(std::llround(remaining / rate * 1e9)));
    if (next == SimTime::Max() || fin <= next) {
      return fin.nanos();
    }
    remaining -= rate * (next - at).ToSeconds();
    remaining = std::max(remaining, 0.0);
    at = next;
  }
}

TEST(RateModelOracleTest, CompletionMatchesScheduleIntegralAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 11);
    TransportModel t = TransportModel::Ideal();
    t.serial_overhead = SimTime(rng.UniformInt(0, 100'000));
    t.latency = SimTime(rng.UniformInt(0, 50'000));
    t.efficiency = rng.Uniform(0.7, 1.0);
    if (rng.NextDouble() < 0.3) {
      t.goodput_cap = Bandwidth::Gbps(rng.Uniform(1.0, 20.0));
    }
    const Bandwidth line = Bandwidth::Gbps(rng.Uniform(1.0, 100.0));
    RateModel model = RateModel::RandomWalk(seed, rng.Uniform(0.2, 0.9),
                                            SimTime(rng.UniformInt(20'000, 400'000)),
                                            SimTime::Millis(50));
    if (rng.NextDouble() < 0.5) {
      model = RateModel::Compose(
          model, RateModel::CrossTraffic(seed ^ 0xabcdULL, 2, rng.Uniform(0.2, 0.6),
                                         SimTime(rng.UniformInt(50'000, 500'000)), 0.5,
                                         SimTime::Millis(50)));
    }
    Simulator sim;
    Link link(&sim, "fuzz", line, t);
    link.SetRateModel(model);
    constexpr int kMsgs = 6;
    std::vector<Bytes> sizes;
    std::vector<double> scales;
    std::vector<int64_t> flushes;
    for (int i = 0; i < kMsgs; ++i) {
      sizes.push_back(rng.UniformInt(1'000, 4'000'000));
      scales.push_back(rng.NextDouble() < 0.3 ? 0.25 : 1.0);
      link.SendCrossShard(sizes[i], scales[i],
                          [&flushes, &sim] { flushes.push_back(sim.Now().nanos()); }, nullptr);
    }
    sim.Run();
    ASSERT_EQ(flushes.size(), static_cast<size_t>(kMsgs));
    int64_t start = 0;
    for (int i = 0; i < kMsgs; ++i) {
      const int64_t oracle =
          OracleFinishNs(model, t, line.bytes_per_sec(), scales[i], sizes[i], SimTime(start));
      EXPECT_LE(std::llabs(flushes[i] - oracle), 1)
          << "seed " << seed << " msg " << i << " flush " << flushes[i] << " oracle " << oracle;
      start = flushes[i];  // FIFO: the next transfer starts at this flush
    }
  }
}

TEST(DynamicLinkTest, ZeroRateWindowStallsAndResumes) {
  // 1 GB/s ideal link; the schedule cuts the rate to zero for [2ms, 5ms).
  // A 4 MB transfer serializes 2 MB, stalls 3 ms, and finishes at 7 ms.
  Simulator sim;
  Link link(&sim, "l", Bandwidth::Gbps(8), TransportModel::Ideal());
  link.SetRateModel(RateModel::Piecewise(
      {{SimTime(), 1.0}, {SimTime::Millis(2), 0.0}, {SimTime::Millis(5), 1.0}}));
  SimTime flushed;
  link.SendWithFlush(4'000'000, [&] { flushed = sim.Now(); }, nullptr);
  sim.Run();
  EXPECT_EQ(flushed, SimTime::Millis(7));
}

TEST(DynamicLinkTest, CtrlScaleRepacesInFlightTransfer) {
  // 1 GB/s identity schedule, 8 MB transfer (nominal 8 ms). Halving the rate
  // at 2 ms re-paces the remaining 6 MB to 12 ms (completion 14 ms); restoring
  // it at 5 ms leaves 4.5 MB at full rate -> completion at 9.5 ms.
  Simulator sim;
  Link link(&sim, "l", Bandwidth::Gbps(8), TransportModel::Ideal());
  link.SetRateModel(RateModel());
  SimTime flushed;
  link.SendWithFlush(8'000'000, [&] { flushed = sim.Now(); }, nullptr);
  sim.Schedule(SimTime::Millis(2), [&] { link.SetCtrlScale(0.5); });
  sim.Schedule(SimTime::Millis(5), [&] { link.SetCtrlScale(1.0); });
  sim.Run();
  EXPECT_EQ(flushed, SimTime::Micros(9500));
  EXPECT_EQ(link.repace_events(), 2u);
  EXPECT_DOUBLE_EQ(link.ctrl_scale(), 1.0);
}

TEST(DynamicLinkTest, IdentityModelReproducesLegacyTimings) {
  // The dynamic path with an identity schedule must land every flush on the
  // exact nanosecond the legacy Resource path produces.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed ^ 0x51c6e1ULL);
    TransportModel t = seed % 2 == 0 ? TransportModel::Tcp() : TransportModel::Rdma();
    const Bandwidth line = Bandwidth::Gbps(rng.Uniform(1.0, 100.0));
    std::vector<Bytes> sizes;
    for (int i = 0; i < 8; ++i) {
      sizes.push_back(rng.UniformInt(1'000, 8'000'000));
    }
    auto run = [&](bool dynamic) {
      Simulator sim;
      Link link(&sim, "l", line, t);
      if (dynamic) {
        link.SetRateModel(RateModel());
      }
      std::vector<int64_t> flushes;
      for (Bytes size : sizes) {
        link.SendWithFlush(size, [&] { flushes.push_back(sim.Now().nanos()); }, nullptr);
      }
      sim.Run();
      return flushes;
    };
    EXPECT_EQ(run(false), run(true)) << "seed " << seed;
  }
}

TEST(RateControllerTest, AimdBacksOffAndRecovers) {
  Simulator sim;
  Link link(&sim, "l", Bandwidth::Gbps(8), TransportModel::Ideal());
  link.SetRateModel(RateModel());
  AimdConfig cfg;
  cfg.enable = true;
  cfg.additive_increase = 0.25;
  cfg.multiplicative_decrease = 0.5;
  cfg.min_scale = 0.2;
  RateController ctrl(&link, cfg);
  ctrl.OnLoss();
  EXPECT_DOUBLE_EQ(ctrl.scale(), 0.5);
  ctrl.OnLoss();
  ctrl.OnLoss();
  EXPECT_DOUBLE_EQ(ctrl.scale(), 0.2);  // floored at min_scale
  EXPECT_EQ(ctrl.decreases(), 3u);
  for (int i = 0; i < 10; ++i) {
    ctrl.OnAck();
  }
  EXPECT_DOUBLE_EQ(ctrl.scale(), 1.0);  // capped at full rate
  EXPECT_DOUBLE_EQ(link.ctrl_scale(), 1.0);
  EXPECT_EQ(ctrl.increases(), 4u);  // 0.2 -> 0.45 -> 0.7 -> 0.95 -> 1.0
}

// ---- zero-cost regression (dynamics disabled / enabled-but-idle) ----------

JobConfig DynJobConfig() {
  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.mode = SchedMode::kByteScheduler;
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  job.warmup_iters = 1;
  job.measure_iters = 2;
  const TunedParams tuned =
      DefaultTunedParams(job.model, job.setup.arch, job.setup.transport, job.bandwidth);
  job.partition_bytes = tuned.partition_bytes;
  job.credit_bytes = tuned.credit_bytes;
  return job;
}

struct ObsArtifacts {
  uint64_t sim_events = 0;
  std::vector<SimTime> iter_end_times;
  std::string metrics_json;
  std::string timeseries_csv;
  std::string trace_json;
};

ObsArtifacts RunWithArtifacts(const std::optional<NetDynamicsConfig>& dynamics) {
  JobConfig job = DynJobConfig();
  job.dynamics = dynamics;
  MetricsRegistry metrics;
  TimeSeriesRecorder recorder(&metrics, SimTime::Micros(200));
  TraceRecorder trace;
  job.metrics = &metrics;
  job.timeseries = &recorder;
  job.trace = &trace;
  const JobResult result = RunTrainingJob(job);
  ObsArtifacts out;
  out.sim_events = result.sim_events;
  out.iter_end_times = result.iter_end_times;
  std::ostringstream mj;
  metrics.Snapshot().WriteJson(mj);
  out.metrics_json = mj.str();
  out.timeseries_csv = recorder.ToCsv();
  std::ostringstream tj;
  trace.WriteChromeTrace(tj);
  out.trace_json = tj.str();
  return out;
}

TEST(NetDynZeroCostTest, DisabledConfigMatchesUnsetByteForByte) {
  // A present-but-disabled dynamics config must leave every observable
  // artifact byte-identical to a run without the field: event counts,
  // iteration timings, metrics snapshot, time-series CSV, and trace JSON
  // (the "pre-change golden" — the unset path is the legacy event sequence).
  const ObsArtifacts unset = RunWithArtifacts(std::nullopt);
  const ObsArtifacts disabled = RunWithArtifacts(NetDynamicsConfig{});
  EXPECT_EQ(unset.sim_events, disabled.sim_events);
  EXPECT_EQ(unset.iter_end_times, disabled.iter_end_times);
  EXPECT_EQ(unset.metrics_json, disabled.metrics_json);
  EXPECT_EQ(unset.timeseries_csv, disabled.timeseries_csv);
  EXPECT_EQ(unset.trace_json, disabled.trace_json);
}

TEST(NetDynZeroCostTest, EnabledButIdleModelsMatchDisabledTimings) {
  // force_enable installs identity rate models on every link: the dynamic
  // transmission path runs for real, but flat schedules must reproduce the
  // legacy timings exactly (same llround arithmetic), so everything except
  // the extra rate_bps time-series rows is byte-identical.
  const ObsArtifacts unset = RunWithArtifacts(std::nullopt);
  NetDynamicsConfig idle;
  idle.force_enable = true;
  const ObsArtifacts enabled = RunWithArtifacts(idle);
  EXPECT_EQ(unset.sim_events, enabled.sim_events);
  EXPECT_EQ(unset.iter_end_times, enabled.iter_end_times);
  EXPECT_EQ(unset.metrics_json, enabled.metrics_json);
  EXPECT_EQ(unset.trace_json, enabled.trace_json);
  // The CSV gains net.worker<w>.{up,down}.rate_bps probe rows and nothing
  // else: stripping them must recover the disabled-mode CSV byte-for-byte.
  std::istringstream in(enabled.timeseries_csv);
  std::ostringstream stripped;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(".rate_bps,") == std::string::npos) {
      stripped << line << '\n';
    }
  }
  EXPECT_EQ(stripped.str(), unset.timeseries_csv);
  EXPECT_NE(enabled.timeseries_csv, unset.timeseries_csv);
}

TEST(NetDynEndToEndTest, VolatileFabricRunsAndReportsRateActivity) {
  JobConfig job = DynJobConfig();
  NetDynamicsConfig dyn;
  dyn.seed = 5;
  dyn.volatility_amplitude = 0.5;
  dyn.cross_flows = 2;
  dyn.down_scale = 0.8;
  dyn.racks = 2;
  dyn.oversubscription = 2.0;
  job.dynamics = dyn;
  const JobResult volatile_run = RunTrainingJob(job);
  EXPECT_GT(volatile_run.samples_per_sec, 0.0);
  // Volatility slows training relative to the static fabric.
  JobConfig base = DynJobConfig();
  const JobResult static_run = RunTrainingJob(base);
  EXPECT_LT(volatile_run.samples_per_sec, static_run.samples_per_sec);
}

}  // namespace
}  // namespace bsched
