#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/trace.h"
#include "src/model/zoo.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

namespace bsched {
namespace {

TEST(TraceRecorderTest, RecordsSpansAndInstants) {
  TraceRecorder trace;
  EXPECT_TRUE(trace.empty());
  trace.AddSpan("gpu", "f0", SimTime::Micros(10), SimTime::Micros(40));
  trace.AddInstant("gpu", "marker", SimTime::Micros(50));
  trace.AddSpan("net", "push", SimTime::Micros(0), SimTime::Micros(100));
  EXPECT_EQ(trace.num_events(), 3u);
  EXPECT_EQ(trace.Tracks(), (std::vector<std::string>{"gpu", "net"}));
}

TEST(TraceRecorderTest, TrackBusyTime) {
  TraceRecorder trace;
  trace.AddSpan("gpu", "a", SimTime::Micros(0), SimTime::Micros(30));
  trace.AddSpan("gpu", "b", SimTime::Micros(40), SimTime::Micros(50));
  trace.AddInstant("gpu", "i", SimTime::Micros(60));  // no duration
  EXPECT_EQ(trace.TrackBusyTime("gpu"), SimTime::Micros(40));
  EXPECT_EQ(trace.TrackBusyTime("absent"), SimTime());
}

TEST(TraceRecorderTest, ChromeTraceJsonShape) {
  TraceRecorder trace;
  trace.AddSpan("track \"x\"", "op\\1", SimTime::Micros(5), SimTime::Micros(9));
  std::ostringstream os;
  trace.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4"), std::string::npos);
  // Quotes/backslashes escaped.
  EXPECT_NE(json.find("track \\\"x\\\""), std::string::npos);
  EXPECT_NE(json.find("op\\\\1"), std::string::npos);
  // Thread-name metadata present.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TraceRecorderTest, JobProducesCoherentTrace) {
  TraceRecorder trace;
  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  job.mode = SchedMode::kByteScheduler;
  job.partition_bytes = MiB(4);
  job.credit_bytes = MiB(16);
  job.warmup_iters = 1;
  job.measure_iters = 2;
  job.trace = &trace;
  const JobResult result = RunTrainingJob(job);

  // 2 workers x 3 iterations x 16 layers x (fp + bp) compute spans, plus one
  // communication span per (worker, layer, iteration).
  EXPECT_EQ(trace.num_events(), 2u * 3 * 16 * 2 + 2u * 3 * 16);
  // GPU busy time per worker equals iterations x model compute time.
  const double gpu_busy = trace.TrackBusyTime("worker0/gpu").ToSeconds();
  EXPECT_NEAR(gpu_busy, 3 * job.model.TotalComputeTime().ToSeconds(), 1e-6);
  // Tracing must not perturb the simulation.
  job.trace = nullptr;
  EXPECT_EQ(RunTrainingJob(job).avg_iter_time, result.avg_iter_time);
}

TEST(FlagsTest, KeyValueForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7.5", "--gamma", "--delta=hello"};
  Flags flags(6, argv);
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0), 7.5);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("delta", ""), "hello");
  EXPECT_FALSE(flags.Has("epsilon"));
  EXPECT_EQ(flags.GetInt("epsilon", 42), 42);
}

TEST(FlagsTest, PositionalAndErrors) {
  const char* argv[] = {"prog", "input.txt", "-x", "--ok=1", "more"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"input.txt", "more"}));
  EXPECT_EQ(flags.errors(), (std::vector<std::string>{"-x"}));
  EXPECT_TRUE(flags.Has("ok"));
}

TEST(FlagsTest, BareFlagBeforeAnotherFlag) {
  const char* argv[] = {"prog", "--verbose", "--level=2"};
  Flags flags(3, argv);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("level", 0), 2);
}

TEST(FlagsTest, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"};
  Flags flags(6, argv);
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
}

TEST(PerLayerPartitionTest, OverridesUniformSize) {
  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  job.mode = SchedMode::kByteScheduler;
  job.partition_bytes = MiB(2);
  job.credit_bytes = MiB(10);
  job.warmup_iters = 1;
  job.measure_iters = 2;
  const JobResult uniform = RunTrainingJob(job);

  // Same sizes expressed per layer: identical result.
  job.per_layer_partition.assign(job.model.layers.size(), MiB(2));
  EXPECT_EQ(RunTrainingJob(job).avg_iter_time, uniform.avg_iter_time);

  // Absurd per-layer sizes for the big fc layers: must change (hurt) timing.
  job.per_layer_partition.assign(job.model.layers.size(), MiB(2));
  job.per_layer_partition[13] = KiB(16);  // fc6 in 16 KiB pieces
  const JobResult skewed = RunTrainingJob(job);
  EXPECT_GT(skewed.avg_iter_time, uniform.avg_iter_time);
}

}  // namespace
}  // namespace bsched
