#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/trace.h"
#include "src/model/zoo.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

namespace bsched {
namespace {

TEST(TraceRecorderTest, RecordsSpansAndInstants) {
  TraceRecorder trace;
  EXPECT_TRUE(trace.empty());
  trace.AddSpan("gpu", "f0", SimTime::Micros(10), SimTime::Micros(40));
  trace.AddInstant("gpu", "marker", SimTime::Micros(50));
  trace.AddSpan("net", "push", SimTime::Micros(0), SimTime::Micros(100));
  EXPECT_EQ(trace.num_events(), 3u);
  EXPECT_EQ(trace.Tracks(), (std::vector<std::string>{"gpu", "net"}));
}

TEST(TraceRecorderTest, TrackBusyTime) {
  TraceRecorder trace;
  trace.AddSpan("gpu", "a", SimTime::Micros(0), SimTime::Micros(30));
  trace.AddSpan("gpu", "b", SimTime::Micros(40), SimTime::Micros(50));
  trace.AddInstant("gpu", "i", SimTime::Micros(60));  // no duration
  EXPECT_EQ(trace.TrackBusyTime("gpu"), SimTime::Micros(40));
  EXPECT_EQ(trace.TrackBusyTime("absent"), SimTime());
}

TEST(TraceRecorderTest, ChromeTraceJsonShape) {
  TraceRecorder trace;
  trace.AddSpan("track \"x\"", "op\\1", SimTime::Micros(5), SimTime::Micros(9));
  std::ostringstream os;
  trace.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4"), std::string::npos);
  // Quotes/backslashes escaped.
  EXPECT_NE(json.find("track \\\"x\\\""), std::string::npos);
  EXPECT_NE(json.find("op\\\\1"), std::string::npos);
  // Thread-name metadata present.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TraceRecorderTest, EscapesControlCharactersAndQuotedNames) {
  TraceRecorder trace;
  // A tensor named like an indexed parameter dict entry, plus raw control
  // characters that must never reach the JSON output unescaped.
  trace.AddSpan("net", "grad[\"fc1\"]", SimTime::Micros(0), SimTime::Micros(1));
  trace.AddSpan("net", std::string("a\nb\tc\x01"), SimTime::Micros(2), SimTime::Micros(3));
  std::ostringstream os;
  trace.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("grad[\\\"fc1\\\"]"), std::string::npos);
  EXPECT_NE(json.find("a\\nb\\tc\\u0001"), std::string::npos);
  // No raw control characters inside any JSON string (the only control
  // bytes in the file are the inter-event newlines).
  for (char c : json) {
    if (c != '\n') {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    }
  }
}

TEST(TraceRecorderTest, TrackIdsFollowFirstUseOrder) {
  TraceRecorder trace;
  trace.AddSpan("zeta", "a", SimTime::Micros(0), SimTime::Micros(1));
  trace.AddSpan("alpha", "b", SimTime::Micros(0), SimTime::Micros(1));
  trace.AddSpan("zeta", "c", SimTime::Micros(2), SimTime::Micros(3));
  std::ostringstream os;
  trace.WriteChromeTrace(os);
  const std::string json = os.str();
  // "zeta" was seen first, so it owns the lower tid; the thread_name
  // metadata is emitted in ascending tid order.
  const size_t zeta = json.find("\"name\":\"zeta\"");
  const size_t alpha = json.find("\"name\":\"alpha\"");
  ASSERT_NE(zeta, std::string::npos);
  ASSERT_NE(alpha, std::string::npos);
  EXPECT_LT(zeta, alpha);
}

TEST(TraceRecorderTest, FlowEventsAndArgs) {
  TraceRecorder trace;
  trace.AddSpan("sched", "admit", SimTime::Micros(0), SimTime::Micros(2),
                {TraceArg::Int("bytes", 4096), TraceArg::Str("tensor", "fc1")});
  trace.AddFlow("sched", "t0.p0", SimTime::Micros(2), 7, FlowPhase::kStart);
  trace.AddFlow("link", "t0.p0", SimTime::Micros(5), 7, FlowPhase::kStep);
  trace.AddFlow("sched", "t0.p0", SimTime::Micros(9), 7, FlowPhase::kEnd);
  EXPECT_EQ(trace.num_flow_events(), 3u);
  std::ostringstream os;
  trace.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Binding point "e" on the closing event; shared flow id and category.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  // Typed args rendered into the span's args object.
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"tensor\":\"fc1\""), std::string::npos);
}

TEST(TraceRecorderTest, JobProducesCoherentTrace) {
  TraceRecorder trace;
  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  job.mode = SchedMode::kByteScheduler;
  job.partition_bytes = MiB(4);
  job.credit_bytes = MiB(16);
  job.warmup_iters = 1;
  job.measure_iters = 2;
  job.trace = &trace;
  const JobResult result = RunTrainingJob(job);

  // At least: 2 workers x 3 iterations x 16 layers x (fp + bp) compute spans,
  // plus one communication span per (worker, layer, iteration). The
  // observability layer adds scheduler/link/shard detail spans and partition
  // flow arcs on top.
  EXPECT_GE(trace.num_events(), 2u * 3 * 16 * 2 + 2u * 3 * 16);
  EXPECT_GT(trace.num_flow_events(), 0u);
  // GPU busy time per worker equals iterations x model compute time.
  const double gpu_busy = trace.TrackBusyTime("worker0/gpu").ToSeconds();
  EXPECT_NEAR(gpu_busy, 3 * job.model.TotalComputeTime().ToSeconds(), 1e-6);
  // Tracing must not perturb the simulation.
  job.trace = nullptr;
  EXPECT_EQ(RunTrainingJob(job).avg_iter_time, result.avg_iter_time);
}

TEST(FlagsTest, KeyValueForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7.5", "--gamma", "--delta=hello"};
  Flags flags(6, argv);
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0), 7.5);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("delta", ""), "hello");
  EXPECT_FALSE(flags.Has("epsilon"));
  EXPECT_EQ(flags.GetInt("epsilon", 42), 42);
}

TEST(FlagsTest, PositionalAndErrors) {
  const char* argv[] = {"prog", "input.txt", "-x", "--ok=1", "more"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"input.txt", "more"}));
  EXPECT_EQ(flags.errors(), (std::vector<std::string>{"-x"}));
  EXPECT_TRUE(flags.Has("ok"));
}

TEST(FlagsTest, BareFlagBeforeAnotherFlag) {
  const char* argv[] = {"prog", "--verbose", "--level=2"};
  Flags flags(3, argv);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("level", 0), 2);
}

TEST(FlagsTest, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"};
  Flags flags(6, argv);
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
}

TEST(ObsFlagsTest, DisabledByDefault) {
  const char* argv[] = {"prog", "--jobs=4"};
  const ObsFlags obs = ParseObsFlags(Flags(2, argv));
  EXPECT_FALSE(obs.enabled());
  EXPECT_TRUE(obs.trace_path.empty());
  EXPECT_TRUE(obs.metrics_path.empty());
}

TEST(ObsFlagsTest, ExplicitPaths) {
  const char* argv[] = {"prog", "--trace=/tmp/t.json", "--metrics=/tmp/m.json"};
  const ObsFlags obs = ParseObsFlags(Flags(3, argv));
  EXPECT_TRUE(obs.enabled());
  EXPECT_EQ(obs.trace_path, "/tmp/t.json");
  EXPECT_EQ(obs.metrics_path, "/tmp/m.json");
}

TEST(ObsFlagsTest, BareFlagsUseDefaults) {
  const char* argv[] = {"prog", "--trace"};
  const ObsFlags obs = ParseObsFlags(Flags(2, argv));
  EXPECT_EQ(obs.trace_path, "trace.json");
  EXPECT_TRUE(obs.metrics_path.empty());
}

TEST(ObsFlagsTest, ObsEnablesBoth) {
  const char* argv[] = {"prog", "--obs"};
  const ObsFlags obs = ParseObsFlags(Flags(2, argv));
  EXPECT_EQ(obs.trace_path, "trace.json");
  EXPECT_EQ(obs.metrics_path, "metrics.json");
}

TEST(ObsFlagsTest, ObsKeepsExplicitPaths) {
  const char* argv[] = {"prog", "--obs", "--trace=custom.json"};
  const ObsFlags obs = ParseObsFlags(Flags(3, argv));
  EXPECT_EQ(obs.trace_path, "custom.json");
  EXPECT_EQ(obs.metrics_path, "metrics.json");
}

TEST(PerLayerPartitionTest, OverridesUniformSize) {
  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  job.mode = SchedMode::kByteScheduler;
  job.partition_bytes = MiB(2);
  job.credit_bytes = MiB(10);
  job.warmup_iters = 1;
  job.measure_iters = 2;
  const JobResult uniform = RunTrainingJob(job);

  // Same sizes expressed per layer: identical result.
  job.per_layer_partition.assign(job.model.layers.size(), MiB(2));
  EXPECT_EQ(RunTrainingJob(job).avg_iter_time, uniform.avg_iter_time);

  // Absurd per-layer sizes for the big fc layers: must change (hurt) timing.
  job.per_layer_partition.assign(job.model.layers.size(), MiB(2));
  job.per_layer_partition[13] = KiB(16);  // fc6 in 16 KiB pieces
  const JobResult skewed = RunTrainingJob(job);
  EXPECT_GT(skewed.avg_iter_time, uniform.avg_iter_time);
}

}  // namespace
}  // namespace bsched
