// Differential tests for the event-queue policies: the timer wheel and the
// legacy binary heap must be observationally identical, both at the raw
// EventQueue level (pop order of arbitrary entry mixes, including cancelled
// entries and far-future timers) and at the Simulator level (fired-callback
// order, PendingEvents/QueuedEvents accounting, skip/compaction counters)
// under randomized schedule/cancel/compact workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

// ---------------------------------------------------------------------------
// Raw queue level: both policies must yield the exact same entry stream.

std::vector<EventEntry> DrainAll(EventQueue* q) {
  std::vector<EventEntry> out;
  EventEntry e;
  while (q->PopEarliest(&e)) {
    out.push_back(e);
  }
  return out;
}

void ExpectSameStream(const std::vector<EventEntry>& a,
                      const std::vector<EventEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].when.nanos(), b[i].when.nanos()) << "at index " << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << "at index " << i;
    EXPECT_EQ(a[i].slot, b[i].slot) << "at index " << i;
  }
}

TEST(EventQueueDifferentialTest, RandomizedInterleavedPushPop) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed * 1000003 + 17);
    HeapEventQueue heap;
    TimerWheelEventQueue wheel;
    uint64_t seq = 0;
    std::vector<EventEntry> heap_popped, wheel_popped;
    int64_t low_water = 0;  // pops advance time; pushes must not go backwards
    for (int op = 0; op < 20000; ++op) {
      if (rng.NextDouble() < 0.6 || heap.size() == 0) {
        // Mix of near (ns..us), far (ms), and very far (minutes+) timers, the
        // last landing beyond the wheel's 2^40ns span to force overflow.
        int64_t when;
        const double r = rng.NextDouble();
        if (r < 0.70) {
          when = low_water + rng.UniformInt(0, 4000);
        } else if (r < 0.90) {
          when = low_water + rng.UniformInt(0, 50'000'000);
        } else {
          when = low_water + rng.UniformInt(0, int64_t{1} << 42);
        }
        EventEntry e{SimTime::Nanos(when), seq, seq, static_cast<uint32_t>(seq)};
        ++seq;
        heap.Push(e);
        wheel.Push(e);
      } else {
        EventEntry he, we;
        ASSERT_TRUE(heap.PopEarliest(&he));
        ASSERT_TRUE(wheel.PopEarliest(&we));
        EXPECT_EQ(he.when.nanos(), we.when.nanos());
        EXPECT_EQ(he.seq, we.seq);
        low_water = he.when.nanos();
        heap_popped.push_back(he);
        wheel_popped.push_back(we);
      }
      ASSERT_EQ(heap.size(), wheel.size());
    }
    auto heap_rest = DrainAll(&heap);
    auto wheel_rest = DrainAll(&wheel);
    ExpectSameStream(heap_popped, wheel_popped);
    ExpectSameStream(heap_rest, wheel_rest);
  }
}

TEST(EventQueueDifferentialTest, SameTimestampTiesPopInSeqOrder) {
  HeapEventQueue heap;
  TimerWheelEventQueue wheel;
  // Many entries at identical timestamps, pushed out of seq order.
  std::vector<uint64_t> seqs;
  for (uint64_t s = 0; s < 64; ++s) {
    seqs.push_back(s);
  }
  Rng rng(7);
  for (size_t i = seqs.size(); i > 1; --i) {
    std::swap(seqs[i - 1], seqs[rng.UniformInt(0, static_cast<int64_t>(i) - 1)]);
  }
  for (uint64_t s : seqs) {
    EventEntry e{SimTime::Micros(5), s, 0, static_cast<uint32_t>(s)};
    heap.Push(e);
    wheel.Push(e);
  }
  auto hp = DrainAll(&heap);
  auto wp = DrainAll(&wheel);
  ASSERT_EQ(hp.size(), 64u);
  for (uint64_t s = 0; s < 64; ++s) {
    EXPECT_EQ(hp[s].seq, s);
    EXPECT_EQ(wp[s].seq, s);
  }
}

TEST(EventQueueDifferentialTest, CompactDropsExactlyDeadEntries) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed + 99);
    HeapEventQueue heap;
    TimerWheelEventQueue wheel;
    std::vector<bool> dead;
    for (uint64_t s = 0; s < 3000; ++s) {
      int64_t when = rng.UniformInt(0, int64_t{1} << 41);  // spans all levels
      EventEntry e{SimTime::Nanos(when), s, 0, static_cast<uint32_t>(s)};
      heap.Push(e);
      wheel.Push(e);
      dead.push_back(rng.NextDouble() < 0.7);
    }
    auto is_dead = [&dead](const EventEntry& e) { return dead[e.seq]; };
    heap.Compact(is_dead);
    wheel.Compact(is_dead);
    ASSERT_EQ(heap.size(), wheel.size());
    auto hp = DrainAll(&heap);
    auto wp = DrainAll(&wheel);
    ExpectSameStream(hp, wp);
    for (const EventEntry& e : hp) {
      EXPECT_FALSE(dead[e.seq]);
    }
  }
}

TEST(EventQueueDifferentialTest, PeekMatchesPopAndDoesNotConsume) {
  HeapEventQueue heap;
  TimerWheelEventQueue wheel;
  Rng rng(42);
  for (uint64_t s = 0; s < 500; ++s) {
    EventEntry e{SimTime::Nanos(rng.UniformInt(0, 10'000'000)), s, 0,
                 static_cast<uint32_t>(s)};
    heap.Push(e);
    wheel.Push(e);
  }
  EventEntry pk, pp;
  while (wheel.size() > 0) {
    ASSERT_TRUE(wheel.PeekEarliest(&pk));
    ASSERT_TRUE(wheel.PeekEarliest(&pp));  // repeated peek: same entry
    EXPECT_EQ(pk.seq, pp.seq);
    const size_t before = wheel.size();
    ASSERT_TRUE(wheel.PopEarliest(&pp));
    EXPECT_EQ(pk.seq, pp.seq);
    EXPECT_EQ(pk.when.nanos(), pp.when.nanos());
    EXPECT_EQ(wheel.size(), before - 1);
    EventEntry hh;
    ASSERT_TRUE(heap.PopEarliest(&hh));
    EXPECT_EQ(hh.seq, pp.seq);
  }
}

// Regression guard for the horizon/normalize interplay: a dense run of
// events right below a level boundary followed by one just above it must not
// skip the entry parked in the upper level's cursor slot.
TEST(EventQueueTest, WheelDoesNotSkipAcrossGranuleBoundaries) {
  TimerWheelEventQueue wheel;
  uint64_t seq = 0;
  // Entry just past the 2^16 boundary (level-1 territory), then fill the
  // level-0 ring right up to the boundary and drain everything.
  std::vector<int64_t> whens = {(int64_t{1} << 16) + 10};
  for (int64_t t = 0; t < (int64_t{1} << 16); t += 997) {
    whens.push_back(t);
  }
  // And one far entry in level-2/3 land plus one in overflow.
  whens.push_back((int64_t{1} << 33) + 5);
  whens.push_back((int64_t{1} << 41) + 123);
  for (int64_t w : whens) {
    wheel.Push(EventEntry{SimTime::Nanos(w), seq++, 0, 0});
  }
  auto popped = DrainAll(&wheel);
  ASSERT_EQ(popped.size(), whens.size());
  std::sort(whens.begin(), whens.end());
  for (size_t i = 0; i < whens.size(); ++i) {
    EXPECT_EQ(popped[i].when.nanos(), whens[i]);
  }
}

// ---------------------------------------------------------------------------
// Simulator level: both policies drive identical event trajectories under a
// randomized schedule/cancel/run workload, with identical accounting.

struct SimScript {
  // Records everything observable about one simulator run.
  std::vector<int> fired;
  std::vector<size_t> pending_after_op;
  std::vector<size_t> queued_after_op;
  uint64_t processed = 0;
  uint64_t compactions = 0;
  uint64_t skipped = 0;
  int64_t final_now = 0;

  bool operator==(const SimScript& o) const {
    return fired == o.fired && pending_after_op == o.pending_after_op &&
           queued_after_op == o.queued_after_op && processed == o.processed &&
           compactions == o.compactions && skipped == o.skipped &&
           final_now == o.final_now;
  }
};

SimScript RunRandomWorkload(QueuePolicy policy, uint64_t seed) {
  Simulator sim(policy);
  Rng rng(seed);
  SimScript script;
  std::vector<EventHandle> handles;
  int next_id = 0;
  for (int op = 0; op < 4000; ++op) {
    const double r = rng.NextDouble();
    if (r < 0.45) {
      // Schedule with a mix of tie-heavy, near, far, and overflow delays;
      // the callback occasionally schedules a follow-up or cancels a peer.
      int64_t delay;
      const double d = rng.NextDouble();
      if (d < 0.3) {
        delay = 100;  // deliberate same-timestamp ties
      } else if (d < 0.8) {
        delay = rng.UniformInt(0, 100'000);
      } else if (d < 0.95) {
        delay = rng.UniformInt(0, 40'000'000);
      } else {
        delay = rng.UniformInt(int64_t{1} << 40, int64_t{1} << 42);
      }
      const int id = next_id++;
      const bool chain = rng.NextDouble() < 0.25;
      handles.push_back(sim.Schedule(SimTime::Nanos(delay), [&script, &sim, id, chain] {
        script.fired.push_back(id);
        if (chain) {
          const int sub = -id - 1;
          sim.Schedule(SimTime::Nanos(50), [&script, sub] { script.fired.push_back(sub); });
        }
      }));
    } else if (r < 0.75 && !handles.empty()) {
      handles[rng.UniformInt(0, static_cast<int64_t>(handles.size()) - 1)].Cancel();
    } else if (r < 0.9) {
      sim.Step();
    } else {
      // Bounded run: deadline a little past now, so some events fire and the
      // rest stay queued.
      sim.Run(sim.Now() + SimTime::Nanos(rng.UniformInt(0, 200'000)));
    }
    script.pending_after_op.push_back(sim.PendingEvents());
    script.queued_after_op.push_back(sim.QueuedEvents());
  }
  sim.Run();
  script.processed = sim.processed_events();
  script.compactions = sim.compactions();
  script.skipped = sim.skipped_cancelled();
  script.final_now = sim.Now().nanos();
  EXPECT_TRUE(sim.Empty());
  EXPECT_EQ(sim.PendingEvents(), 0u);
  return script;
}

TEST(SimulatorDifferentialTest, PoliciesProduceIdenticalTrajectories) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SimScript wheel = RunRandomWorkload(QueuePolicy::kTimerWheel, seed);
    SimScript heap = RunRandomWorkload(QueuePolicy::kBinaryHeap, seed);
    EXPECT_TRUE(wheel == heap) << "divergence at seed " << seed;
  }
}

TEST(SimulatorDifferentialTest, CancellationSemanticsMatch) {
  for (QueuePolicy policy : {QueuePolicy::kTimerWheel, QueuePolicy::kBinaryHeap}) {
    Simulator sim(policy);
    int fired = 0;
    EventHandle h = sim.Schedule(SimTime::Micros(10), [&] { ++fired; });
    sim.Schedule(SimTime::Micros(20), [&] { ++fired; });
    h.Cancel();
    h.Cancel();  // idempotent
    EXPECT_EQ(sim.PendingEvents(), 1u);
    EXPECT_EQ(sim.QueuedEvents(), 2u);  // cancelled entry still queued (lazy)
    sim.Run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.skipped_cancelled(), 1u);
  }
}

}  // namespace
}  // namespace bsched
