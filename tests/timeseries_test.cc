// Time-series recorder + critical-path analyzer suite: sampling cadence and
// stop semantics, (time, scope) merge determinism, zero perturbation of the
// simulated trajectory, byte-identical CSV across sweep worker counts, and
// the per-iteration longest-path decomposition — synthetic inputs, a round
// trip through the Chrome-trace loader, and a real fig04-style run that must
// decompose >= 95% of every iteration's wall clock.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "src/common/trace.h"
#include "src/exec/sweep_runner.h"
#include "src/model/zoo.h"
#include "src/obs/critical_path.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

// ---- TimeSeriesRecorder ---------------------------------------------------

TEST(TimeSeriesRecorderTest, SamplesCounterAtCadenceUntilInactive) {
  Simulator sim;
  MetricsRegistry registry;
  Counter* c = registry.counter("c");
  sim.Schedule(SimTime::Micros(150), [c] { c->Inc(5); });
  sim.Schedule(SimTime::Micros(350), [c] { c->Inc(7); });

  TimeSeriesRecorder rec(&registry, SimTime::Micros(100));
  const int scope =
      rec.AddScope("s", &sim, [&sim] { return sim.Now() < SimTime::Micros(500); });
  rec.SampleCounter(scope, "c");
  rec.Start();
  sim.Run();

  // Ticks at 100..500us; the 500us tick sees the predicate go false, records
  // its final row, and stops the chain.
  EXPECT_EQ(rec.total_ticks(), 5u);
  EXPECT_EQ(rec.ToCsv(),
            "time_ns,scope,metric,kind,value,count,sum,p50,p95,p99\n"
            "100000,s,c,counter,0,,,,,\n"
            "200000,s,c,counter,5,,,,,\n"
            "300000,s,c,counter,5,,,,,\n"
            "400000,s,c,counter,12,,,,,\n"
            "500000,s,c,counter,12,,,,,\n");
}

TEST(TimeSeriesRecorderTest, SketchRowsCarryPerWindowDeltas) {
  Simulator sim;
  MetricsRegistry registry;
  Histogram* h = registry.histogram("h");
  sim.Schedule(SimTime::Micros(50), [h] {
    h->Observe(100);
    h->Observe(100);
  });
  sim.Schedule(SimTime::Micros(250), [h] { h->Observe(1000); });

  TimeSeriesRecorder rec(&registry, SimTime::Micros(100));
  const int scope =
      rec.AddScope("s", &sim, [&sim] { return sim.Now() < SimTime::Micros(300); });
  rec.SampleSketch(scope, "h");
  rec.Start();
  sim.Run();

  const std::string csv = rec.ToCsv();
  // Window 1: two observations of 100. Window 2: empty (zeros, not repeats of
  // the cumulative state). Window 3: one observation of 1000.
  EXPECT_NE(csv.find("100000,s,h,sketch,,2,200,"), std::string::npos) << csv;
  EXPECT_NE(csv.find("200000,s,h,sketch,,0,0,0,0,0\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("300000,s,h,sketch,,1,1000,"), std::string::npos) << csv;
}

TEST(TimeSeriesRecorderTest, MergesScopesInTimeThenRegistrationOrder) {
  // Two scopes on two simulators run in opposite order; the merged CSV must
  // come out in (time, scope) order regardless.
  Simulator sim_a;
  Simulator sim_b;
  MetricsRegistry registry;
  TimeSeriesRecorder rec(&registry, SimTime::Micros(100));
  const int a =
      rec.AddScope("a", &sim_a, [&sim_a] { return sim_a.Now() < SimTime::Micros(200); });
  const int b =
      rec.AddScope("b", &sim_b, [&sim_b] { return sim_b.Now() < SimTime::Micros(200); });
  rec.SampleCounter(a, "c");
  rec.SampleCounter(b, "c");
  rec.Start();
  sim_b.Run();
  sim_a.Run();
  EXPECT_EQ(rec.ToCsv(),
            "time_ns,scope,metric,kind,value,count,sum,p50,p95,p99\n"
            "100000,a,c,counter,0,,,,,\n"
            "100000,b,c,counter,0,,,,,\n"
            "200000,a,c,counter,0,,,,,\n"
            "200000,b,c,counter,0,,,,,\n");
}

JobConfig SmallSampledJob() {
  JobConfig job = bench::WithMode(
      bench::MakeJob(Vgg16(), Setup::MxnetPsTcp(), /*num_machines=*/2, Bandwidth::Gbps(10)),
      SchedMode::kByteScheduler);
  job.warmup_iters = 1;
  job.measure_iters = 2;
  return job;
}

TEST(TimeSeriesRecorderTest, SamplingNeverPerturbsIterationTimings) {
  const JobResult plain = RunTrainingJob(SmallSampledJob());

  MetricsRegistry metrics;
  TimeSeriesRecorder rec(&metrics, SimTime::Micros(100));
  JobConfig job = SmallSampledJob();
  job.metrics = &metrics;
  job.timeseries = &rec;
  const JobResult sampled = RunTrainingJob(job);

  // Ticks are real simulator events, so the event total grows — but they only
  // read metric state, so every timing observable is bit-identical.
  EXPECT_GT(rec.total_ticks(), 0u);
  EXPECT_GT(sampled.sim_events, plain.sim_events);
  EXPECT_EQ(plain.avg_iter_time, sampled.avg_iter_time);
  ASSERT_EQ(plain.iter_end_times.size(), sampled.iter_end_times.size());
  for (size_t i = 0; i < plain.iter_end_times.size(); ++i) {
    EXPECT_EQ(plain.iter_end_times[i], sampled.iter_end_times[i]) << "iter " << i;
  }
}

TEST(TimeSeriesRecorderTest, CsvIsByteIdenticalAcrossSweepWorkerCounts) {
  // Three instrumented copies of the same job, swept at --jobs 1 vs --jobs 4:
  // every copy's CSV must be byte-identical across both sweeps.
  auto sweep = [](int jobs) {
    SweepRunner runner(jobs);
    return runner.ParallelFor(3, [](size_t) {
      MetricsRegistry metrics;
      TimeSeriesRecorder rec(&metrics, SimTime::Micros(100));
      JobConfig job = SmallSampledJob();
      job.metrics = &metrics;
      job.timeseries = &rec;
      RunTrainingJob(job);
      return rec.ToCsv();
    });
  };
  const std::vector<std::string> serial = sweep(1);
  const std::vector<std::string> parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_FALSE(serial[0].empty());
  EXPECT_NE(serial[0].find(",w0,"), std::string::npos);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "job " << i;
  }
  EXPECT_EQ(serial[0], serial[1]);  // identical configs -> identical series
}

// ---- critical-path analyzer -----------------------------------------------

obs::CpSpan Span(const std::string& track, const std::string& name, double ts, double dur,
                 int attempt = 0) {
  obs::CpSpan s;
  s.track = track;
  s.name = name;
  s.ts_us = ts;
  s.dur_us = dur;
  s.attempt = attempt;
  return s;
}

obs::CpFlowPoint Point(const std::string& track, const std::string& name, double ts, char ph) {
  obs::CpFlowPoint p;
  p.track = track;
  p.name = name;
  p.ts_us = ts;
  p.ph = ph;
  return p;
}

TEST(CriticalPathTest, DecomposesSyntheticIterationFully) {
  obs::CpInput in;
  // Worker 0 finishes early; worker 1 is critical: compute [0,10)+[30,40),
  // credit-wait [10,26), uplink transit [26,30).
  in.spans.push_back(Span("worker0/gpu", "f0_0", 0, 5));
  in.spans.push_back(Span("worker0/gpu", "b0_0", 5, 10));
  in.spans.push_back(Span("worker1/gpu", "f0_0", 0, 10));
  in.spans.push_back(Span("sched/w1", "t3.p0.credit_wait", 10, 16));
  in.spans.push_back(Span("net/worker1.up", "t3.p0.push", 26, 4));
  in.spans.push_back(Span("worker1/gpu", "b0_0", 30, 10));

  const obs::CriticalPathReport report = obs::AnalyzeCriticalPath(in, 5);
  ASSERT_EQ(report.iterations.size(), 1u);
  const obs::IterationBreakdown& it = report.iterations[0];
  EXPECT_EQ(it.iter, 0);
  EXPECT_EQ(it.critical_worker, 1);
  EXPECT_DOUBLE_EQ(it.start_us, 0.0);
  EXPECT_DOUBLE_EQ(it.end_us, 40.0);
  EXPECT_DOUBLE_EQ(it.compute_us, 20.0);
  EXPECT_DOUBLE_EQ(it.credit_wait_us, 16.0);
  EXPECT_DOUBLE_EQ(it.transport_us, 4.0);
  EXPECT_DOUBLE_EQ(it.recovery_us, 0.0);
  EXPECT_DOUBLE_EQ(it.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(report.MinCoverage(), 1.0);
}

TEST(CriticalPathTest, AttributesRetryWaitsToRecovery) {
  obs::CpInput in;
  in.spans.push_back(Span("worker0/gpu", "f0_0", 0, 10));
  in.spans.push_back(Span("sched/w0", "t1.p0.wait", 10, 8, /*attempt=*/1));
  in.spans.push_back(Span("sched/w0", "t2.p0.wait", 18, 2, /*attempt=*/0));
  in.spans.push_back(Span("worker0/gpu", "b0_0", 20, 10));

  const obs::CriticalPathReport report = obs::AnalyzeCriticalPath(in, 5);
  ASSERT_EQ(report.iterations.size(), 1u);
  EXPECT_DOUBLE_EQ(report.iterations[0].compute_us, 20.0);
  EXPECT_DOUBLE_EQ(report.iterations[0].recovery_us, 8.0);
  // Attempt-0 waits are ordinary pipeline latency, i.e. transport.
  EXPECT_DOUBLE_EQ(report.iterations[0].transport_us, 2.0);
  EXPECT_DOUBLE_EQ(report.iterations[0].coverage(), 1.0);
}

TEST(CriticalPathTest, SharedPsSpansCountAsTransportWithoutDoubleCounting) {
  obs::CpInput in;
  in.spans.push_back(Span("worker0/gpu", "f0_0", 0, 10));
  // The shard's aggregation overlaps compute [5,10); only [10,20) may count.
  in.spans.push_back(Span("ps/shard0", "t0.p0.update", 5, 15));
  in.spans.push_back(Span("worker0/gpu", "b0_0", 20, 10));

  const obs::CriticalPathReport report = obs::AnalyzeCriticalPath(in, 5);
  ASSERT_EQ(report.iterations.size(), 1u);
  EXPECT_DOUBLE_EQ(report.iterations[0].compute_us, 20.0);
  EXPECT_DOUBLE_EQ(report.iterations[0].transport_us, 10.0);
  EXPECT_DOUBLE_EQ(report.iterations[0].coverage(), 1.0);
}

TEST(CriticalPathTest, SplitsConsecutiveIterationsAtSlowestBpEnd) {
  obs::CpInput in;
  in.spans.push_back(Span("worker0/gpu", "b0_0", 0, 10));   // iter 0 ends at 10
  in.spans.push_back(Span("worker0/gpu", "f1_0", 10, 5));
  in.spans.push_back(Span("worker0/gpu", "b1_0", 15, 10));  // iter 1 ends at 25
  const obs::CriticalPathReport report = obs::AnalyzeCriticalPath(in, 5);
  ASSERT_EQ(report.iterations.size(), 2u);
  EXPECT_DOUBLE_EQ(report.iterations[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(report.iterations[0].end_us, 10.0);
  EXPECT_DOUBLE_EQ(report.iterations[1].start_us, 10.0);
  EXPECT_DOUBLE_EQ(report.iterations[1].end_us, 25.0);
  EXPECT_DOUBLE_EQ(report.iterations[1].compute_us, 15.0);
}

TEST(CriticalPathTest, RanksStragglerPartitionsByArcDuration) {
  obs::CpInput in;
  in.spans.push_back(Span("worker0/gpu", "b0_0", 0, 100));
  in.flows[7] = {Point("sched/w0", "t1.p0.admit", 10, 's'),
                 Point("net/worker0.up", "t1.p0.push", 90, 'f')};
  in.flows[8] = {Point("sched/w0", "t2.p0.admit", 20, 's'),
                 Point("net/worker0.up", "t2.p0.push", 50, 'f')};
  in.flows[9] = {Point("sched/w0", "lone", 5, 's')};  // single point: no arc

  const obs::CriticalPathReport report = obs::AnalyzeCriticalPath(in, 1);
  ASSERT_EQ(report.stragglers.size(), 1u);  // top_k = 1 keeps only the worst
  EXPECT_EQ(report.stragglers[0].flow_id, 7u);
  EXPECT_EQ(report.stragglers[0].name, "t1.p0.admit");
  EXPECT_EQ(report.stragglers[0].iter, 0);
  EXPECT_DOUBLE_EQ(report.stragglers[0].duration_us(), 80.0);
}

TEST(CriticalPathTest, CsvHasHeaderAndOneRowPerIteration) {
  obs::CpInput in;
  in.spans.push_back(Span("worker0/gpu", "b0_0", 0, 10));
  in.spans.push_back(Span("worker0/gpu", "b1_0", 10, 10));
  const obs::CriticalPathReport report = obs::AnalyzeCriticalPath(in, 5);
  std::ostringstream os;
  obs::WriteCriticalPathCsv(report, os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("iter,critical_worker,start_us,end_us,total_us,compute_us,"
                      "transport_us,credit_wait_us,recovery_us,coverage\n",
                      0),
            0u);
  size_t lines = 0;
  for (char ch : csv) {
    lines += ch == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 3u);  // header + 2 iterations
  EXPECT_NE(csv.find("\n0,0,"), std::string::npos);
  EXPECT_NE(csv.find("\n1,0,"), std::string::npos);
}

TEST(CriticalPathTest, RoundTripsThroughChromeTraceJson) {
  TraceRecorder trace;
  trace.AddSpan("worker0/gpu", "f0_0", SimTime::Micros(0), SimTime::Micros(10));
  trace.AddSpan("sched/w0", "t1.p0.wait", SimTime::Micros(10), SimTime::Micros(14),
                {TraceArg::Int("attempt", 1)});
  trace.AddSpan("worker0/gpu", "b0_0", SimTime::Micros(14), SimTime::Micros(24));
  trace.AddFlow("sched/w0", "t1.p0.admit", SimTime::Micros(10), 42, FlowPhase::kStart);
  trace.AddFlow("net/worker0.up", "t1.p0.push", SimTime::Micros(14), 42, FlowPhase::kEnd);
  std::ostringstream os;
  trace.WriteChromeTrace(os);

  obs::CpInput in;
  std::string error;
  ASSERT_TRUE(obs::LoadCpInputFromChromeTrace(os.str(), &in, &error)) << error;
  ASSERT_EQ(in.spans.size(), 3u);
  ASSERT_EQ(in.flows.count(42), 1u);
  EXPECT_EQ(in.flows.at(42).size(), 2u);

  const obs::CriticalPathReport report = obs::AnalyzeCriticalPath(in, 5);
  ASSERT_EQ(report.iterations.size(), 1u);
  EXPECT_DOUBLE_EQ(report.iterations[0].compute_us, 20.0);
  EXPECT_DOUBLE_EQ(report.iterations[0].recovery_us, 4.0);
  EXPECT_DOUBLE_EQ(report.iterations[0].coverage(), 1.0);
  ASSERT_EQ(report.stragglers.size(), 1u);
  EXPECT_EQ(report.stragglers[0].name, "t1.p0.admit");
}

TEST(CriticalPathTest, Fig04StyleRunCoverageIsAtLeast95Percent) {
  // The acceptance run: trace a fig04-style job (VGG16, MXNet PS TCP,
  // 10 Gbps — the bandwidth-starved regime where credit waits appear), replay
  // it through the Chrome-trace loader, and require the decomposition to
  // explain >= 95% of every iteration's wall clock.
  TraceRecorder trace;
  JobConfig job = bench::WithMode(
      bench::MakeJob(Vgg16(), Setup::MxnetPsTcp(), /*num_machines=*/4, Bandwidth::Gbps(10)),
      SchedMode::kByteScheduler);
  job.warmup_iters = 1;
  job.measure_iters = 2;
  job.trace = &trace;
  RunTrainingJob(job);

  std::ostringstream os;
  trace.WriteChromeTrace(os);
  obs::CpInput in;
  std::string error;
  ASSERT_TRUE(obs::LoadCpInputFromChromeTrace(os.str(), &in, &error)) << error;

  const obs::CriticalPathReport report = obs::AnalyzeCriticalPath(in, 5);
  ASSERT_EQ(report.iterations.size(), 3u);  // 1 warmup + 2 measured
  for (const obs::IterationBreakdown& it : report.iterations) {
    EXPECT_GT(it.compute_us, 0.0) << "iter " << it.iter;
    EXPECT_GT(it.transport_us + it.credit_wait_us, 0.0) << "iter " << it.iter;
    EXPECT_GE(it.coverage(), 0.95) << "iter " << it.iter;
  }
  EXPECT_GE(report.MinCoverage(), 0.95);
  EXPECT_FALSE(report.stragglers.empty());
}

}  // namespace
}  // namespace bsched
