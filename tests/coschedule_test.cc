#include <gtest/gtest.h>

#include <vector>

#include "src/model/zoo.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

namespace bsched {
namespace {

JobConfig PsJob(const ModelProfile& model, int machines) {
  JobConfig job;
  job.model = model;
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = machines;
  job.bandwidth = Bandwidth::Gbps(100);
  job.mode = SchedMode::kByteScheduler;
  const TunedParams tuned =
      DefaultTunedParams(model, ArchType::kPs, job.setup.transport, job.bandwidth);
  job.partition_bytes = tuned.partition_bytes;
  job.credit_bytes = tuned.credit_bytes;
  job.warmup_iters = 2;
  job.measure_iters = 3;
  return job;
}

TEST(CoscheduleTest, SingleJobMatchesStandaloneRun) {
  JobConfig job = PsJob(Vgg16(), 2);
  const JobResult alone = RunTrainingJob(job);
  const std::vector<JobResult> co =
      RunCoscheduledPsJobs({job}, CoschedulePolicy::kIndependent);
  ASSERT_EQ(co.size(), 1u);
  EXPECT_EQ(co[0].avg_iter_time, alone.avg_iter_time);
}

TEST(CoscheduleTest, SharingSlowsBothJobs) {
  JobConfig a = PsJob(Vgg16(), 2);
  JobConfig b = PsJob(Transformer(), 2);
  const double a_alone = RunTrainingJob(a).samples_per_sec;
  const double b_alone = RunTrainingJob(b).samples_per_sec;
  const auto co = RunCoscheduledPsJobs({a, b}, CoschedulePolicy::kIndependent);
  // Two communication-heavy jobs on one fabric: both must lose speed.
  EXPECT_LT(co[0].samples_per_sec, a_alone);
  EXPECT_LT(co[1].samples_per_sec, b_alone);
}

TEST(CoscheduleTest, DeterministicPerPolicy) {
  JobConfig a = PsJob(Vgg16(), 2);
  JobConfig b = PsJob(ResNet50(), 2);
  for (CoschedulePolicy policy :
       {CoschedulePolicy::kIndependent, CoschedulePolicy::kCoordinated}) {
    const auto r1 = RunCoscheduledPsJobs({a, b}, policy);
    const auto r2 = RunCoscheduledPsJobs({a, b}, policy);
    EXPECT_EQ(r1[0].avg_iter_time, r2[0].avg_iter_time);
    EXPECT_EQ(r1[1].avg_iter_time, r2[1].avg_iter_time);
  }
}

TEST(CoscheduleTest, CoordinatedHelpsCombinedProgress) {
  // Two identical comm-heavy jobs: coordination (global layer priority on a
  // shared Core) should not hurt, and typically improves the slower job.
  JobConfig a = PsJob(Vgg16(), 2);
  JobConfig b = PsJob(Vgg16(), 2);
  const auto indep = RunCoscheduledPsJobs({a, b}, CoschedulePolicy::kIndependent);
  const auto coord = RunCoscheduledPsJobs({a, b}, CoschedulePolicy::kCoordinated);
  const double indep_worst = std::min(indep[0].samples_per_sec, indep[1].samples_per_sec);
  const double coord_worst = std::min(coord[0].samples_per_sec, coord[1].samples_per_sec);
  EXPECT_GE(coord_worst, indep_worst * 0.95);
}

TEST(CoscheduleTest, ThreeJobsRunToCompletion) {
  JobConfig a = PsJob(Vgg16(), 2);
  JobConfig b = PsJob(ResNet50(), 2);
  JobConfig c = PsJob(Transformer(), 2);
  const auto results = RunCoscheduledPsJobs({a, b, c}, CoschedulePolicy::kCoordinated);
  ASSERT_EQ(results.size(), 3u);
  for (const JobResult& r : results) {
    EXPECT_GT(r.samples_per_sec, 0.0);
  }
}

TEST(CoscheduleTest, ComputeBoundJobBarelyAffected) {
  // ResNet50 at 100 Gbps is compute-bound; sharing the fabric with VGG16
  // should cost it far less than it costs VGG16.
  JobConfig heavy = PsJob(Vgg16(), 2);
  JobConfig light = PsJob(ResNet50(), 2);
  const double light_alone = RunTrainingJob(light).samples_per_sec;
  const auto co = RunCoscheduledPsJobs({heavy, light}, CoschedulePolicy::kCoordinated);
  EXPECT_GT(co[1].samples_per_sec, light_alone * 0.6);
}

}  // namespace
}  // namespace bsched
