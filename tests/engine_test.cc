#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/engine/dag_engine.h"
#include "src/engine/imperative_engine.h"
#include "src/engine/proxy.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

// Op body that occupies virtual time, like a GPU kernel.
DagEngine::OpFn TimedOp(Simulator* sim, SimTime duration, std::vector<std::string>* log,
                        std::string name) {
  return [sim, duration, log, name = std::move(name)](DagEngine::Done done) {
    sim->Schedule(duration, [log, name, done = std::move(done)] {
      log->push_back(name);
      done();
    });
  };
}

TEST(DagEngineTest, ChainExecutesInOrder) {
  Simulator sim;
  DagEngine dag(&sim);
  std::vector<std::string> log;
  OpId a = dag.AddOp("a", TimedOp(&sim, SimTime::Micros(5), &log, "a"));
  OpId b = dag.AddOp("b", TimedOp(&sim, SimTime::Micros(1), &log, "b"));
  OpId c = dag.AddOp("c", TimedOp(&sim, SimTime::Micros(1), &log, "c"));
  dag.AddDep(a, b);
  dag.AddDep(b, c);
  dag.Start();
  sim.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(dag.AllDone());
  EXPECT_EQ(sim.Now(), SimTime::Micros(7));
}

TEST(DagEngineTest, IndependentOpsRunConcurrently) {
  Simulator sim;
  DagEngine dag(&sim);
  std::vector<std::string> log;
  dag.AddOp("slow", TimedOp(&sim, SimTime::Micros(10), &log, "slow"));
  dag.AddOp("fast", TimedOp(&sim, SimTime::Micros(1), &log, "fast"));
  dag.Start();
  sim.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"fast", "slow"}));
  EXPECT_EQ(sim.Now(), SimTime::Micros(10));  // not 11: concurrent
}

TEST(DagEngineTest, DiamondJoinWaitsForBothBranches) {
  Simulator sim;
  DagEngine dag(&sim);
  std::vector<std::string> log;
  OpId src = dag.AddOp("src", nullptr);
  OpId l = dag.AddOp("l", TimedOp(&sim, SimTime::Micros(3), &log, "l"));
  OpId r = dag.AddOp("r", TimedOp(&sim, SimTime::Micros(9), &log, "r"));
  OpId sink = dag.AddOp("sink", TimedOp(&sim, SimTime::Micros(1), &log, "sink"));
  dag.AddDep(src, l);
  dag.AddDep(src, r);
  dag.AddDep(l, sink);
  dag.AddDep(r, sink);
  dag.Start();
  sim.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"l", "r", "sink"}));
  EXPECT_EQ(sim.Now(), SimTime::Micros(10));
}

TEST(DagEngineTest, NullOpIsInstantNoOp) {
  Simulator sim;
  DagEngine dag(&sim);
  OpId barrier = dag.AddOp("barrier", nullptr);
  bool after_ran = false;
  OpId after = dag.AddOp("after", [&](DagEngine::Done done) {
    after_ran = true;
    done();
  });
  dag.AddDep(barrier, after);
  dag.Start();
  sim.Run();
  EXPECT_TRUE(after_ran);
  EXPECT_EQ(sim.Now().nanos(), 0);
}

TEST(DagEngineTest, OpNamesAndDoneFlags) {
  Simulator sim;
  DagEngine dag(&sim);
  OpId a = dag.AddOp("alpha", nullptr);
  EXPECT_EQ(dag.OpName(a), "alpha");
  EXPECT_FALSE(dag.OpDone(a));
  dag.Start();
  sim.Run();
  EXPECT_TRUE(dag.OpDone(a));
  EXPECT_EQ(dag.ops_completed(), 1u);
}

TEST(DagEngineTest, LongChainDoesNotOverflowStack) {
  Simulator sim;
  DagEngine dag(&sim);
  OpId prev = kInvalidOp;
  for (int i = 0; i < 50'000; ++i) {
    OpId op = dag.AddOp("op", nullptr);
    if (prev != kInvalidOp) {
      dag.AddDep(prev, op);
    }
    prev = op;
  }
  dag.Start();
  sim.Run();
  EXPECT_TRUE(dag.AllDone());
}

TEST(ProxyTest, EngineStartThenRelease) {
  Simulator sim;
  DagEngine dag(&sim);
  DependencyProxy proxy;
  bool notified = false;
  proxy.set_on_start([&] { notified = true; });
  OpId p = dag.AddOp("proxy", proxy.MakeOpFn());
  bool after = false;
  OpId next = dag.AddOp("next", [&](DagEngine::Done done) {
    after = true;
    done();
  });
  dag.AddDep(p, next);
  dag.Start();
  sim.Run();
  // Engine started the proxy (original dependencies met) -> notify fired,
  // but the successor stays blocked until the scheduler releases it.
  EXPECT_TRUE(notified);
  EXPECT_TRUE(proxy.started());
  EXPECT_FALSE(after);
  proxy.Release();
  sim.Run();
  EXPECT_TRUE(after);
}

TEST(ProxyTest, ReleaseBeforeStartCompletesImmediately) {
  Simulator sim;
  DagEngine dag(&sim);
  DependencyProxy proxy;
  proxy.Release();  // scheduler released before the engine reached the proxy
  OpId p = dag.AddOp("proxy", proxy.MakeOpFn());
  bool after = false;
  OpId next = dag.AddOp("next", [&](DagEngine::Done done) {
    after = true;
    done();
  });
  dag.AddDep(p, next);
  dag.Start();
  sim.Run();
  EXPECT_TRUE(after);
}

TEST(ImperativeEngineTest, StreamOpsRunInPostOrder) {
  Simulator sim;
  ImperativeEngine eng(&sim);
  std::vector<std::string> log;
  // Post a slow op first and a fast op second: FIFO stream order must hold
  // even though the second op is shorter.
  eng.Post("slow", TimedOp(&sim, SimTime::Micros(10), &log, "slow"));
  eng.Post("fast", TimedOp(&sim, SimTime::Micros(1), &log, "fast"));
  eng.Start();
  sim.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"slow", "fast"}));
  EXPECT_EQ(sim.Now(), SimTime::Micros(11));  // serialized
}

TEST(ImperativeEngineTest, BackgroundOpsRunOffStream) {
  Simulator sim;
  ImperativeEngine eng(&sim);
  std::vector<std::string> log;
  eng.Post("compute", TimedOp(&sim, SimTime::Micros(10), &log, "compute"));
  eng.PostBackground("comm", TimedOp(&sim, SimTime::Micros(2), &log, "comm"));
  eng.Start();
  sim.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"comm", "compute"}));
  EXPECT_EQ(sim.Now(), SimTime::Micros(10));  // concurrent
}

TEST(ImperativeEngineTest, ForwardPreHookBlocksStream) {
  Simulator sim;
  ImperativeEngine eng(&sim);
  std::vector<std::string> log;
  DependencyProxy proxy;
  eng.RegisterForwardPreHook(0, proxy.MakeOpFn());
  eng.PostForward(0, "f0", TimedOp(&sim, SimTime::Micros(1), &log, "f0"));
  eng.Start();
  sim.Run();
  EXPECT_TRUE(log.empty());  // blocked by the un-released hook
  proxy.Release();
  sim.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"f0"}));
}

TEST(ImperativeEngineTest, BackwardHookRunsAfterLayer) {
  Simulator sim;
  ImperativeEngine eng(&sim);
  std::vector<std::string> log;
  eng.RegisterBackwardHook(3, [&](DagEngine::Done done) {
    log.push_back("hook3");
    done();
  });
  eng.PostBackward(3, "b3", TimedOp(&sim, SimTime::Micros(1), &log, "b3"));
  eng.PostBackward(2, "b2", TimedOp(&sim, SimTime::Micros(1), &log, "b2"));
  eng.Start();
  sim.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"b3", "hook3", "b2"}));
}

TEST(ImperativeEngineTest, AfterAddsExplicitDependency) {
  Simulator sim;
  ImperativeEngine eng(&sim);
  std::vector<std::string> log;
  OpId comm = eng.PostBackground("comm", TimedOp(&sim, SimTime::Micros(20), &log, "comm"));
  OpId step = eng.Post("step", TimedOp(&sim, SimTime::Micros(1), &log, "step"));
  eng.After(comm, step);  // optimizer.step waits for communication
  eng.Start();
  sim.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"comm", "step"}));
  EXPECT_EQ(sim.Now(), SimTime::Micros(21));
}

}  // namespace
}  // namespace bsched
