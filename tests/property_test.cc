// Parameterized property sweeps across the full configuration space:
// determinism, liveness (no deadlock for arbitrary knob settings), the
// "ByteScheduler never loses" property, and scheduler-core credit
// conservation under randomized event orders.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <tuple>
#include <vector>

#include "src/comm/backend.h"
#include "src/common/rng.h"
#include "src/core/scheduler_core.h"
#include "src/model/zoo.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

Setup SetupByIndex(int index) {
  switch (index) {
    case 0:
      return Setup::MxnetPsTcp();
    case 1:
      return Setup::MxnetPsRdma();
    case 2:
      return Setup::TensorFlowPsTcp();
    case 3:
      return Setup::MxnetNcclRdma();
    default:
      return Setup::PyTorchNcclTcp();
  }
}

// ---- full-grid sweep: model x setup x machines ------------------------------

using SweepParam = std::tuple<std::string, int, int>;  // model, setup idx, machines

class SpeedupSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SpeedupSweepTest, SchedulingNeverLosesAndStaysUnderLinear) {
  const auto& [model_name, setup_idx, machines] = GetParam();
  JobConfig job;
  job.model = ModelByName(model_name);
  job.setup = SetupByIndex(setup_idx);
  job.num_machines = machines;
  job.bandwidth = Bandwidth::Gbps(100);
  job.warmup_iters = 2;
  job.measure_iters = 3;

  job.mode = SchedMode::kVanilla;
  const JobResult baseline = RunTrainingJob(job);

  job.mode = SchedMode::kByteScheduler;
  const TunedParams tuned =
      DefaultTunedParams(job.model, job.setup.arch, job.setup.transport, job.bandwidth);
  job.partition_bytes = tuned.partition_bytes;
  job.credit_bytes = tuned.credit_bytes;
  const JobResult sched = RunTrainingJob(job);

  const double linear = PaperLinearScaling(job);
  EXPECT_GT(baseline.samples_per_sec, 0.0);
  // ByteScheduler never loses to the baseline (±0.5% tolerance).
  EXPECT_GE(sched.samples_per_sec, baseline.samples_per_sec * 0.995);
  // Nothing exceeds compute-bound linear scaling.
  EXPECT_LE(sched.samples_per_sec, linear * 1.005);
  EXPECT_LE(baseline.samples_per_sec, linear * 1.005);
}

INSTANTIATE_TEST_SUITE_P(
    AllSetups, SpeedupSweepTest,
    ::testing::Combine(::testing::Values("vgg16", "resnet50", "transformer", "alexnet"),
                       ::testing::Values(0, 1, 2, 3, 4), ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::get<0>(info.param) + "_setup" + std::to_string(std::get<1>(info.param)) +
             "_m" + std::to_string(std::get<2>(info.param));
    });

// ---- fuzz: random models, random knobs, all modes — must terminate ----------

class JobFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JobFuzzTest, RandomConfigurationsRunToCompletion) {
  Rng rng(GetParam() * 0x9e3779b9ULL + 17);
  SyntheticSpec spec;
  spec.num_layers = static_cast<int>(rng.UniformInt(2, 30));
  spec.min_layer_bytes = KiB(1);
  spec.max_layer_bytes = MiB(static_cast<int64_t>(rng.UniformInt(1, 64)));
  spec.total_compute = SimTime::Millis(static_cast<int64_t>(rng.UniformInt(5, 80)));
  ModelProfile model = SyntheticModel(spec, rng);
  if (rng.NextDouble() < 0.3) {
    model.layers[0].splittable = false;
  }

  JobConfig job;
  job.model = model;
  job.setup = SetupByIndex(static_cast<int>(rng.UniformInt(0, 4)));
  job.num_machines = static_cast<int>(rng.UniformInt(1, 6));
  job.gpus_per_machine = static_cast<int>(rng.UniformInt(1, 8));
  job.bandwidth = Bandwidth::Gbps(rng.Uniform(0.5, 120.0));
  job.warmup_iters = 1;
  job.measure_iters = static_cast<int>(rng.UniformInt(1, 3));
  job.ps_async = job.setup.arch == ArchType::kPs && rng.NextDouble() < 0.25;

  const int mode = static_cast<int>(rng.UniformInt(0, 2));
  job.mode = mode == 0 ? SchedMode::kVanilla
                       : (mode == 1 ? SchedMode::kByteScheduler : SchedMode::kP3);
  if (job.mode == SchedMode::kByteScheduler) {
    // Adversarial knobs, including credit < partition and tiny partitions.
    job.partition_bytes = static_cast<Bytes>(rng.UniformInt(KiB(1), MiB(8)));
    job.credit_bytes = static_cast<Bytes>(rng.UniformInt(KiB(1), MiB(64)));
  }

  // The real assertion is inside RunTrainingJob: engines must drain (any
  // deadlock aborts via BSCHED_CHECK). Completion + positive speed == pass.
  const JobResult result = RunTrainingJob(job);
  EXPECT_GT(result.samples_per_sec, 0.0);
  // Determinism under the exact same configuration.
  const JobResult again = RunTrainingJob(job);
  EXPECT_EQ(result.avg_iter_time, again.avg_iter_time);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JobFuzzTest, ::testing::Range<uint64_t>(0, 24));

// ---- scheduler-core fuzz: randomized completion order -----------------------

class ReorderBackend : public CommBackend {
 public:
  explicit ReorderBackend(uint64_t seed) : rng_(seed) {}

  void Start(const SubCommTask& subtask, std::function<void()> on_finish) override {
    pending_.push_back(std::move(on_finish));
    (void)subtask;
  }

  // Completes a random in-flight subtask (models out-of-order networks).
  bool FinishRandom() {
    if (pending_.empty()) {
      return false;
    }
    const size_t i = static_cast<size_t>(rng_.UniformInt(0, pending_.size() - 1));
    auto cb = std::move(pending_[i]);
    pending_.erase(pending_.begin() + static_cast<long>(i));
    cb();
    return true;
  }

  size_t in_flight() const { return pending_.size(); }

 private:
  Rng rng_;
  std::vector<std::function<void()>> pending_;
};

class CoreFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoreFuzzTest, CreditConservedUnderRandomCompletionOrder) {
  Rng rng(GetParam() + 1000);
  ReorderBackend backend(GetParam());
  const Bytes credit = KiB(static_cast<int64_t>(rng.UniformInt(64, 4096)));
  const Bytes partition = KiB(static_cast<int64_t>(rng.UniformInt(16, 2048)));
  SchedulerCore core(SchedulerConfig::ByteScheduler(partition, credit), &backend);

  int finished = 0;
  const int num_tasks = static_cast<int>(rng.UniformInt(5, 60));
  std::vector<CommTaskId> ids;
  for (int i = 0; i < num_tasks; ++i) {
    CommTaskDesc desc;
    desc.layer = static_cast<int>(rng.UniformInt(0, 20));
    desc.tensor_bytes = rng.UniformInt(1, MiB(4));
    desc.type = rng.NextDouble() < 0.5 ? CommOpType::kPush : CommOpType::kAllReduce;
    desc.on_finish = [&finished] { ++finished; };
    ids.push_back(core.Enqueue(std::move(desc)));
  }
  // Interleave readiness notifications with random completions.
  size_t next_ready = 0;
  while (finished < num_tasks) {
    if (next_ready < ids.size() && rng.NextDouble() < 0.4) {
      core.NotifyReady(ids[next_ready++]);
    } else if (!backend.FinishRandom() && next_ready < ids.size()) {
      core.NotifyReady(ids[next_ready++]);
    }
  }
  EXPECT_EQ(core.credit(), credit);  // every charged byte returned
  EXPECT_EQ(core.queue_length(), 0u);
  EXPECT_EQ(core.tasks_finished(), static_cast<uint64_t>(num_tasks));
  EXPECT_EQ(backend.in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreFuzzTest, ::testing::Range<uint64_t>(0, 16));

// ---- queue-policy differential property -------------------------------------

// For any randomized schedule/cancel/run-to-deadline workload, a Simulator on
// the timer wheel and one on the legacy binary heap must fire the same events
// in the same order with identical accounting. This is the property backing
// the wheel's role as the default engine (deeper structural cases live in
// tests/event_queue_test.cc).
class QueuePolicyFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueuePolicyFuzzTest, WheelAndHeapTrajectoriesAreIdentical) {
  auto run = [](QueuePolicy policy, uint64_t seed) {
    Simulator sim(policy);
    Rng rng(seed);
    std::vector<int64_t> trace;
    std::vector<EventHandle> handles;
    int next_id = 0;
    for (int op = 0; op < 1500; ++op) {
      const double r = rng.NextDouble();
      if (r < 0.5) {
        const int id = next_id++;
        // Ties, near timers, far timers past several wheel levels.
        const int64_t delay =
            rng.NextDouble() < 0.3 ? 1000 : rng.UniformInt(0, int64_t{1} << 36);
        handles.push_back(sim.Schedule(SimTime::Nanos(delay), [&trace, &sim, id] {
          trace.push_back(id);
          trace.push_back(sim.Now().nanos());
        }));
      } else if (r < 0.8 && !handles.empty()) {
        handles[rng.UniformInt(0, static_cast<int64_t>(handles.size()) - 1)].Cancel();
      } else {
        sim.Run(sim.Now() + SimTime::Nanos(rng.UniformInt(0, 1'000'000)));
        trace.push_back(static_cast<int64_t>(sim.PendingEvents()));
        trace.push_back(static_cast<int64_t>(sim.QueuedEvents()));
      }
    }
    sim.Run();
    trace.push_back(static_cast<int64_t>(sim.processed_events()));
    trace.push_back(static_cast<int64_t>(sim.skipped_cancelled()));
    trace.push_back(static_cast<int64_t>(sim.compactions()));
    trace.push_back(sim.Now().nanos());
    return trace;
  };
  const uint64_t seed = GetParam();
  EXPECT_EQ(run(QueuePolicy::kTimerWheel, seed), run(QueuePolicy::kBinaryHeap, seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueuePolicyFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace bsched
