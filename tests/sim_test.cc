#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

#include "src/sim/resource.h"
#include "src/sim/shard_coordinator.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now().nanos(), 0);
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(SimTime::Micros(30), [&] { order.push_back(3); });
  sim.Schedule(SimTime::Micros(10), [&] { order.push_back(1); });
  sim.Schedule(SimTime::Micros(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), SimTime::Micros(30));
}

TEST(SimulatorTest, EqualTimesFifoTieBreak) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(SimTime::Micros(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<int64_t> fire_times;
  sim.Schedule(SimTime::Micros(1), [&] {
    fire_times.push_back(sim.Now().nanos());
    sim.Schedule(SimTime::Micros(2), [&] { fire_times.push_back(sim.Now().nanos()); });
  });
  sim.Run();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], 1000);
  EXPECT_EQ(fire_times[1], 3000);
}

TEST(SimulatorTest, RunRespectsDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(SimTime::Micros(1), [&] { ++fired; });
  sim.Schedule(SimTime::Micros(10), [&] { ++fired; });
  sim.Run(SimTime::Micros(5));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Empty());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtExactDeadlineFires) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(SimTime::Micros(5), [&] { ++fired; });
  sim.Run(SimTime::Micros(5));
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.Schedule(SimTime::Micros(1), [&] { ++fired; });
  h.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, CancelAfterFireIsHarmless) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.Schedule(SimTime::Micros(1), [&] { ++fired; });
  sim.Run();
  h.Cancel();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(SimTime::Micros(1), [&] { ++fired; });
  sim.Schedule(SimTime::Micros(2), [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  SimTime seen;
  sim.ScheduleAt(SimTime::Millis(7), [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, SimTime::Millis(7));
}

TEST(SimulatorTest, ProcessedEventCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(SimTime::Micros(i), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.processed_events(), 5u);
}

TEST(SimulatorTest, DefaultHandleIsInvalidAndCancelIsNoop) {
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  handle.Cancel();  // must not crash
}

TEST(SimulatorTest, CancelledEventNeitherFiresNorCounts) {
  Simulator sim;
  int fired = 0;
  EventHandle handle = sim.Schedule(SimTime::Micros(5), [&] { ++fired; });
  sim.Schedule(SimTime::Micros(10), [&] { ++fired; });
  EXPECT_TRUE(handle.valid());
  handle.Cancel();
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.processed_events(), 1u);
  EXPECT_EQ(sim.Now(), SimTime::Micros(10));
}

TEST(SimulatorTest, CancelSoleEventLeavesSimEmpty) {
  Simulator sim;
  EventHandle handle = sim.Schedule(SimTime::Micros(5), [] { FAIL() << "cancelled event fired"; });
  handle.Cancel();
  EXPECT_EQ(sim.Run(), 0u);
  EXPECT_TRUE(sim.Empty());
  // Time never advances to a cancelled event.
  EXPECT_EQ(sim.Now(), SimTime());
}

TEST(SimulatorTest, DoubleCancelIsIdempotent) {
  Simulator sim;
  EventHandle handle = sim.Schedule(SimTime::Micros(5), [] {});
  handle.Cancel();
  handle.Cancel();
  EXPECT_EQ(sim.Run(), 0u);
}

TEST(SimulatorTest, HandleCopiesShareCancellation) {
  Simulator sim;
  int fired = 0;
  EventHandle original = sim.Schedule(SimTime::Micros(5), [&] { ++fired; });
  EventHandle copy = original;
  copy.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, RunDeadlineIsInclusive) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(SimTime::Micros(5), [&] { order.push_back(5); });
  sim.Schedule(SimTime::Micros(10), [&] { order.push_back(10); });
  sim.Schedule(SimTime(SimTime::Micros(10).nanos() + 1), [&] { order.push_back(11); });
  EXPECT_EQ(sim.Run(SimTime::Micros(10)), 2u);  // events at exactly the deadline fire
  EXPECT_EQ(order, (std::vector<int>{5, 10}));
  EXPECT_EQ(sim.Now(), SimTime::Micros(10));
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(order, (std::vector<int>{5, 10, 11}));
}

TEST(SimulatorTest, CancelledHeadDoesNotLeakEventsPastDeadline) {
  Simulator sim;
  int fired = 0;
  // A cancelled event before the deadline must not cause the next live event
  // (beyond the deadline) to fire when Run() skips it.
  EventHandle handle = sim.Schedule(SimTime::Micros(5), [&] { ++fired; });
  sim.Schedule(SimTime::Micros(20), [&] { ++fired; });
  handle.Cancel();
  EXPECT_EQ(sim.Run(SimTime::Micros(10)), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, ScheduleFromCancelledSiblingCallback) {
  Simulator sim;
  std::vector<int> order;
  EventHandle doomed;
  sim.Schedule(SimTime::Micros(5), [&] {
    order.push_back(1);
    doomed.Cancel();  // cancel a same-time event that is already queued
  });
  doomed = sim.Schedule(SimTime::Micros(5), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.processed_events(), 1u);
}

TEST(SimulatorTest, PendingEventsCountsOnlyLiveEvents) {
  Simulator sim;
  EventHandle a = sim.Schedule(SimTime::Micros(1), [] {});
  sim.Schedule(SimTime::Micros(2), [] {});
  sim.Schedule(SimTime::Micros(3), [] {});
  EXPECT_EQ(sim.PendingEvents(), 3u);
  EXPECT_EQ(sim.QueuedEvents(), 3u);
  a.Cancel();
  // The cancelled event no longer counts as pending, but its queue entry is
  // reclaimed lazily (below the compaction threshold it just sits there).
  EXPECT_EQ(sim.PendingEvents(), 2u);
  EXPECT_EQ(sim.QueuedEvents(), 3u);
  EXPECT_FALSE(sim.Empty());
  EXPECT_EQ(sim.Run(), 2u);
  EXPECT_TRUE(sim.Empty());
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.QueuedEvents(), 0u);
}

TEST(SimulatorTest, CancelSoleEventMakesSimEmptyImmediately) {
  Simulator sim;
  EventHandle h = sim.Schedule(SimTime::Micros(5), [] {});
  EXPECT_FALSE(sim.Empty());
  h.Cancel();
  EXPECT_TRUE(sim.Empty());
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimulatorTest, EventSlotsAreReusedUnderChurn) {
  Simulator sim;
  int fired = 0;
  // Steady-state churn: one event in flight at a time, rescheduling itself.
  // The pool must keep reusing the same slot instead of growing.
  std::function<void()> tick = [&] {
    if (++fired < 1000) {
      sim.Schedule(SimTime::Micros(1), [&] { tick(); });
    }
  };
  sim.Schedule(SimTime::Micros(1), [&] { tick(); });
  sim.Run();
  EXPECT_EQ(fired, 1000);
  EXPECT_LE(sim.AllocatedSlots(), 2u);
}

TEST(SimulatorTest, StaleHandleDoesNotCancelSlotReuser) {
  Simulator sim;
  int first = 0;
  int second = 0;
  EventHandle old_handle = sim.Schedule(SimTime::Micros(1), [&] { ++first; });
  sim.Run();
  EXPECT_EQ(first, 1);
  // The new event reuses the fired event's pooled slot; the stale handle's
  // generation no longer matches, so Cancel must be a no-op.
  EventHandle fresh = sim.Schedule(SimTime::Micros(1), [&] { ++second; });
  EXPECT_EQ(sim.AllocatedSlots(), 1u);
  old_handle.Cancel();
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(second, 1);
  // And a stale cancel of the now-also-fired fresh event stays harmless.
  fresh.Cancel();
  EXPECT_EQ(sim.processed_events(), 2u);
}

TEST(SimulatorTest, StaleHandleAfterCancellationDoesNotCancelSlotReuser) {
  Simulator sim;
  int fired = 0;
  EventHandle doomed = sim.Schedule(SimTime::Micros(1), [] { FAIL(); });
  doomed.Cancel();
  EventHandle copy = doomed;  // copies share the stale (slot, generation)
  sim.Schedule(SimTime::Micros(2), [&] { ++fired; });  // reuses the slot
  copy.Cancel();
  doomed.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, MassCancellationCompactsQueue) {
  Simulator sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 256; ++i) {
    handles.push_back(sim.Schedule(SimTime::Micros(1 + i), [&] { ++fired; }));
  }
  // Cancel everything but every 8th event: cancelled entries come to dominate
  // the queue, which must trigger compaction rather than rot until Run().
  for (size_t i = 0; i < handles.size(); ++i) {
    if (i % 8 != 0) {
      handles[i].Cancel();
    }
  }
  EXPECT_EQ(sim.PendingEvents(), 32u);
  EXPECT_GE(sim.compactions(), 1u);
  EXPECT_LT(sim.QueuedEvents(), 64u);  // stale entries were reclaimed
  EXPECT_EQ(sim.Run(), 32u);
  EXPECT_EQ(fired, 32);
}

TEST(SimulatorTest, CompactionPreservesOrderAndDeadlines) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(sim.Schedule(SimTime::Micros(200 - i), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 200; ++i) {
    if (i >= 10) {
      handles[i].Cancel();
    }
  }
  EXPECT_EQ(sim.Run(SimTime::Micros(195)), 5u);  // events at 191..195 us fire, in time order
  EXPECT_EQ(order, (std::vector<int>{9, 8, 7, 6, 5}));
  EXPECT_EQ(sim.Run(), 5u);
  EXPECT_EQ(order, (std::vector<int>{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(SimulatorTest, LargeCallbackFallsBackToHeapCorrectly) {
  Simulator sim;
  // Capture more state than EventFn's inline buffer holds.
  std::array<int64_t, 16> payload;
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<int64_t>(i * 3);
  }
  static_assert(sizeof(payload) > EventFn::kInlineBytes);
  int64_t sum = 0;
  sim.Schedule(SimTime::Micros(1), [payload, &sum] {
    for (int64_t v : payload) {
      sum += v;
    }
  });
  sim.Run();
  EXPECT_EQ(sum, 3 * (15 * 16 / 2));
}

TEST(ResourceTest, IdleResourceStartsImmediately) {
  Simulator sim;
  Resource r(&sim, "r");
  SimTime done_at;
  r.Submit(SimTime::Micros(10), [&] { done_at = sim.Now(); });
  EXPECT_TRUE(r.busy());
  sim.Run();
  EXPECT_EQ(done_at, SimTime::Micros(10));
  EXPECT_FALSE(r.busy());
}

TEST(ResourceTest, JobsSerializeFifo) {
  Simulator sim;
  Resource r(&sim, "r");
  std::vector<int64_t> done_times;
  for (int i = 0; i < 3; ++i) {
    r.Submit(SimTime::Micros(10), [&] { done_times.push_back(sim.Now().nanos()); });
  }
  EXPECT_EQ(r.queue_length(), 2u);
  sim.Run();
  EXPECT_EQ(done_times, (std::vector<int64_t>{10'000, 20'000, 30'000}));
  EXPECT_EQ(r.jobs_completed(), 3u);
  EXPECT_EQ(r.busy_time(), SimTime::Micros(30));
}

TEST(ResourceTest, SubmitFromCompletionCallback) {
  Simulator sim;
  Resource r(&sim, "r");
  SimTime second_done;
  r.Submit(SimTime::Micros(5), [&] {
    r.Submit(SimTime::Micros(7), [&] { second_done = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(second_done, SimTime::Micros(12));
}

TEST(ResourceTest, ZeroDurationJob) {
  Simulator sim;
  Resource r(&sim, "r");
  bool done = false;
  r.Submit(SimTime::Nanos(0), [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.Now().nanos(), 0);
}

TEST(ResourceTest, EmptyCallbackAllowed) {
  Simulator sim;
  Resource r(&sim, "r");
  r.Submit(SimTime::Micros(1), nullptr);
  r.Submit(SimTime::Micros(1), nullptr);
  sim.Run();
  EXPECT_EQ(r.jobs_completed(), 2u);
}

TEST(ResourceTest, DrainTimeAccountsForQueue) {
  Simulator sim;
  Resource r(&sim, "r");
  r.Submit(SimTime::Micros(10), nullptr);
  r.Submit(SimTime::Micros(5), nullptr);
  EXPECT_EQ(r.DrainTime(), SimTime::Micros(15));
  sim.Run();
  EXPECT_EQ(r.DrainTime(), sim.Now());
}

TEST(ResourceTest, InterleavedWithOtherResources) {
  Simulator sim;
  Resource a(&sim, "a");
  Resource b(&sim, "b");
  std::vector<std::string> order;
  a.Submit(SimTime::Micros(10), [&] { order.push_back("a"); });
  b.Submit(SimTime::Micros(5), [&] { order.push_back("b"); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"b", "a"}));
}

// Edge case for the Run(deadline) x compaction interplay: a mid-run mass
// cancellation triggers compaction while the deadline lands inside the
// surviving stretch. Every cancelled entry must be accounted exactly once —
// either lazily skipped at pop time or reclaimed by a compaction pass, never
// both — and both queue policies must agree on every counter.
TEST(SimulatorTest, DeadlineInsideCompactionPassDoesNotDoubleCountSkips) {
  struct Outcome {
    uint64_t fired_by_deadline, fired_total, skipped, compactions;
    size_t pending_mid, queued_end;
  };
  auto run = [](QueuePolicy policy) {
    Simulator sim(policy);
    std::vector<EventHandle> handles;
    int fired = 0;
    for (int i = 1; i <= 300; ++i) {
      handles.push_back(sim.Schedule(SimTime::Micros(i), [&fired] { ++fired; }));
    }
    // At 50us, cancel events scheduled for 101..300us: compaction triggers
    // inside the running simulation, below the 150us deadline.
    sim.Schedule(SimTime::Micros(50) + SimTime::Nanos(1), [&handles] {
      for (int i = 100; i < 300; ++i) {
        handles[i].Cancel();
      }
    });
    Outcome o;
    o.fired_by_deadline = sim.Run(SimTime::Micros(150));
    o.pending_mid = sim.PendingEvents();
    o.fired_total = o.fired_by_deadline + sim.Run();
    o.skipped = sim.skipped_cancelled();
    o.compactions = sim.compactions();
    o.queued_end = sim.QueuedEvents();
    return o;
  };
  for (QueuePolicy policy : {QueuePolicy::kTimerWheel, QueuePolicy::kBinaryHeap}) {
    Outcome o = run(policy);
    EXPECT_EQ(o.fired_by_deadline, 101u);  // 1..100us events + the canceller
    EXPECT_EQ(o.pending_mid, 0u);          // everything past 100us was cancelled
    EXPECT_EQ(o.fired_total, 101u);
    EXPECT_GE(o.compactions, 1u);
    // 200 cancellations, each reclaimed once: lazily at pop or by compaction.
    EXPECT_LE(o.skipped, 200u);
    EXPECT_EQ(o.queued_end, 0u);
  }
  Outcome wheel = run(QueuePolicy::kTimerWheel);
  Outcome heap = run(QueuePolicy::kBinaryHeap);
  EXPECT_EQ(wheel.skipped, heap.skipped);
  EXPECT_EQ(wheel.compactions, heap.compactions);
  EXPECT_EQ(wheel.fired_by_deadline, heap.fired_by_deadline);
}

// ---------------------------------------------------------------------------
// ShardCoordinator: conservative windowed PDES over per-shard Simulators.

TEST(ShardCoordinatorTest, SingleShardDrainsLikePlainSimulator) {
  ShardCoordinator coord(1, SimTime::Micros(10));
  std::vector<int64_t> fire_times;
  Simulator* sim = coord.shard(0);
  sim->Schedule(SimTime::Micros(3), [&] { fire_times.push_back(sim->Now().nanos()); });
  coord.Post(0, 0, /*channel=*/7, SimTime::Micros(10),
             [&] { fire_times.push_back(sim->Now().nanos()); });
  const uint64_t fired = coord.Run();
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(fire_times, (std::vector<int64_t>{3000, 10000}));
  EXPECT_TRUE(coord.Empty());
  EXPECT_EQ(coord.total_processed(), 2u);
  EXPECT_EQ(coord.messages_posted(), 1u);
}

// A ring of entities that interact only via Post() must produce bit-identical
// receive logs, event counts, and window counts at every shard count.
struct RingLog {
  std::vector<int64_t> receives;  // flattened (entity, time) pairs
  uint64_t processed = 0;
  uint64_t windows = 0;
  uint64_t messages = 0;

  bool operator==(const RingLog& o) const {
    return receives == o.receives && processed == o.processed &&
           windows == o.windows && messages == o.messages;
  }
};

RingLog RunRing(int shards) {
  constexpr int kEntities = 8;
  constexpr int kHops = 120;
  const SimTime lookahead = SimTime::Micros(5);
  ShardCoordinator coord(shards, lookahead);
  struct Entity {
    int hops = 0;
    std::vector<int64_t> log;
  };
  std::vector<Entity> entities(kEntities);
  auto shard_of = [&](int e) { return e % coord.shards(); };
  // Each entity forwards around the ring with an entity- and hop-dependent
  // delay; the receive timeline is a pure function of the topology.
  std::function<void(int)> receive = [&](int e) {
    Entity& ent = entities[e];
    ent.log.push_back(coord.shard(shard_of(e))->Now().nanos());
    if (++ent.hops >= kHops) {
      return;
    }
    const int next = (e + 1) % kEntities;
    const SimTime delay = lookahead + SimTime::Nanos(137 * e + 31 * ent.hops);
    coord.Post(shard_of(e), shard_of(next), /*channel=*/static_cast<uint64_t>(e),
               delay, [&receive, next] { receive(next); });
  };
  for (int e = 0; e < kEntities; ++e) {
    coord.Post(shard_of(e), shard_of(e), static_cast<uint64_t>(100 + e),
               lookahead + SimTime::Nanos(e), [&receive, e] { receive(e); });
  }
  coord.Run();
  EXPECT_TRUE(coord.Empty());
  RingLog out;
  for (int e = 0; e < kEntities; ++e) {
    out.receives.push_back(e);
    for (int64_t t : entities[e].log) {
      out.receives.push_back(t);
    }
  }
  out.processed = coord.total_processed();
  out.windows = coord.windows();
  out.messages = coord.messages_posted();
  return out;
}

TEST(ShardCoordinatorTest, RingIsBitIdenticalAtAnyShardCount) {
  RingLog serial = RunRing(1);
  EXPECT_GT(serial.processed, 0u);
  for (int shards : {2, 3, 5, 8}) {
    RingLog sharded = RunRing(shards);
    EXPECT_TRUE(sharded == serial) << "divergence at shards=" << shards;
  }
}

TEST(ShardCoordinatorTest, EqualTimeCrossShardMessagesMergeByChannelId) {
  // Two senders on different shards post to shard 0 with identical delivery
  // times; the fixed merge order (channel id) must decide, not thread timing
  // or post order. Channel 5 outranks channel 9 even though 9 posts first.
  for (int trial = 0; trial < 4; ++trial) {
    ShardCoordinator coord(3, SimTime::Micros(1));
    std::vector<int> order;
    coord.Post(2, 0, /*channel=*/9, SimTime::Micros(4), [&] { order.push_back(9); });
    coord.Post(1, 0, /*channel=*/5, SimTime::Micros(4), [&] { order.push_back(5); });
    coord.Run();
    EXPECT_EQ(order, (std::vector<int>{5, 9}));
  }
}

TEST(ShardCoordinatorTest, DeadlineIsInclusiveAndResumable) {
  ShardCoordinator coord(2, SimTime::Micros(1));
  std::vector<int> fired;
  coord.shard(0)->Schedule(SimTime::Micros(2), [&] { fired.push_back(1); });
  coord.shard(1)->Schedule(SimTime::Micros(5), [&] { fired.push_back(2); });
  coord.shard(0)->Schedule(SimTime::Micros(9), [&] { fired.push_back(3); });
  EXPECT_EQ(coord.Run(SimTime::Micros(5)), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_FALSE(coord.Empty());
  EXPECT_EQ(coord.Run(), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(coord.Empty());
}

}  // namespace
}  // namespace bsched
