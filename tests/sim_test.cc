#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now().nanos(), 0);
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(SimTime::Micros(30), [&] { order.push_back(3); });
  sim.Schedule(SimTime::Micros(10), [&] { order.push_back(1); });
  sim.Schedule(SimTime::Micros(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), SimTime::Micros(30));
}

TEST(SimulatorTest, EqualTimesFifoTieBreak) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(SimTime::Micros(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<int64_t> fire_times;
  sim.Schedule(SimTime::Micros(1), [&] {
    fire_times.push_back(sim.Now().nanos());
    sim.Schedule(SimTime::Micros(2), [&] { fire_times.push_back(sim.Now().nanos()); });
  });
  sim.Run();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], 1000);
  EXPECT_EQ(fire_times[1], 3000);
}

TEST(SimulatorTest, RunRespectsDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(SimTime::Micros(1), [&] { ++fired; });
  sim.Schedule(SimTime::Micros(10), [&] { ++fired; });
  sim.Run(SimTime::Micros(5));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Empty());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtExactDeadlineFires) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(SimTime::Micros(5), [&] { ++fired; });
  sim.Run(SimTime::Micros(5));
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.Schedule(SimTime::Micros(1), [&] { ++fired; });
  h.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, CancelAfterFireIsHarmless) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.Schedule(SimTime::Micros(1), [&] { ++fired; });
  sim.Run();
  h.Cancel();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(SimTime::Micros(1), [&] { ++fired; });
  sim.Schedule(SimTime::Micros(2), [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  SimTime seen;
  sim.ScheduleAt(SimTime::Millis(7), [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, SimTime::Millis(7));
}

TEST(SimulatorTest, ProcessedEventCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(SimTime::Micros(i), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.processed_events(), 5u);
}

TEST(SimulatorTest, DefaultHandleIsInvalidAndCancelIsNoop) {
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  handle.Cancel();  // must not crash
}

TEST(SimulatorTest, CancelledEventNeitherFiresNorCounts) {
  Simulator sim;
  int fired = 0;
  EventHandle handle = sim.Schedule(SimTime::Micros(5), [&] { ++fired; });
  sim.Schedule(SimTime::Micros(10), [&] { ++fired; });
  EXPECT_TRUE(handle.valid());
  handle.Cancel();
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.processed_events(), 1u);
  EXPECT_EQ(sim.Now(), SimTime::Micros(10));
}

TEST(SimulatorTest, CancelSoleEventLeavesSimEmpty) {
  Simulator sim;
  EventHandle handle = sim.Schedule(SimTime::Micros(5), [] { FAIL() << "cancelled event fired"; });
  handle.Cancel();
  EXPECT_EQ(sim.Run(), 0u);
  EXPECT_TRUE(sim.Empty());
  // Time never advances to a cancelled event.
  EXPECT_EQ(sim.Now(), SimTime());
}

TEST(SimulatorTest, DoubleCancelIsIdempotent) {
  Simulator sim;
  EventHandle handle = sim.Schedule(SimTime::Micros(5), [] {});
  handle.Cancel();
  handle.Cancel();
  EXPECT_EQ(sim.Run(), 0u);
}

TEST(SimulatorTest, HandleCopiesShareCancellation) {
  Simulator sim;
  int fired = 0;
  EventHandle original = sim.Schedule(SimTime::Micros(5), [&] { ++fired; });
  EventHandle copy = original;
  copy.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, RunDeadlineIsInclusive) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(SimTime::Micros(5), [&] { order.push_back(5); });
  sim.Schedule(SimTime::Micros(10), [&] { order.push_back(10); });
  sim.Schedule(SimTime(SimTime::Micros(10).nanos() + 1), [&] { order.push_back(11); });
  EXPECT_EQ(sim.Run(SimTime::Micros(10)), 2u);  // events at exactly the deadline fire
  EXPECT_EQ(order, (std::vector<int>{5, 10}));
  EXPECT_EQ(sim.Now(), SimTime::Micros(10));
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(order, (std::vector<int>{5, 10, 11}));
}

TEST(SimulatorTest, CancelledHeadDoesNotLeakEventsPastDeadline) {
  Simulator sim;
  int fired = 0;
  // A cancelled event before the deadline must not cause the next live event
  // (beyond the deadline) to fire when Run() skips it.
  EventHandle handle = sim.Schedule(SimTime::Micros(5), [&] { ++fired; });
  sim.Schedule(SimTime::Micros(20), [&] { ++fired; });
  handle.Cancel();
  EXPECT_EQ(sim.Run(SimTime::Micros(10)), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, ScheduleFromCancelledSiblingCallback) {
  Simulator sim;
  std::vector<int> order;
  EventHandle doomed;
  sim.Schedule(SimTime::Micros(5), [&] {
    order.push_back(1);
    doomed.Cancel();  // cancel a same-time event that is already queued
  });
  doomed = sim.Schedule(SimTime::Micros(5), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.processed_events(), 1u);
}

TEST(SimulatorTest, PendingEventsCountsOnlyLiveEvents) {
  Simulator sim;
  EventHandle a = sim.Schedule(SimTime::Micros(1), [] {});
  sim.Schedule(SimTime::Micros(2), [] {});
  sim.Schedule(SimTime::Micros(3), [] {});
  EXPECT_EQ(sim.PendingEvents(), 3u);
  EXPECT_EQ(sim.QueuedEvents(), 3u);
  a.Cancel();
  // The cancelled event no longer counts as pending, but its queue entry is
  // reclaimed lazily (below the compaction threshold it just sits there).
  EXPECT_EQ(sim.PendingEvents(), 2u);
  EXPECT_EQ(sim.QueuedEvents(), 3u);
  EXPECT_FALSE(sim.Empty());
  EXPECT_EQ(sim.Run(), 2u);
  EXPECT_TRUE(sim.Empty());
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.QueuedEvents(), 0u);
}

TEST(SimulatorTest, CancelSoleEventMakesSimEmptyImmediately) {
  Simulator sim;
  EventHandle h = sim.Schedule(SimTime::Micros(5), [] {});
  EXPECT_FALSE(sim.Empty());
  h.Cancel();
  EXPECT_TRUE(sim.Empty());
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimulatorTest, EventSlotsAreReusedUnderChurn) {
  Simulator sim;
  int fired = 0;
  // Steady-state churn: one event in flight at a time, rescheduling itself.
  // The pool must keep reusing the same slot instead of growing.
  std::function<void()> tick = [&] {
    if (++fired < 1000) {
      sim.Schedule(SimTime::Micros(1), [&] { tick(); });
    }
  };
  sim.Schedule(SimTime::Micros(1), [&] { tick(); });
  sim.Run();
  EXPECT_EQ(fired, 1000);
  EXPECT_LE(sim.AllocatedSlots(), 2u);
}

TEST(SimulatorTest, StaleHandleDoesNotCancelSlotReuser) {
  Simulator sim;
  int first = 0;
  int second = 0;
  EventHandle old_handle = sim.Schedule(SimTime::Micros(1), [&] { ++first; });
  sim.Run();
  EXPECT_EQ(first, 1);
  // The new event reuses the fired event's pooled slot; the stale handle's
  // generation no longer matches, so Cancel must be a no-op.
  EventHandle fresh = sim.Schedule(SimTime::Micros(1), [&] { ++second; });
  EXPECT_EQ(sim.AllocatedSlots(), 1u);
  old_handle.Cancel();
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(second, 1);
  // And a stale cancel of the now-also-fired fresh event stays harmless.
  fresh.Cancel();
  EXPECT_EQ(sim.processed_events(), 2u);
}

TEST(SimulatorTest, StaleHandleAfterCancellationDoesNotCancelSlotReuser) {
  Simulator sim;
  int fired = 0;
  EventHandle doomed = sim.Schedule(SimTime::Micros(1), [] { FAIL(); });
  doomed.Cancel();
  EventHandle copy = doomed;  // copies share the stale (slot, generation)
  sim.Schedule(SimTime::Micros(2), [&] { ++fired; });  // reuses the slot
  copy.Cancel();
  doomed.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, MassCancellationCompactsQueue) {
  Simulator sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 256; ++i) {
    handles.push_back(sim.Schedule(SimTime::Micros(1 + i), [&] { ++fired; }));
  }
  // Cancel everything but every 8th event: cancelled entries come to dominate
  // the queue, which must trigger compaction rather than rot until Run().
  for (size_t i = 0; i < handles.size(); ++i) {
    if (i % 8 != 0) {
      handles[i].Cancel();
    }
  }
  EXPECT_EQ(sim.PendingEvents(), 32u);
  EXPECT_GE(sim.compactions(), 1u);
  EXPECT_LT(sim.QueuedEvents(), 64u);  // stale entries were reclaimed
  EXPECT_EQ(sim.Run(), 32u);
  EXPECT_EQ(fired, 32);
}

TEST(SimulatorTest, CompactionPreservesOrderAndDeadlines) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(sim.Schedule(SimTime::Micros(200 - i), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 200; ++i) {
    if (i >= 10) {
      handles[i].Cancel();
    }
  }
  EXPECT_EQ(sim.Run(SimTime::Micros(195)), 5u);  // events at 191..195 us fire, in time order
  EXPECT_EQ(order, (std::vector<int>{9, 8, 7, 6, 5}));
  EXPECT_EQ(sim.Run(), 5u);
  EXPECT_EQ(order, (std::vector<int>{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(SimulatorTest, LargeCallbackFallsBackToHeapCorrectly) {
  Simulator sim;
  // Capture more state than EventFn's inline buffer holds.
  std::array<int64_t, 16> payload;
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<int64_t>(i * 3);
  }
  static_assert(sizeof(payload) > EventFn::kInlineBytes);
  int64_t sum = 0;
  sim.Schedule(SimTime::Micros(1), [payload, &sum] {
    for (int64_t v : payload) {
      sum += v;
    }
  });
  sim.Run();
  EXPECT_EQ(sum, 3 * (15 * 16 / 2));
}

TEST(ResourceTest, IdleResourceStartsImmediately) {
  Simulator sim;
  Resource r(&sim, "r");
  SimTime done_at;
  r.Submit(SimTime::Micros(10), [&] { done_at = sim.Now(); });
  EXPECT_TRUE(r.busy());
  sim.Run();
  EXPECT_EQ(done_at, SimTime::Micros(10));
  EXPECT_FALSE(r.busy());
}

TEST(ResourceTest, JobsSerializeFifo) {
  Simulator sim;
  Resource r(&sim, "r");
  std::vector<int64_t> done_times;
  for (int i = 0; i < 3; ++i) {
    r.Submit(SimTime::Micros(10), [&] { done_times.push_back(sim.Now().nanos()); });
  }
  EXPECT_EQ(r.queue_length(), 2u);
  sim.Run();
  EXPECT_EQ(done_times, (std::vector<int64_t>{10'000, 20'000, 30'000}));
  EXPECT_EQ(r.jobs_completed(), 3u);
  EXPECT_EQ(r.busy_time(), SimTime::Micros(30));
}

TEST(ResourceTest, SubmitFromCompletionCallback) {
  Simulator sim;
  Resource r(&sim, "r");
  SimTime second_done;
  r.Submit(SimTime::Micros(5), [&] {
    r.Submit(SimTime::Micros(7), [&] { second_done = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(second_done, SimTime::Micros(12));
}

TEST(ResourceTest, ZeroDurationJob) {
  Simulator sim;
  Resource r(&sim, "r");
  bool done = false;
  r.Submit(SimTime::Nanos(0), [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.Now().nanos(), 0);
}

TEST(ResourceTest, EmptyCallbackAllowed) {
  Simulator sim;
  Resource r(&sim, "r");
  r.Submit(SimTime::Micros(1), nullptr);
  r.Submit(SimTime::Micros(1), nullptr);
  sim.Run();
  EXPECT_EQ(r.jobs_completed(), 2u);
}

TEST(ResourceTest, DrainTimeAccountsForQueue) {
  Simulator sim;
  Resource r(&sim, "r");
  r.Submit(SimTime::Micros(10), nullptr);
  r.Submit(SimTime::Micros(5), nullptr);
  EXPECT_EQ(r.DrainTime(), SimTime::Micros(15));
  sim.Run();
  EXPECT_EQ(r.DrainTime(), sim.Now());
}

TEST(ResourceTest, InterleavedWithOtherResources) {
  Simulator sim;
  Resource a(&sim, "a");
  Resource b(&sim, "b");
  std::vector<std::string> order;
  a.Submit(SimTime::Micros(10), [&] { order.push_back("a"); });
  b.Submit(SimTime::Micros(5), [&] { order.push_back("b"); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"b", "a"}));
}

}  // namespace
}  // namespace bsched
