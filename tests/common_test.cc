#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace bsched {
namespace {

TEST(SimTimeTest, ConstructorsAndConversions) {
  EXPECT_EQ(SimTime::Nanos(5).nanos(), 5);
  EXPECT_EQ(SimTime::Micros(3).nanos(), 3000);
  EXPECT_EQ(SimTime::Millis(2).nanos(), 2'000'000);
  EXPECT_EQ(SimTime::Seconds(1.5).nanos(), 1'500'000'000);
  EXPECT_DOUBLE_EQ(SimTime::Seconds(2.0).ToSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(SimTime::Millis(5).ToMillis(), 5.0);
  EXPECT_DOUBLE_EQ(SimTime::Micros(7).ToMicros(), 7.0);
}

TEST(SimTimeTest, Arithmetic) {
  SimTime a = SimTime::Micros(10);
  SimTime b = SimTime::Micros(4);
  EXPECT_EQ((a + b).nanos(), 14'000);
  EXPECT_EQ((a - b).nanos(), 6'000);
  EXPECT_EQ((b * 3).nanos(), 12'000);
  a += b;
  EXPECT_EQ(a.nanos(), 14'000);
}

TEST(SimTimeTest, Comparison) {
  EXPECT_LT(SimTime::Micros(1), SimTime::Micros(2));
  EXPECT_EQ(SimTime::Millis(1), SimTime::Micros(1000));
  EXPECT_GT(SimTime::Max(), SimTime::Seconds(1e9));
}

TEST(SimTimeTest, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::Nanos(12).ToString(), "12ns");
  EXPECT_EQ(SimTime::Micros(12).ToString(), "12.000us");
  EXPECT_EQ(SimTime::Millis(12).ToString(), "12.000ms");
  EXPECT_EQ(SimTime::Seconds(1.25).ToString(), "1.250s");
}

TEST(BytesTest, Helpers) {
  EXPECT_EQ(KiB(1), 1024);
  EXPECT_EQ(MiB(1), 1024 * 1024);
  EXPECT_EQ(GiB(2), 2LL * 1024 * 1024 * 1024);
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(KiB(2)), "2.00KiB");
  EXPECT_EQ(FormatBytes(MiB(3)), "3.00MiB");
}

TEST(BandwidthTest, GbpsConversion) {
  Bandwidth b = Bandwidth::Gbps(10);
  EXPECT_DOUBLE_EQ(b.bytes_per_sec(), 1.25e9);
  EXPECT_DOUBLE_EQ(b.ToGbps(), 10.0);
}

TEST(BandwidthTest, TransmitTime) {
  Bandwidth b = Bandwidth::Gbps(8);  // 1 GB/s
  EXPECT_EQ(b.TransmitTime(1'000'000'000).nanos(), 1'000'000'000);
  EXPECT_EQ(b.TransmitTime(1000).nanos(), 1000);
}

TEST(BandwidthTest, ZeroBandwidthNeverCompletes) {
  Bandwidth b;
  EXPECT_EQ(b.TransmitTime(1), SimTime::Max());
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) {
    s.Add(rng.Gaussian(5.0, 2.0));
  }
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(123);
  Rng child = parent.Fork();
  // Child stream should not reproduce the parent stream.
  Rng parent2(123);
  (void)parent2.NextU64();  // advance past the fork draw
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextU64() == parent2.NextU64()) {
      ++same;
    }
  }
  EXPECT_LE(same, 1);
}

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(PercentileTest, Basics) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 99), 42.0);
}

TEST(PercentileTest, InPlaceMatchesFullSort) {
  Rng rng(97);
  std::vector<double> values;
  for (int i = 0; i < 501; ++i) {
    values.push_back(rng.Uniform(0.0, 1000.0));
  }
  for (double p : {0.0, 1.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    std::vector<double> scratch = values;
    EXPECT_DOUBLE_EQ(PercentileInPlace(scratch, p), Percentile(values, p)) << "p=" << p;
  }
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(PercentileInPlace(empty, 50), 0.0);
  std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(PercentileInPlace(one, 99), 42.0);
}

TEST(RunningStatsTest, MergeMatchesSingleAccumulator) {
  Rng rng(31);
  RunningStats combined;
  RunningStats parts[4];
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.Gaussian(3.0, 1.5);
    combined.Add(v);
    parts[i % 4].Add(v);
  }
  RunningStats merged;
  for (const RunningStats& part : parts) {
    merged.Merge(part);
  }
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_NEAR(merged.mean(), combined.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), combined.variance(), 1e-9);
  EXPECT_EQ(merged.min(), combined.min());
  EXPECT_EQ(merged.max(), combined.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats filled;
  filled.Add(1.0);
  filled.Add(3.0);

  RunningStats target;
  target.Merge(filled);  // empty.Merge(filled) == copy
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);

  RunningStats empty;
  target.Merge(empty);  // merging an empty accumulator is a no-op
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(MeanStdDevTest, Vector) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 1.0);
}

TEST(TableTest, AsciiRendering) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"bb", "22"});
  std::ostringstream os;
  t.RenderAscii(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name | value |"), std::string::npos);
  EXPECT_NE(out.find("| bb   | 22    |"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  Table t({"x", "y"});
  t.AddNumericRow("r", {1.25, 2.5}, 2);
  std::ostringstream os;
  t.RenderCsv(os);
  EXPECT_EQ(os.str(), "x,y\nr,1.25\n");
}

TEST(TableTest, RowPaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.RenderCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(10.0, 0), "10");
}

}  // namespace
}  // namespace bsched
