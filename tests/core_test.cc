#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/comm/backend.h"
#include "src/core/comm_task.h"
#include "src/core/scheduler_core.h"

namespace bsched {
namespace {

// Backend that records admissions and lets the test complete them manually,
// emulating the underlying FIFO stack.
class MockBackend : public CommBackend {
 public:
  void Start(const SubCommTask& subtask, std::function<void()> on_finish) override {
    started.push_back(subtask);
    pending.push_back(std::move(on_finish));
  }

  // Completes the oldest in-flight subtask (FIFO, like a network queue).
  void FinishOldest() {
    ASSERT_FALSE(pending.empty());
    auto cb = std::move(pending.front());
    pending.pop_front();
    cb();
  }

  void FinishAll() {
    while (!pending.empty()) {
      FinishOldest();
    }
  }

  std::vector<SubCommTask> started;
  std::deque<std::function<void()>> pending;
};

CommTaskDesc MakeDesc(int layer, Bytes bytes, CommOpType type = CommOpType::kPush) {
  CommTaskDesc desc;
  desc.layer = layer;
  desc.tensor_bytes = bytes;
  desc.type = type;
  desc.name = "t" + std::to_string(layer);
  return desc;
}

TEST(SchedulerConfigTest, Presets) {
  SchedulerConfig vanilla = SchedulerConfig::Vanilla();
  EXPECT_EQ(vanilla.policy, SchedulerConfig::Policy::kFifo);
  EXPECT_EQ(vanilla.partition_bytes, SchedulerConfig::kNoPartition);
  EXPECT_EQ(vanilla.credit_bytes, SchedulerConfig::kUnlimited);

  SchedulerConfig p3 = SchedulerConfig::P3();
  EXPECT_EQ(p3.policy, SchedulerConfig::Policy::kPriority);
  EXPECT_EQ(p3.partition_bytes, KiB(160));
  EXPECT_EQ(p3.credit_bytes, KiB(160));

  SchedulerConfig bs = SchedulerConfig::ByteScheduler(MiB(4), MiB(16));
  EXPECT_EQ(bs.partition_bytes, MiB(4));
  EXPECT_EQ(bs.credit_bytes, MiB(16));
}

TEST(CommOpTypeTest, ToString) {
  EXPECT_STREQ(ToString(CommOpType::kPush), "push");
  EXPECT_STREQ(ToString(CommOpType::kPull), "pull");
  EXPECT_STREQ(ToString(CommOpType::kAllReduce), "allreduce");
}

TEST(SchedulerCoreTest, PartitionCount) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::ByteScheduler(MiB(1), SchedulerConfig::kUnlimited),
                     &backend);
  CommTaskId exact = core.Enqueue(MakeDesc(0, MiB(4)));
  EXPECT_EQ(core.NumPartitions(exact), 4);
  CommTaskId remainder = core.Enqueue(MakeDesc(1, MiB(4) + 1));
  EXPECT_EQ(core.NumPartitions(remainder), 5);
  CommTaskId small = core.Enqueue(MakeDesc(2, KiB(100)));
  EXPECT_EQ(core.NumPartitions(small), 1);
}

TEST(SchedulerCoreTest, NoPartitioningKeepsTensorWhole) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::Vanilla(), &backend);
  CommTaskId id = core.Enqueue(MakeDesc(0, MiB(64)));
  EXPECT_EQ(core.NumPartitions(id), 1);
}

TEST(SchedulerCoreTest, NothingStartsBeforeNotifyReady) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::ByteScheduler(MiB(1), MiB(64)), &backend);
  core.Enqueue(MakeDesc(0, MiB(2)));
  EXPECT_TRUE(backend.started.empty());
}

TEST(SchedulerCoreTest, NotifyReadyStartsAllPartitions) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::ByteScheduler(MiB(1), SchedulerConfig::kUnlimited),
                     &backend);
  CommTaskId id = core.Enqueue(MakeDesc(0, MiB(3)));
  core.NotifyReady(id);
  ASSERT_EQ(backend.started.size(), 3u);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(backend.started[p].partition, p);
    EXPECT_EQ(backend.started[p].bytes, MiB(1));
  }
}

TEST(SchedulerCoreTest, PriorityOrdersByLayer) {
  MockBackend backend;
  // Credit of one partition: admissions are strictly one at a time, so the
  // admission order exposes the queue order.
  SchedulerCore core(SchedulerConfig::ByteScheduler(MiB(1), MiB(1)), &backend);
  CommTaskId late = core.Enqueue(MakeDesc(5, MiB(1)));
  CommTaskId early = core.Enqueue(MakeDesc(1, MiB(1)));
  CommTaskId mid = core.Enqueue(MakeDesc(3, MiB(1)));
  core.NotifyReady(late);
  core.NotifyReady(early);
  core.NotifyReady(mid);
  // Layer 5 was ready first and admitted immediately (the queue was empty).
  ASSERT_EQ(backend.started.size(), 1u);
  EXPECT_EQ(backend.started[0].layer, 5);
  // As credits return, priority picks layer 1 then 3.
  backend.FinishOldest();
  ASSERT_EQ(backend.started.size(), 2u);
  EXPECT_EQ(backend.started[1].layer, 1);
  backend.FinishOldest();
  ASSERT_EQ(backend.started.size(), 3u);
  EXPECT_EQ(backend.started[2].layer, 3);
}

TEST(SchedulerCoreTest, FifoPolicyIgnoresLayer) {
  MockBackend backend;
  SchedulerConfig cfg = SchedulerConfig::Vanilla();
  cfg.credit_bytes = MiB(1);  // serialize admissions to observe order
  SchedulerCore core(cfg, &backend);
  std::vector<CommTaskId> ids;
  for (int layer : {7, 2, 9, 0}) {
    ids.push_back(core.Enqueue(MakeDesc(layer, MiB(1))));
  }
  for (CommTaskId id : ids) {
    core.NotifyReady(id);
  }
  backend.FinishAll();
  ASSERT_EQ(backend.started.size(), 4u);
  EXPECT_EQ(backend.started[0].layer, 7);
  EXPECT_EQ(backend.started[1].layer, 2);
  EXPECT_EQ(backend.started[2].layer, 9);
  EXPECT_EQ(backend.started[3].layer, 0);
}

TEST(SchedulerCoreTest, PullBeatsPushAtSameLayer) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::ByteScheduler(MiB(1), MiB(1)), &backend);
  CommTaskId blocker = core.Enqueue(MakeDesc(9, MiB(1)));
  core.NotifyReady(blocker);  // occupies the credit
  CommTaskId push = core.Enqueue(MakeDesc(2, MiB(1), CommOpType::kPush));
  CommTaskId pull = core.Enqueue(MakeDesc(2, MiB(1), CommOpType::kPull));
  core.NotifyReady(push);
  core.NotifyReady(pull);
  backend.FinishAll();
  ASSERT_EQ(backend.started.size(), 3u);
  EXPECT_EQ(backend.started[1].type, CommOpType::kPull);
  EXPECT_EQ(backend.started[2].type, CommOpType::kPush);
}

TEST(SchedulerCoreTest, CreditLimitsInFlightBytes) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::ByteScheduler(MiB(1), MiB(3)), &backend);
  CommTaskId id = core.Enqueue(MakeDesc(0, MiB(10)));
  core.NotifyReady(id);
  // Only 3 MiB of credit: exactly 3 partitions admitted.
  EXPECT_EQ(backend.started.size(), 3u);
  EXPECT_EQ(core.credit(), 0);
  backend.FinishOldest();
  EXPECT_EQ(backend.started.size(), 4u);
}

TEST(SchedulerCoreTest, CreditReturnsOnFinish) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::ByteScheduler(MiB(1), MiB(2)), &backend);
  CommTaskId id = core.Enqueue(MakeDesc(0, MiB(2)));
  core.NotifyReady(id);
  EXPECT_EQ(core.credit(), 0);
  backend.FinishAll();
  EXPECT_EQ(core.credit(), MiB(2));
}

TEST(SchedulerCoreTest, OversizedSubtaskAdmittedOnlyAtFullCredit) {
  MockBackend backend;
  // Partitioning disabled but priority on: a 4 MiB tensor with 1 MiB credit.
  SchedulerConfig cfg = SchedulerConfig::ByteScheduler(SchedulerConfig::kNoPartition, MiB(1));
  SchedulerCore core(cfg, &backend);
  CommTaskId big = core.Enqueue(MakeDesc(0, MiB(4)));
  core.NotifyReady(big);
  // Admitted despite exceeding the pool (pool was full), charging the pool.
  ASSERT_EQ(backend.started.size(), 1u);
  EXPECT_EQ(core.credit(), 0);
  CommTaskId next = core.Enqueue(MakeDesc(1, KiB(1)));
  core.NotifyReady(next);
  EXPECT_EQ(backend.started.size(), 1u);  // blocked: no credit
  backend.FinishOldest();
  EXPECT_EQ(core.credit(), MiB(1) - KiB(1));
  EXPECT_EQ(backend.started.size(), 2u);
}

TEST(SchedulerCoreTest, HeadOfLineBlocking) {
  MockBackend backend;
  // Algorithm 1 waits for the head subtask's credit; it does not bypass it
  // with a smaller lower-priority subtask.
  SchedulerConfig cfg = SchedulerConfig::ByteScheduler(SchedulerConfig::kNoPartition, MiB(2));
  SchedulerCore core(cfg, &backend);
  CommTaskId hog = core.Enqueue(MakeDesc(5, MiB(1)));
  core.NotifyReady(hog);  // in flight, credit = 1 MiB left
  CommTaskId head = core.Enqueue(MakeDesc(0, MiB(2)));   // needs 2 MiB
  CommTaskId small = core.Enqueue(MakeDesc(1, KiB(1)));  // would fit
  core.NotifyReady(head);
  core.NotifyReady(small);
  EXPECT_EQ(backend.started.size(), 1u);  // both wait behind the head
  backend.FinishOldest();  // hog returns 1 MiB -> pool full -> head admitted
  ASSERT_EQ(backend.started.size(), 2u);
  EXPECT_EQ(backend.started[1].layer, 0);
  backend.FinishOldest();  // head returns its credit -> small admitted
  ASSERT_EQ(backend.started.size(), 3u);
  EXPECT_EQ(backend.started[2].layer, 1);
}

TEST(SchedulerCoreTest, OnFinishFiresWhenAllPartitionsDone) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::ByteScheduler(MiB(1), SchedulerConfig::kUnlimited),
                     &backend);
  int finished = 0;
  CommTaskDesc desc = MakeDesc(0, MiB(3));
  desc.on_finish = [&] { ++finished; };
  CommTaskId id = core.Enqueue(std::move(desc));
  core.NotifyReady(id);
  backend.FinishOldest();
  backend.FinishOldest();
  EXPECT_EQ(finished, 0);
  backend.FinishOldest();
  EXPECT_EQ(finished, 1);
  EXPECT_EQ(core.tasks_finished(), 1u);
}

TEST(SchedulerCoreTest, PartitionFinishCallbackChainsReadiness) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::ByteScheduler(MiB(1), SchedulerConfig::kUnlimited),
                     &backend);
  // PS plugin pattern: pull partitions become ready as push partitions ack.
  CommTaskDesc pull_desc = MakeDesc(0, MiB(2), CommOpType::kPull);
  CommTaskId pull = core.Enqueue(std::move(pull_desc));

  CommTaskDesc push_desc = MakeDesc(0, MiB(2), CommOpType::kPush);
  push_desc.on_partition_finish = [&core, pull](int p) { core.NotifyReadyPartition(pull, p); };
  CommTaskId push = core.Enqueue(std::move(push_desc));

  core.NotifyReady(push);
  ASSERT_EQ(backend.started.size(), 2u);
  backend.FinishOldest();  // push partition 0 acked
  ASSERT_EQ(backend.started.size(), 3u);
  EXPECT_EQ(backend.started[2].type, CommOpType::kPull);
  EXPECT_EQ(backend.started[2].partition, 0);
  backend.FinishOldest();  // push partition 1
  ASSERT_EQ(backend.started.size(), 4u);
  EXPECT_EQ(backend.started[3].partition, 1);
}

TEST(SchedulerCoreTest, DoubleNotifyReadyIsIdempotent) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::ByteScheduler(MiB(1), SchedulerConfig::kUnlimited),
                     &backend);
  CommTaskId id = core.Enqueue(MakeDesc(0, MiB(2)));
  core.NotifyReady(id);
  core.NotifyReady(id);
  core.NotifyReadyPartition(id, 0);
  EXPECT_EQ(backend.started.size(), 2u);
}

TEST(SchedulerCoreTest, WorkerIdPropagates) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::ByteScheduler(MiB(1), SchedulerConfig::kUnlimited),
                     &backend, /*worker_id=*/3);
  CommTaskDesc desc = MakeDesc(0, MiB(1));
  desc.worker = 3;
  CommTaskId id = core.Enqueue(std::move(desc));
  core.NotifyReady(id);
  ASSERT_EQ(backend.started.size(), 1u);
  EXPECT_EQ(backend.started[0].worker, 3);
}

TEST(SchedulerCoreTest, StressManyTasksConserveCredit) {
  MockBackend backend;
  const Bytes credit = MiB(7);
  SchedulerCore core(SchedulerConfig::ByteScheduler(KiB(256), credit), &backend);
  std::vector<CommTaskId> ids;
  for (int layer = 0; layer < 40; ++layer) {
    ids.push_back(core.Enqueue(MakeDesc(layer, KiB(700) + layer * 13)));
  }
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    core.NotifyReady(*it);
  }
  // Drain everything, finishing in admission order.
  while (!backend.pending.empty()) {
    backend.FinishOldest();
  }
  EXPECT_EQ(core.credit(), credit);
  EXPECT_EQ(core.tasks_finished(), 40u);
  EXPECT_EQ(core.queue_length(), 0u);
}

// Property: under priority policy, whenever credit frees up, the admitted
// subtask has the minimal (layer, type) key among queued-ready subtasks.
TEST(SchedulerCoreTest, PropertyAdmissionIsPriorityOrderedUnderSerialCredit) {
  MockBackend backend;
  SchedulerCore core(SchedulerConfig::ByteScheduler(KiB(512), KiB(512)), &backend);
  // Make tasks ready in descending priority so the queue always holds all
  // remaining work, then check admissions are ascending by layer.
  std::vector<CommTaskId> ids;
  for (int layer = 19; layer >= 0; --layer) {
    CommTaskId id = core.Enqueue(MakeDesc(layer, KiB(512)));
    core.NotifyReady(id);
    ids.push_back(id);
  }
  // First admission was layer 19 (queue empty at the time). Finish it, then
  // the rest must come out 0,1,2,...
  backend.FinishOldest();
  while (!backend.pending.empty()) {
    backend.FinishOldest();
  }
  ASSERT_EQ(backend.started.size(), 20u);
  for (int i = 1; i < 20; ++i) {
    EXPECT_EQ(backend.started[i].layer, i - 1) << "admission " << i;
  }
}

}  // namespace
}  // namespace bsched
