#include <gtest/gtest.h>

#include <string>

#include "src/common/rng.h"
#include "src/model/profile.h"
#include "src/model/zoo.h"

namespace bsched {
namespace {

TEST(ProfileTest, MakeModelCalibratesCompute) {
  // 2 layers, batch 10, 100 samples/s -> 0.1 s of compute per iteration.
  ModelProfile m = MakeModel("m", "samples", 10, 100.0,
                             {{"a", 1.0, 1.0}, {"b", 2.0, 3.0}});
  EXPECT_EQ(m.num_layers(), 2);
  EXPECT_NEAR(m.TotalComputeTime().ToSeconds(), 0.1, 1e-9);
  // FP:BP is 1:2.
  EXPECT_NEAR(m.TotalBpTime().ToSeconds(), 2.0 * m.TotalFpTime().ToSeconds(), 1e-9);
  // Compute split proportional to gflops.
  EXPECT_NEAR(m.layers[1].fp_time.ToSeconds(), 3.0 * m.layers[0].fp_time.ToSeconds(), 1e-6);
  // fp32 params.
  EXPECT_EQ(m.layers[0].param_bytes, 4'000'000);
}

TEST(ProfileTest, WithBatchScalesComputeOnly) {
  ModelProfile m = Vgg16();
  ModelProfile half = m.WithBatch(16);
  EXPECT_EQ(half.TotalParamBytes(), m.TotalParamBytes());
  EXPECT_NEAR(half.TotalComputeTime().ToSeconds(), m.TotalComputeTime().ToSeconds() / 2, 1e-6);
  EXPECT_EQ(half.batch_per_gpu, 16);
}

TEST(ZooTest, Vgg16Shape) {
  ModelProfile m = Vgg16();
  EXPECT_EQ(m.num_layers(), 16);
  // ~138M params -> ~552 MB of fp32.
  EXPECT_NEAR(static_cast<double>(m.TotalParamBytes()), 138.0e6 * 4, 3.0e6 * 4);
  // fc6 dominates: > 400 MB.
  EXPECT_GT(m.MaxTensorBytes(), 400'000'000);
  // The giant tensor sits near the output (last quarter of the layer list).
  int max_idx = 0;
  for (int i = 0; i < m.num_layers(); ++i) {
    if (m.layers[i].param_bytes == m.MaxTensorBytes()) {
      max_idx = i;
    }
  }
  EXPECT_GT(max_idx, m.num_layers() * 3 / 4 - 1);
  // Batch 32 at ~190 img/s -> ~168 ms compute.
  EXPECT_NEAR(m.TotalComputeTime().ToSeconds(), 32.0 / 190.0, 1e-3);
}

TEST(ZooTest, Vgg19HasThreeMoreLayersThanVgg16) {
  EXPECT_EQ(Vgg19().num_layers(), Vgg16().num_layers() + 3);
  EXPECT_GT(Vgg19().TotalParamBytes(), Vgg16().TotalParamBytes());
}

TEST(ZooTest, ResNet50IsComputeHeavy) {
  ModelProfile r = ResNet50();
  ModelProfile v = Vgg16();
  // ~25.5M params -> ~102 MB.
  EXPECT_NEAR(static_cast<double>(r.TotalParamBytes()), 25.5e6 * 4, 1.5e6 * 4);
  // Communication-to-computation ratio far below VGG16's.
  const double r_ratio = static_cast<double>(r.TotalParamBytes()) / r.TotalComputeTime().ToSeconds();
  const double v_ratio = static_cast<double>(v.TotalParamBytes()) / v.TotalComputeTime().ToSeconds();
  EXPECT_LT(r_ratio, v_ratio / 3);
}

TEST(ZooTest, AlexNetIsMostCommBound) {
  ModelProfile a = AlexNet();
  ModelProfile v = Vgg16();
  const double a_ratio = static_cast<double>(a.TotalParamBytes()) / a.TotalComputeTime().ToSeconds();
  const double v_ratio = static_cast<double>(v.TotalParamBytes()) / v.TotalComputeTime().ToSeconds();
  EXPECT_GT(a_ratio, v_ratio);
}

TEST(ZooTest, TransformerEmbeddingAtInput) {
  ModelProfile t = Transformer();
  EXPECT_EQ(t.sample_unit, "tokens");
  EXPECT_EQ(t.batch_per_gpu, 512);
  // The input-side embedding is (tied with generator) the largest tensor.
  EXPECT_EQ(t.layers[0].param_bytes, t.MaxTensorBytes());
  // Transformer big: ~214M params.
  EXPECT_NEAR(static_cast<double>(t.TotalParamBytes()), 214.0e6 * 4, 5.0e6 * 4);
}

TEST(ZooTest, ModelByNameRoundTrips) {
  for (const char* name :
       {"vgg16", "vgg19", "alexnet", "resnet50", "transformer", "bert-large"}) {
    EXPECT_EQ(ModelByName(name).name, name);
  }
}

TEST(ZooTest, BertLargeShape) {
  ModelProfile b = BertLarge();
  EXPECT_EQ(b.num_layers(), 26);
  // ~334M params -> ~1.3 GB fp32.
  EXPECT_NEAR(static_cast<double>(b.TotalParamBytes()), 334.0e6 * 4, 8.0e6 * 4);
  EXPECT_FALSE(b.layers[0].splittable);  // row-sparse embedding
  // 24 uniform encoder layers.
  for (int i = 2; i <= 24; ++i) {
    EXPECT_EQ(b.layers[i].param_bytes, b.layers[1].param_bytes) << i;
  }
}

TEST(ZooTest, ContrivedModelHasThreeLayers) {
  ModelProfile m = ContrivedFig2Model();
  EXPECT_EQ(m.num_layers(), 3);
  EXPECT_GT(m.layers[2].param_bytes, m.layers[0].param_bytes);
}

TEST(ZooTest, SyntheticModelRespectsSpec) {
  Rng rng(5);
  SyntheticSpec spec;
  spec.num_layers = 25;
  spec.min_layer_bytes = KiB(16);
  spec.max_layer_bytes = MiB(4);
  spec.total_compute = SimTime::Millis(50);
  ModelProfile m = SyntheticModel(spec, rng);
  EXPECT_EQ(m.num_layers(), 25);
  for (const Layer& l : m.layers) {
    EXPECT_GE(l.param_bytes, spec.min_layer_bytes);
    EXPECT_LE(l.param_bytes, spec.max_layer_bytes);
  }
  EXPECT_NEAR(m.TotalComputeTime().ToMillis(), 50.0, 0.1);
}

TEST(ZooTest, SyntheticModelDeterministicPerSeed) {
  Rng r1(77);
  Rng r2(77);
  SyntheticSpec spec;
  ModelProfile a = SyntheticModel(spec, r1);
  ModelProfile b = SyntheticModel(spec, r2);
  for (int i = 0; i < a.num_layers(); ++i) {
    EXPECT_EQ(a.layers[i].param_bytes, b.layers[i].param_bytes);
  }
}

}  // namespace
}  // namespace bsched
