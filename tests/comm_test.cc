#include <gtest/gtest.h>

#include <functional>
#include <tuple>
#include <vector>

#include "src/comm/allreduce_backend.h"
#include "src/comm/ps_backend.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

SubCommTask MakeSub(int worker, int layer, int partition, Bytes bytes, CommOpType type) {
  SubCommTask st;
  st.task = layer;
  st.worker = worker;
  st.layer = layer;
  st.tensor_id = layer;
  st.partition = partition;
  st.bytes = bytes;
  st.type = type;
  return st;
}

PsConfig IdealPs(int workers, int shards) {
  PsConfig cfg;
  cfg.num_workers = workers;
  cfg.num_shards = shards;
  cfg.link_rate = Bandwidth::Gbps(8);  // 1 GB/s
  cfg.transport = TransportModel::Ideal();
  cfg.update_bytes_per_sec = 1e15;  // negligible update cost
  cfg.update_fixed_overhead = SimTime();
  cfg.control_latency = SimTime();
  return cfg;
}

TEST(PsBackendTest, PushCompletesAtSenderFlush) {
  Simulator sim;
  PsBackend ps(&sim, IdealPs(1, 1));
  SimTime acked;
  ps.Start(MakeSub(0, 0, 0, MiB(1), CommOpType::kPush), [&] { acked = sim.Now(); });
  sim.Run();
  // Scheduler-visible completion is the sender-side flush: one uplink
  // occupancy (control latency is zero in this config).
  const double hop_sec = static_cast<double>(MiB(1)) / 1e9;
  EXPECT_NEAR(acked.ToSeconds(), hop_sec, 1e-9);
  // The data still traversed the shard ingress (store-and-forward).
  EXPECT_EQ(ps.shard_bytes_in(0), MiB(1));
}

TEST(PsBackendTest, PullWaitsForAllWorkers) {
  Simulator sim;
  PsBackend ps(&sim, IdealPs(2, 1));
  bool pulled = false;
  // Worker 0 pushes and immediately pulls; worker 1's push comes much later.
  ps.Start(MakeSub(0, 0, 0, MiB(1), CommOpType::kPush), [] {});
  ps.Start(MakeSub(0, 0, 0, MiB(1), CommOpType::kPull), [&] { pulled = true; });
  sim.Run(SimTime::Millis(100));
  EXPECT_FALSE(pulled);  // aggregation incomplete
  ps.Start(MakeSub(1, 0, 0, MiB(1), CommOpType::kPush), [] {});
  sim.Run();
  EXPECT_TRUE(pulled);
}

TEST(PsBackendTest, AsyncPullDoesNotWaitForOtherWorkers) {
  Simulator sim;
  PsConfig cfg = IdealPs(2, 1);
  cfg.synchronous = false;
  PsBackend ps(&sim, cfg);
  bool pulled = false;
  ps.Start(MakeSub(0, 0, 0, MiB(1), CommOpType::kPush), [] {});
  ps.Start(MakeSub(0, 0, 0, MiB(1), CommOpType::kPull), [&] { pulled = true; });
  sim.Run();
  EXPECT_TRUE(pulled);
}

TEST(PsBackendTest, PullAfterAggregationDeliversImmediately) {
  Simulator sim;
  PsBackend ps(&sim, IdealPs(1, 1));
  ps.Start(MakeSub(0, 0, 0, MiB(1), CommOpType::kPush), [] {});
  sim.Run();
  SimTime push_done = sim.Now();
  SimTime pull_done;
  ps.Start(MakeSub(0, 0, 0, MiB(1), CommOpType::kPull), [&] { pull_done = sim.Now(); });
  sim.Run();
  const double hop_sec = static_cast<double>(MiB(1)) / 1e9;
  EXPECT_NEAR((pull_done - push_done).ToSeconds(), 2 * hop_sec, 1e-9);
}

TEST(PsBackendTest, ShardAssignmentStripesPartitions) {
  Simulator sim;
  PsBackend ps(&sim, IdealPs(1, 4));
  // Partitions of layer 0 go to shards 0,1,2,3 -> ingress bytes balanced.
  for (int p = 0; p < 8; ++p) {
    ps.Start(MakeSub(0, 0, p, MiB(1), CommOpType::kPush), [] {});
  }
  sim.Run();
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(ps.shard_bytes_in(s), MiB(2)) << "shard " << s;
  }
}

TEST(PsBackendTest, UnpartitionedTensorsImbalanceShards) {
  Simulator sim;
  PsBackend ps(&sim, IdealPs(1, 4));
  // One giant tensor (layer 0) and three small ones: layer-round-robin puts
  // the giant tensor whole on shard 0.
  ps.Start(MakeSub(0, 0, 0, MiB(64), CommOpType::kPush), [] {});
  for (int layer = 1; layer < 4; ++layer) {
    ps.Start(MakeSub(0, layer, 0, MiB(1), CommOpType::kPush), [] {});
  }
  sim.Run();
  EXPECT_EQ(ps.shard_bytes_in(0), MiB(64));
  EXPECT_EQ(ps.shard_bytes_in(1), MiB(1));
  // Pull side imbalance metric: pull everything once.
  for (int layer = 0; layer < 4; ++layer) {
    ps.Start(MakeSub(0, layer, 0, layer == 0 ? MiB(64) : MiB(1), CommOpType::kPull), [] {});
  }
  sim.Run();
  EXPECT_GT(ps.ShardLoadImbalance(), 3.0);
}

TEST(PsBackendTest, DuplexPushPullOverlap) {
  // With aggregation already done for layer 0, a pull of layer 0 and a push
  // of layer 1 proceed concurrently on the duplex NIC.
  Simulator sim;
  PsBackend ps(&sim, IdealPs(1, 1));
  ps.Start(MakeSub(0, 0, 0, MiB(100), CommOpType::kPush), [] {});
  sim.Run();
  const SimTime t0 = sim.Now();
  SimTime pull_done;
  SimTime push_done;
  ps.Start(MakeSub(0, 0, 0, MiB(100), CommOpType::kPull), [&] { pull_done = sim.Now(); });
  ps.Start(MakeSub(0, 1, 0, MiB(100), CommOpType::kPush), [&] { push_done = sim.Now(); });
  sim.Run();
  const double hop = static_cast<double>(MiB(100)) / 1e9;
  EXPECT_NEAR((pull_done - t0).ToSeconds(), 2 * hop, 1e-6);  // egress + downlink
  EXPECT_NEAR((push_done - t0).ToSeconds(), hop, 1e-6);      // sender flush
}

TEST(PsBackendTest, ResetAggregationStateClearsSlots) {
  Simulator sim;
  PsBackend ps(&sim, IdealPs(1, 1));
  ps.Start(MakeSub(0, 0, 0, MiB(1), CommOpType::kPush), [] {});
  sim.Run();
  ps.ResetAggregationState();
  bool pulled = false;
  ps.Start(MakeSub(0, 0, 0, MiB(1), CommOpType::kPull), [&] { pulled = true; });
  sim.Run();
  EXPECT_FALSE(pulled);  // aggregation state was cleared
}

TEST(PsBackendTest, ControlLatencyDelaysAck) {
  Simulator sim;
  PsConfig cfg = IdealPs(1, 1);
  cfg.control_latency = SimTime::Micros(10);
  PsBackend ps(&sim, cfg);
  SimTime acked;
  ps.Start(MakeSub(0, 0, 0, MiB(1), CommOpType::kPush), [&] { acked = sim.Now(); });
  sim.Run();
  const double hop_sec = static_cast<double>(MiB(1)) / 1e9;
  EXPECT_NEAR(acked.ToSeconds(), hop_sec + 10e-6, 1e-9);
}

TEST(PsBackendTest, AggregationListenerFires) {
  Simulator sim;
  PsBackend ps(&sim, IdealPs(2, 1));
  std::vector<std::tuple<int, int, int>> aggregated;
  ps.AddAggregationListener([&](int64_t tensor, int partition, int worker) {
    aggregated.emplace_back(static_cast<int>(tensor), partition, worker);
  });
  ps.Start(MakeSub(0, 3, 1, MiB(1), CommOpType::kPush), [] {});
  ps.Start(MakeSub(1, 3, 1, MiB(1), CommOpType::kPush), [] {});
  sim.Run();
  // One notification per worker, in worker order.
  ASSERT_EQ(aggregated.size(), 2u);
  EXPECT_EQ(aggregated[0], (std::tuple<int, int, int>{3, 1, 0}));
  EXPECT_EQ(aggregated[1], (std::tuple<int, int, int>{3, 1, 1}));
}

AllReduceConfig IdealRing(int workers) {
  AllReduceConfig cfg;
  cfg.num_workers = workers;
  cfg.link_rate = Bandwidth::Gbps(8);  // 1 GB/s
  cfg.transport = TransportModel::Ideal();
  cfg.launch_overhead = SimTime();
  cfg.step_latency = SimTime();
  return cfg;
}

TEST(AllReduceBackendTest, RingTimeFormula) {
  Simulator sim;
  AllReduceBackend ar(&sim, IdealRing(4));
  // 2(W-1)/W * S / B = 2*3/4 * 64MiB / 1GB/s
  const double expected = 2.0 * 3 / 4 * static_cast<double>(MiB(64)) / 1e9;
  EXPECT_NEAR(ar.RingTime(MiB(64)).ToSeconds(), expected, 1e-9);
}

TEST(AllReduceBackendTest, SingleWorkerIsFree) {
  Simulator sim;
  AllReduceBackend ar(&sim, IdealRing(1));
  EXPECT_EQ(ar.RingTime(MiB(64)).nanos(), 0);
}

TEST(AllReduceBackendTest, StepLatencyScalesWithWorkers) {
  AllReduceConfig cfg = IdealRing(16);
  cfg.step_latency = SimTime::Micros(10);
  Simulator sim;
  AllReduceBackend ar(&sim, cfg);
  // 2*(16-1) steps x 10us of latency on top of the bandwidth term.
  const double bw_term = 2.0 * 15 / 16 * static_cast<double>(MiB(16)) / 1e9;
  EXPECT_NEAR(ar.RingTime(MiB(16)).ToSeconds(), bw_term + 30 * 10e-6, 1e-9);
}

TEST(AllReduceBackendTest, OpsSerializeOnRing) {
  Simulator sim;
  AllReduceBackend ar(&sim, IdealRing(2));
  std::vector<int64_t> done;
  for (int i = 0; i < 3; ++i) {
    ar.Start(MakeSub(0, i, 0, MiB(1), CommOpType::kAllReduce),
             [&] { done.push_back(sim.Now().nanos()); });
  }
  sim.Run();
  ASSERT_EQ(done.size(), 3u);
  const int64_t op_ns = ar.RingTime(MiB(1)).nanos();
  EXPECT_EQ(done[0], op_ns);
  EXPECT_EQ(done[1], 2 * op_ns);
  EXPECT_EQ(done[2], 3 * op_ns);
  EXPECT_EQ(ar.ops_completed(), 3u);
}

TEST(AllReduceBackendTest, LaunchOverheadPipelinesAcrossOps) {
  AllReduceConfig cfg = IdealRing(2);
  cfg.launch_overhead = SimTime::Micros(100);
  Simulator sim;
  AllReduceBackend ar(&sim, cfg);
  SimTime last;
  // Two ops admitted back-to-back: the second op's launch overlaps the first
  // op's ring occupancy, so the total is launch + 2 * ring (not 2 * both).
  ar.Start(MakeSub(0, 0, 0, MiB(10), CommOpType::kAllReduce), [] {});
  ar.Start(MakeSub(0, 1, 0, MiB(10), CommOpType::kAllReduce), [&] { last = sim.Now(); });
  sim.Run();
  const double ring = ar.RingTime(MiB(10)).ToSeconds();
  EXPECT_NEAR(last.ToSeconds(), 100e-6 + 2 * ring, 1e-9);
}

TEST(AllReduceBackendTest, StopAndWaitPaysLaunchPerOp) {
  AllReduceConfig cfg = IdealRing(2);
  cfg.launch_overhead = SimTime::Micros(100);
  Simulator sim;
  AllReduceBackend ar(&sim, cfg);
  SimTime last;
  // Second op admitted only after the first completes (stop-and-wait):
  // its launch overhead cannot be hidden.
  ar.Start(MakeSub(0, 0, 0, MiB(10), CommOpType::kAllReduce), [&] {
    ar.Start(MakeSub(0, 1, 0, MiB(10), CommOpType::kAllReduce), [&] { last = sim.Now(); });
  });
  sim.Run();
  const double ring = ar.RingTime(MiB(10)).ToSeconds();
  EXPECT_NEAR(last.ToSeconds(), 2 * 100e-6 + 2 * ring, 1e-9);
}

TEST(AllReduceBackendTest, NcclPresetsDependOnTransport) {
  AllReduceConfig rdma = AllReduceConfig::Nccl(8, Bandwidth::Gbps(100), TransportModel::Rdma());
  AllReduceConfig tcp = AllReduceConfig::Nccl(8, Bandwidth::Gbps(100), TransportModel::Tcp());
  EXPECT_LT(rdma.launch_overhead, tcp.launch_overhead);
  EXPECT_LT(rdma.step_latency, tcp.step_latency);
}

}  // namespace
}  // namespace bsched
