// Observability layer tests: metrics registry exactness (including under the
// parallel sweep pool — run with the tsan preset for the data-race proof),
// histogram bucket boundaries, snapshot determinism across worker counts,
// and round-trip parsing of the exported trace + metrics artifacts.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/trace.h"
#include "src/exec/sweep_runner.h"
#include "src/model/zoo.h"
#include "src/obs/json_lite.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

namespace bsched {
namespace {

JobConfig SmallJob() {
  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  job.mode = SchedMode::kByteScheduler;
  job.partition_bytes = MiB(4);
  job.credit_bytes = MiB(16);
  job.warmup_iters = 1;
  job.measure_iters = 2;
  return job;
}

// ---- histogram buckets ----------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0: v <= 0. Bucket k >= 1: [2^(k-1), 2^k - 1] (the bit width).
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  for (int k = 1; k < 62; ++k) {
    const int64_t lo = int64_t{1} << (k - 1);
    const int64_t hi = (int64_t{1} << k) - 1;
    EXPECT_EQ(Histogram::BucketIndex(lo), k) << "lo of bucket " << k;
    EXPECT_EQ(Histogram::BucketIndex(hi), k) << "hi of bucket " << k;
    EXPECT_EQ(Histogram::BucketLowerBound(k), lo);
    EXPECT_EQ(Histogram::BucketUpperBound(k), hi);
  }
  // The top bucket absorbs everything wider than 63 bits of range.
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
}

TEST(HistogramTest, ObserveAndSnapshot) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  h.Observe(5);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1011);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.bucket_count(10), 1u);

  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1011);
  EXPECT_EQ(snap.buckets.size(), 4u);  // only non-empty buckets exported
  // The median observation (5) lives in bucket 3 = [4, 7].
  EXPECT_GE(snap.Quantile(50), 4.0);
  EXPECT_LE(snap.Quantile(50), 7.0);
  // Quantiles are monotone in q.
  EXPECT_LE(snap.Quantile(50), snap.Quantile(90));
  EXPECT_LE(snap.Quantile(90), snap.Quantile(100));
}

// ---- registry -------------------------------------------------------------

TEST(MetricsRegistryTest, StableHandles) {
  MetricsRegistry reg;
  Counter* c = reg.counter("a");
  EXPECT_EQ(reg.counter("a"), c);
  EXPECT_NE(reg.counter("b"), c);
  Gauge* g = reg.gauge("a");  // same name, different kind: distinct handle
  EXPECT_EQ(reg.gauge("a"), g);
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->value(), 5u);
  g->Set(-7);
  g->Add(3);
  EXPECT_EQ(g->value(), -4);
}

// The TSan-visible proof that a shared registry is safe under the exec/
// thread pool: concurrent relaxed increments lose nothing.
TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  Counter* counter = reg.counter("shared.counter");
  Gauge* gauge = reg.gauge("shared.gauge");
  Histogram* hist = reg.histogram("shared.hist");
  constexpr int kTasks = 16;
  constexpr int kPerTask = 10'000;
  SweepRunner runner(4);
  runner.ParallelFor(kTasks, [&](size_t i) {
    for (int k = 0; k < kPerTask; ++k) {
      counter->Inc();
      gauge->Add(1);
      hist->Observe(static_cast<int64_t>(i) + 1);
    }
  });
  EXPECT_EQ(counter->value(), static_cast<uint64_t>(kTasks) * kPerTask);
  EXPECT_EQ(gauge->value(), static_cast<int64_t>(kTasks) * kPerTask);
  EXPECT_EQ(reg.histogram("shared.hist")->count(), static_cast<uint64_t>(kTasks) * kPerTask);
}

TEST(MetricsSnapshotTest, JsonIndependentOfRegistrationOrder) {
  MetricsRegistry a;
  a.counter("x")->Inc(3);
  a.gauge("y")->Set(9);
  a.histogram("z")->Observe(5);

  MetricsRegistry b;  // same state, reverse registration order
  b.histogram("z")->Observe(5);
  b.gauge("y")->Set(9);
  b.counter("x")->Inc(3);

  std::ostringstream ja;
  std::ostringstream jb;
  a.Snapshot().WriteJson(ja);
  b.Snapshot().WriteJson(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

// ---- end-to-end job instrumentation --------------------------------------

TEST(ObsJobTest, MetricsDoNotPerturbSimulation) {
  JobConfig job = SmallJob();
  const JobResult plain = RunTrainingJob(job);

  MetricsRegistry metrics;
  TraceRecorder trace;
  job.metrics = &metrics;
  job.trace = &trace;
  const JobResult observed = RunTrainingJob(job);
  EXPECT_EQ(observed.avg_iter_time, plain.avg_iter_time);
  EXPECT_EQ(observed.sim_events, plain.sim_events);
}

// The same job snapshots byte-identically whether the surrounding sweep ran
// serially or on the pool (each run owns a private registry).
TEST(ObsJobTest, SnapshotDeterministicAcrossJobCounts) {
  auto run_once = [](size_t) {
    MetricsRegistry metrics;
    JobConfig job = SmallJob();
    job.metrics = &metrics;
    RunTrainingJob(job);
    std::ostringstream os;
    metrics.Snapshot().WriteJson(os);
    return os.str();
  };
  SweepRunner serial(1);
  SweepRunner parallel(4);
  const std::vector<std::string> one = serial.ParallelFor(2, run_once);
  const std::vector<std::string> many = parallel.ParallelFor(4, run_once);
  for (const std::string& snapshot : many) {
    EXPECT_EQ(snapshot, one.front());
  }
  EXPECT_EQ(one.back(), one.front());
}

TEST(ObsJobTest, TraceRoundTripsThroughParser) {
  TraceRecorder trace;
  MetricsRegistry metrics;
  JobConfig job = SmallJob();
  job.trace = &trace;
  job.metrics = &metrics;
  RunTrainingJob(job);

  std::ostringstream os;
  trace.WriteChromeTrace(os);
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(os.str(), &root, &error)) << error;
  ASSERT_TRUE(root.is_array());
  ASSERT_FALSE(root.array.empty());

  std::set<int> named_tids;
  std::map<uint64_t, std::set<int>> flow_tracks;
  std::map<uint64_t, std::set<std::string>> flow_phases;
  for (const obs::JsonValue& ev : root.array) {
    ASSERT_TRUE(ev.is_object());
    const obs::JsonValue* ph = ev.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    const obs::JsonValue* pid = ev.Find("pid");
    ASSERT_NE(pid, nullptr);
    EXPECT_EQ(pid->IntOr(-1), 1);
    const std::string phase = ph->str;
    const int tid = static_cast<int>(ev.Find("tid")->IntOr(-1));
    if (phase == "M") {
      named_tids.insert(tid);
    } else if (phase == "s" || phase == "t" || phase == "f") {
      const uint64_t id = static_cast<uint64_t>(ev.Find("id")->IntOr(0));
      EXPECT_NE(id, 0u);
      flow_tracks[id].insert(tid);
      flow_phases[id].insert(phase);
    } else {
      // Every span/instant lands on a track announced via thread_name.
      EXPECT_TRUE(named_tids.count(tid)) << "unnamed tid " << tid;
    }
  }
  // At least one partition is traceable end-to-end: its arc opens, closes,
  // and crosses >= 3 distinct tracks (scheduler -> link -> shard -> ...).
  bool end_to_end = false;
  for (const auto& [id, tracks] : flow_tracks) {
    if (tracks.size() >= 3 && flow_phases[id].count("s") && flow_phases[id].count("f")) {
      end_to_end = true;
      break;
    }
  }
  EXPECT_TRUE(end_to_end);
}

TEST(ObsJobTest, MetricsRoundTripsWithAcceptanceKeys) {
  MetricsRegistry metrics;
  JobConfig job = SmallJob();
  job.metrics = &metrics;
  RunTrainingJob(job);

  std::ostringstream os;
  metrics.Snapshot().WriteJson(os);
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(os.str(), &root, &error)) << error;
  ASSERT_TRUE(root.is_object());

  const obs::JsonValue* counters = root.Find("counters");
  const obs::JsonValue* gauges = root.Find("gauges");
  const obs::JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(histograms, nullptr);

  // Scheduler queue depth + credit occupancy histograms, populated.
  const obs::JsonValue* queue_depth = histograms->Find("sched.w0.queue_depth");
  ASSERT_NE(queue_depth, nullptr);
  EXPECT_GT(queue_depth->Find("count")->IntOr(0), 0);
  const obs::JsonValue* credit = histograms->Find("sched.w0.credit_in_use");
  ASSERT_NE(credit, nullptr);
  EXPECT_GT(credit->Find("count")->IntOr(0), 0);

  // Link busy time gauge for at least one link.
  bool link_busy = false;
  for (const auto& [name, value] : gauges->object) {
    if (name.rfind("net.", 0) == 0 && name.size() > 8 &&
        name.compare(name.size() - 8, 8, ".busy_ns") == 0 && value.IntOr(0) > 0) {
      link_busy = true;
      break;
    }
  }
  EXPECT_TRUE(link_busy);

  // Fault-recovery counters always exported (zero without chaos).
  const obs::JsonValue* retries = counters->Find("fault.core_retries");
  ASSERT_NE(retries, nullptr);
  EXPECT_EQ(retries->IntOr(-1), 0);

  // Link byte counters account for real traffic.
  bool link_bytes = false;
  for (const auto& [name, value] : counters->object) {
    if (name.rfind("net.", 0) == 0 && value.IntOr(0) > 0) {
      link_bytes = true;
      break;
    }
  }
  EXPECT_TRUE(link_bytes);
}

TEST(ObsJobTest, ChaosJobExportsRetryCounters) {
  MetricsRegistry metrics;
  JobConfig job = SmallJob();
  job.chaos = FaultPlanConfig::Chaos(1);
  job.metrics = &metrics;
  const JobResult result = RunTrainingJob(job);
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("fault.core_retries"), result.fault_stats.core_retries);
  EXPECT_EQ(snap.counters.at("fault.backend_retransmits"),
            result.fault_stats.backend_retransmits);
  EXPECT_EQ(snap.counters.at("fault.drops_injected"), result.fault_stats.drops_injected);
}

TEST(MetricsSnapshotTest, CsvShape) {
  MetricsRegistry reg;
  reg.counter("c")->Inc(2);
  reg.gauge("g")->Set(5);
  reg.histogram("h")->Observe(10);
  std::ostringstream os;
  reg.Snapshot().WriteCsv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("kind,name,value,count,sum,p50,p95,p99", 0), 0u);
  EXPECT_NE(csv.find("counter,c,2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h"), std::string::npos);
}

// ---- pool stats (per-worker task counts / idle time) ----------------------

TEST(PoolStatsTest, SweepRunnerAccountsEveryTask) {
  SweepRunner runner(2);
  constexpr size_t kTasks = 12;
  std::vector<double> sink = runner.ParallelFor(kTasks, [](size_t i) {
    double acc = 0.0;
    for (int k = 0; k < 20'000; ++k) {
      acc += static_cast<double>((i + 1) * k % 17);
    }
    return acc;
  });
  EXPECT_EQ(sink.size(), kTasks);
  const PoolStats stats = runner.Stats();
  EXPECT_EQ(stats.workers.size(), 2u);
  EXPECT_EQ(stats.total_tasks(), kTasks);
  const RunningStats merged = stats.merged_task_sec();
  EXPECT_EQ(merged.count(), kTasks);
  EXPECT_GE(merged.min(), 0.0);
  // Inline runners expose empty stats rather than lying.
  SweepRunner inline_runner(1);
  inline_runner.ParallelFor(3, [](size_t) { return 0; });
  EXPECT_EQ(inline_runner.Stats().total_tasks(), 0u);
}

// ---- ObsContext flow bookkeeping ------------------------------------------

TEST(ObsContextTest, FlowLifecycle) {
  TraceRecorder trace;
  ObsContext obs(&trace, nullptr);
  EXPECT_TRUE(obs.tracing());
  EXPECT_EQ(obs.metrics(), nullptr);
  const uint64_t flow = obs.BeginPartitionFlow(0, 7, 2);
  EXPECT_NE(flow, 0u);
  EXPECT_EQ(obs.LookupPartitionFlow(0, 7, 2), flow);
  EXPECT_EQ(obs.LookupPartitionFlow(0, 7, 3), 0u);
  // Reopening the same slot (next iteration) hands out a fresh id.
  const uint64_t next = obs.BeginPartitionFlow(0, 7, 2);
  EXPECT_NE(next, flow);
  obs.EndPartitionFlow(0, 7, 2);
  EXPECT_EQ(obs.LookupPartitionFlow(0, 7, 2), 0u);
}

}  // namespace
}  // namespace bsched
