// Regenerates Figure 9: Bayesian Optimization tuning the credit size for
// VGG16 on MXNet all-reduce — 7 samples, then the GP posterior (prediction
// and 95% confidence interval) over the credit axis.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/harness.h"
#include "src/common/table.h"
#include "src/model/zoo.h"
#include "src/tuning/auto_tuner.h"
#include "src/tuning/search.h"

using namespace bsched;

int main() {
  JobConfig job = bench::MakeJob(Vgg16(), Setup::MxnetNcclRdma(), 4, Bandwidth::Gbps(100));

  AutoTunerOptions opt;
  opt.credit_lo = MiB(8);
  opt.credit_hi = MiB(320);
  opt.noise_frac = 0.01;
  opt.seed = 3;
  AutoTuner tuner(job, opt);
  const Bytes partition = MiB(64);  // fixed; only the credit is tuned here

  BayesianOptimizer bo(1, opt.seed);
  std::printf("Figure 9: BO tuning credit size, VGG16 MXNet all-reduce (partition fixed 64MB)\n\n");
  Table samples({"trial", "credit(MB)", "speed (img/s)"});
  for (int trial = 0; trial < 7; ++trial) {
    const std::vector<double> x = bo.Suggest();
    const Bytes credit = tuner.CreditFromUnit(x[0]);
    const double speed = tuner.EvaluateObjective(partition, credit);
    bo.Observe(x, speed);
    samples.AddRow({std::to_string(trial + 1),
                    Table::Num(static_cast<double>(credit) / MiB(1), 1), Table::Num(speed, 1)});
  }
  std::printf("samples:\n");
  samples.RenderAscii(std::cout);

  std::printf("\nGP posterior over credit size (mean and 95%% confidence interval):\n");
  Table posterior({"credit(MB)", "prediction", "ci95_low", "ci95_high"});
  for (int i = 0; i <= 16; ++i) {
    const double u = i / 16.0;
    const Bytes credit = tuner.CreditFromUnit(u);
    const GaussianProcess::Prediction p = bo.gp().Predict({u});
    const double half = 1.96 * std::sqrt(p.variance);
    posterior.AddRow({Table::Num(static_cast<double>(credit) / MiB(1), 1),
                      Table::Num(p.mean, 1), Table::Num(p.mean - half, 1),
                      Table::Num(p.mean + half, 1)});
  }
  posterior.RenderAscii(std::cout);
  std::printf("\nExpected shape: CI tight near sampled credits, wide elsewhere; BO samples\n"
              "concentrate where the posterior predicts high speed.\n");
  return 0;
}
