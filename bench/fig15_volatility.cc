// Figure 15 (repo extension): training speed under a volatile network
// fabric. Sweeps the dynamic-network volatility amplitude (seeded
// random-walk link drift plus on/off cross traffic, src/net/net_dynamics.h)
// and compares vanilla FIFO against ByteScheduler on a 2-machine PS cluster.
// The paper's argument predicts the gap should *grow* with volatility: as
// links derate, the job turns communication-bound, and priority scheduling
// with partitioning recovers overlap that FIFO head-of-line blocking wastes.
//
// The amplitude sweep's cells are independent simulations evaluated on the
// SweepRunner pool; rows are bit-identical at any --jobs value and at any
// --shards K >= 1 (the dynamic fabric derives every schedule from
// (seed, link name), never from shard layout).
//
// Flags: --jobs N          sweep workers (default: hardware concurrency)
//        --shards K        sharded parallel-DES per cell (default 1)
//        --model NAME      zoo model (default resnet50)
//        --gbps F          per-NIC bandwidth (default 25)
//        --seed N          dynamics seed (default 3)
//        --csv PATH        also write the rows as CSV
//        --check-determinism  recompute the sweep at --jobs 1 vs N and at
//                          shards 1/2/8 and require byte-identical CSV rows
//        --require-growing-gain  fail unless ByteScheduler's gain over
//                          vanilla is larger at the highest amplitude than
//                          at amplitude 0 (the figure's acceptance check)
//        --bench-append PATH  insert a "fig15_volatility" section into an
//                          existing BENCH_sim.json (micro_sim's output)
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/exec/sweep_runner.h"
#include "src/model/zoo.h"
#include "src/net/net_dynamics.h"
#include "src/obs/json_lite.h"
#include "src/runtime/training_job.h"

namespace bsched {
namespace {

const std::vector<double> kAmplitudes = {0.0, 0.2, 0.4, 0.6, 0.8};

struct VolatilityRow {
  double amplitude = 0.0;
  double vanilla = 0.0;       // samples/sec
  double bytescheduler = 0.0;  // samples/sec
  double gain() const { return vanilla > 0 ? bytescheduler / vanilla : 0.0; }
};

NetDynamicsConfig Fabric(uint64_t seed, double amplitude) {
  NetDynamicsConfig dyn;
  dyn.seed = seed;
  dyn.volatility_amplitude = amplitude;
  dyn.volatility_period = SimTime::Millis(2);
  // CASSINI-style on/off background flows ride along at every amplitude so
  // amplitude 0 still exercises the dynamic path (identity drift only).
  dyn.cross_flows = amplitude > 0.0 ? 2 : 0;
  dyn.cross_load = 0.35 * amplitude;
  dyn.force_enable = true;
  return dyn;
}

// Defaults picked so the calm fabric is (nearly) compute-bound — vanilla ~=
// bytescheduler at amplitude 0 — and volatility derates the links into the
// comm-bound regime where priority scheduling pays, so the gap widens with
// amplitude: the figure's thesis. ResNet50 is the zoo's least
// communication-bound model, which leaves the calm cluster with headroom.
struct SweepSpec {
  std::string model = "resnet50";
  double gbps = 25.0;
  uint64_t seed = 3;
};

JobConfig CellJob(const SweepSpec& spec, SchedMode mode, double amplitude, int shards) {
  JobConfig job = bench::WithMode(
      bench::MakeJob(ModelByName(spec.model), Setup::MxnetPsTcp(), /*num_machines=*/2,
                     Bandwidth::Gbps(spec.gbps)),
      mode);
  job.warmup_iters = 1;
  job.measure_iters = 3;
  job.shards = shards;
  job.dynamics = Fabric(spec.seed, amplitude);
  return job;
}

// The full figure: one row per amplitude, both modes, cells evaluated
// concurrently on the pool. Deterministic: rows depend only on (seed,
// shards), never on `jobs`.
std::vector<VolatilityRow> ComputeSweep(const SweepSpec& spec, int shards, int jobs) {
  SweepRunner runner(jobs);
  const std::vector<double> speeds =
      runner.ParallelFor(kAmplitudes.size() * 2, [&](size_t index) {
        const double amplitude = kAmplitudes[index / 2];
        const SchedMode mode =
            (index % 2 == 0) ? SchedMode::kVanilla : SchedMode::kByteScheduler;
        return bench::RunSpeed(CellJob(spec, mode, amplitude, shards));
      });
  std::vector<VolatilityRow> rows;
  for (size_t i = 0; i < kAmplitudes.size(); ++i) {
    VolatilityRow row;
    row.amplitude = kAmplitudes[i];
    row.vanilla = speeds[2 * i];
    row.bytescheduler = speeds[2 * i + 1];
    rows.push_back(row);
  }
  return rows;
}

// CSV with full double precision: the determinism check compares these
// strings byte for byte across --jobs and --shards values.
std::string ToCsv(const std::vector<VolatilityRow>& rows) {
  std::ostringstream out;
  out << "amplitude,vanilla_img_s,bytescheduler_img_s,gain\n";
  for (const VolatilityRow& row : rows) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%.1f,%.17g,%.17g,%.17g\n", row.amplitude, row.vanilla,
                  row.bytescheduler, row.gain());
    out << buf;
  }
  return out.str();
}

// Inserts (or replaces) a "fig15_volatility" section in BENCH_sim.json,
// creating the file when micro_sim has not written one (e.g. a sanitizer
// preset running only the net-dyn label). Returns false when the merged
// document fails to re-parse or the file cannot be written.
bool AppendBenchSection(const std::string& path, const std::vector<VolatilityRow>& rows,
                        const SweepSpec& spec, int shards) {
  std::string text = "{\n}\n";
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
  }

  // Replace a section left by a previous append: cut from the comma that
  // precedes the key (or from the opening brace when it is the only key)
  // through the end, then re-close the object.
  const size_t key = text.find("\"fig15_volatility\"");
  if (key != std::string::npos) {
    const size_t comma = text.rfind(',', key);
    text.resize(comma != std::string::npos ? comma : text.find('{') + 1);
    text += "\n}\n";
  }
  const size_t close = text.rfind('}');
  if (close == std::string::npos) {
    return false;
  }
  std::string head = text.substr(0, close);
  while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) {
    head.pop_back();
  }
  const bool first_key = head == "{";

  std::ostringstream section;
  section << (first_key ? "" : ",") << "\n  \"fig15_volatility\": {\n";
  section << "    \"model\": \"" << spec.model << "\",\n";
  section << "    \"setup\": \"mxnet_ps_tcp\",\n";
  char gbps_buf[64];
  std::snprintf(gbps_buf, sizeof(gbps_buf), "%.1f", spec.gbps);
  section << "    \"gbps\": " << gbps_buf << ",\n";
  section << "    \"seed\": " << spec.seed << ",\n";
  section << "    \"shards\": " << shards << ",\n";
  section << "    \"rows\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "%s\n      {\"amplitude\": %.1f, \"vanilla\": %.2f, "
                  "\"bytescheduler\": %.2f, \"gain\": %.4f}",
                  i == 0 ? "" : ",", rows[i].amplitude, rows[i].vanilla,
                  rows[i].bytescheduler, rows[i].gain());
    section << buf;
  }
  section << "\n    ]\n  }\n}\n";

  const std::string merged = head + section.str();
  obs::JsonValue parsed;
  if (!obs::ParseJson(merged, &parsed)) {
    return false;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << merged;
  return true;
}

}  // namespace
}  // namespace bsched

int main(int argc, char** argv) {
  using namespace bsched;

  const Flags flags(argc, argv);
  const int jobs = bench::InitBenchJobs(argc, argv);
  SweepSpec spec;
  spec.model = flags.GetString("model", spec.model);
  spec.gbps = flags.GetDouble("gbps", spec.gbps);
  spec.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<int64_t>(spec.seed)));
  const int shards = static_cast<int>(flags.GetInt("shards", 1));
  const std::string csv_path = flags.GetString("csv", "");
  const std::string bench_path = flags.GetString("bench-append", "");
  const bool check_determinism = flags.GetBool("check-determinism", false);
  const bool require_growing_gain = flags.GetBool("require-growing-gain", false);

  std::printf("Figure 15: volatility sweep (%s, mxnet ps tcp, 2 machines, %.0f Gbps, "
              "seed=%llu, shards=%d, jobs=%d)\n",
              spec.model.c_str(), spec.gbps,
              static_cast<unsigned long long>(spec.seed), shards, jobs);

  const std::vector<VolatilityRow> rows = ComputeSweep(spec, shards, jobs);
  std::printf("  %-10s %14s %16s %8s\n", "amplitude", "vanilla img/s", "bytesched img/s",
              "gain");
  for (const VolatilityRow& row : rows) {
    std::printf("  %-10.1f %14.1f %16.1f %7.1f%%\n", row.amplitude, row.vanilla,
                row.bytescheduler, 100.0 * (row.gain() - 1.0));
  }

  int failures = 0;

  if (check_determinism) {
    // Bit-identical rows at any worker count and any shard count >= 1.
    const std::string reference = ToCsv(rows);
    if (ToCsv(ComputeSweep(spec, shards, 1)) != reference) {
      std::fprintf(stderr, "FATAL: sweep rows depend on --jobs\n");
      ++failures;
    }
    const std::string at_shard1 =
        shards == 1 ? reference : ToCsv(ComputeSweep(spec, 1, jobs));
    for (const int k : {2, 8}) {
      if (ToCsv(ComputeSweep(spec, k, jobs)) != at_shard1) {
        std::fprintf(stderr, "FATAL: sweep rows diverge at shards=%d\n", k);
        ++failures;
      }
    }
    if (failures == 0) {
      std::printf("  determinism: rows byte-identical at jobs {1,%d} and shards {1,2,8}\n",
                  jobs);
    }
  }

  if (require_growing_gain) {
    const double calm = rows.front().gain();
    const double stormy = rows.back().gain();
    if (!(stormy > calm)) {
      std::fprintf(stderr,
                   "FATAL: ByteScheduler gain does not grow with volatility "
                   "(%.4fx at %.1f vs %.4fx at %.1f)\n",
                   calm, rows.front().amplitude, stormy, rows.back().amplitude);
      ++failures;
    } else {
      std::printf("  gain grows with volatility: %.2fx calm -> %.2fx at amplitude %.1f\n",
                  calm, stormy, rows.back().amplitude);
    }
  }

  if (!csv_path.empty()) {
    std::ofstream out(csv_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      ++failures;
    } else {
      out << ToCsv(rows);
      std::printf("  wrote %s\n", csv_path.c_str());
    }
  }

  if (!bench_path.empty()) {
    if (AppendBenchSection(bench_path, rows, spec, shards)) {
      std::printf("  appended fig15_volatility section to %s\n", bench_path.c_str());
    } else {
      std::fprintf(stderr, "cannot append fig15_volatility section to %s\n",
                   bench_path.c_str());
      ++failures;
    }
  }

  return failures == 0 ? 0 : 1;
}
