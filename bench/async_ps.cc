// §6.1 claim check: "Only the results of synchronous training is shown as we
// find the training speedup of asynchronous mode is similar." Compares the
// ByteScheduler speed-up under synchronous and asynchronous PS training.
#include <cstdio>
#include <iostream>

#include "bench/harness.h"
#include "src/common/table.h"
#include "src/model/zoo.h"

using namespace bsched;

namespace {

double Gain(const ModelProfile& model, bool async_mode) {
  JobConfig job = bench::MakeJob(model, Setup::MxnetPsRdma(), 4, Bandwidth::Gbps(100));
  job.ps_async = async_mode;
  const double baseline = bench::RunSpeed(bench::WithMode(job, SchedMode::kVanilla));
  const double sched = bench::RunSpeed(bench::WithMode(job, SchedMode::kByteScheduler));
  return 100.0 * (sched / baseline - 1.0);
}

}  // namespace

int main() {
  std::printf("Asynchronous PS (sec. 6.1): ByteScheduler speedup, sync vs async training\n"
              "(MXNet PS RDMA, 32 GPUs, 100 Gbps)\n\n");
  Table table({"model", "sync speedup", "async speedup"});
  for (const auto& model : {Vgg16(), ResNet50(), Transformer()}) {
    table.AddRow({model.name, Table::Num(Gain(model, false), 1) + "%",
                  Table::Num(Gain(model, true), 1) + "%"});
  }
  table.RenderAscii(std::cout);
  std::printf("\nExpected shape: clearly positive speedups in both modes. In this substrate\n"
              "async gains are smaller than sync gains because the async baseline already\n"
              "avoids aggregation stalls; the paper reports the two as similar.\n");
  return 0;
}
