// Ablations of ByteScheduler's design choices (DESIGN.md experiment index):
//   1. credit-based preemption vs stop-and-wait at the same partition size
//   2. tensor partitioning on/off (priority kept)
//   3. priority scheduling on/off (partitioning kept)
//   4. crossing the global barrier on/off (TensorFlow PS)
//   5. PS load balance: vanilla vs partitioned assignment (Transformer)
#include <cstdio>
#include <iostream>

#include "bench/harness.h"
#include "src/common/table.h"
#include "src/model/zoo.h"
#include "src/tuning/auto_tuner.h"

using namespace bsched;

namespace {

double Run(JobConfig job) { return bench::RunSpeed(job); }

}  // namespace

int main() {
  std::printf("Ablations: VGG16 unless noted, 32 GPUs, 100 Gbps\n\n");

  {
    JobConfig base =
        bench::WithMode(bench::MakeJob(Vgg16(), Setup::MxnetPsRdma(), 4, Bandwidth::Gbps(100)),
                        SchedMode::kByteScheduler);
    Table t({"variant", "speed (img/s)", "vs full"});
    const double full = Run(base);

    JobConfig stop_wait = base;
    stop_wait.credit_bytes = stop_wait.partition_bytes;  // one partition in flight
    const double sw = Run(stop_wait);

    JobConfig no_partition = base;
    no_partition.partition_bytes = SchedulerConfig::kNoPartition;
    const double np = Run(no_partition);

    JobConfig fifo = base;
    SchedulerConfig cfg = SchedulerConfig::ByteScheduler(base.partition_bytes, base.credit_bytes);
    cfg.policy = SchedulerConfig::Policy::kFifo;
    fifo.sched_override = cfg;
    const double ff = Run(fifo);

    t.AddRow({"full ByteScheduler", Table::Num(full, 0), "+0.0%"});
    t.AddRow({"stop-and-wait (credit = partition)", Table::Num(sw, 0),
              bench::GainPercent(sw, full)});
    t.AddRow({"no partitioning", Table::Num(np, 0), bench::GainPercent(np, full)});
    t.AddRow({"FIFO order (no priority)", Table::Num(ff, 0), bench::GainPercent(ff, full)});
    std::printf("-- scheduler components (MXNet PS RDMA) --\n");
    t.RenderAscii(std::cout);
  }

  {
    JobConfig base = bench::WithMode(
        bench::MakeJob(Vgg16(), Setup::TensorFlowPsTcp(), 4, Bandwidth::Gbps(100)),
        SchedMode::kByteScheduler);
    const double crossing = Run(base);
    JobConfig no_cross = base;
    no_cross.disable_barrier_crossing = true;
    const double stalled = Run(no_cross);
    const double vanilla = Run(bench::WithMode(base, SchedMode::kVanilla));
    Table t({"variant", "speed (img/s)", "vs vanilla"});
    t.AddRow({"vanilla TensorFlow", Table::Num(vanilla, 0), "+0.0%"});
    t.AddRow({"scheduled, barrier NOT crossed", Table::Num(stalled, 0),
              bench::GainPercent(stalled, vanilla)});
    t.AddRow({"scheduled, barrier crossed (sec. 3.4)", Table::Num(crossing, 0),
              bench::GainPercent(crossing, vanilla)});
    std::printf("\n-- crossing the global barrier (TensorFlow PS TCP) --\n");
    t.RenderAscii(std::cout);
  }

  {
    JobConfig base = bench::MakeJob(Transformer(), Setup::MxnetPsRdma(), 4, Bandwidth::Gbps(100));
    const JobResult vanilla = RunTrainingJob(bench::WithMode(base, SchedMode::kVanilla));
    const JobResult sched =
        RunTrainingJob(bench::WithMode(base, SchedMode::kByteScheduler));
    Table t({"variant", "speed (tokens/s)", "shard load imbalance"});
    t.AddRow({"vanilla (whole embedding on one shard)", Table::Num(vanilla.samples_per_sec, 0),
              Table::Num(vanilla.shard_load_imbalance, 2) + "x"});
    t.AddRow({"bytescheduler (partitions striped)", Table::Num(sched.samples_per_sec, 0),
              Table::Num(sched.shard_load_imbalance, 2) + "x"});
    std::printf("\n-- PS load balancing (Transformer, MXNet PS RDMA) --\n");
    t.RenderAscii(std::cout);
  }

  {
    // §7 extension: per-layer partition sizes refined greedily around the
    // tuned uniform configuration.
    JobConfig base =
        bench::WithMode(bench::MakeJob(Vgg16(), Setup::MxnetPsRdma(), 4, Bandwidth::Gbps(100)),
                        SchedMode::kByteScheduler);
    AutoTunerOptions opt;
    opt.noise_frac = 0.0;
    AutoTuner tuner(base, opt);
    const TunedParams uniform{base.partition_bytes, base.credit_bytes};
    const double uniform_speed =
        tuner.EvaluateObjective(uniform.partition_bytes, uniform.credit_bytes);
    const AutoTuner::PerLayerResult refined = tuner.TunePerLayer(uniform, 2);
    Table t({"variant", "speed (img/s)", "search trials"});
    t.AddRow({"uniform tuned partition", Table::Num(uniform_speed, 0), "1"});
    t.AddRow({"per-layer refined (sec. 7 extension)", Table::Num(refined.speed, 0),
              std::to_string(refined.extra_trials)});
    std::printf("\n-- dynamic per-layer partition sizes (VGG16, MXNet PS RDMA) --\n");
    t.RenderAscii(std::cout);
    std::printf("\nPer-layer refinement wins a little extra speed at a much higher search\n"
                "cost, as the paper's sec. 7 anticipates.\n");
  }
  return 0;
}
