// Regenerates Figure 2: the contrived 3-layer example where a better
// transmission schedule plus tensor partitioning beats default FIFO by ~44%.
// One worker machine and one PS over an ideal 8 Gbps link.
#include <cstdio>

#include "bench/harness.h"
#include "src/model/zoo.h"

using namespace bsched;

int main() {
  Setup setup;
  setup.name = "contrived PS";
  setup.framework = Framework::kMxnet;
  setup.arch = ArchType::kPs;
  setup.transport = TransportModel::Ideal();

  JobConfig job = bench::MakeJob(ContrivedFig2Model(), setup, 1, Bandwidth::Gbps(20));
  job.gpus_per_machine = 1;
  job.warmup_iters = 2;
  job.measure_iters = 8;

  job.mode = SchedMode::kVanilla;
  const JobResult fifo = RunTrainingJob(job);

  job.mode = SchedMode::kByteScheduler;
  job.partition_bytes = MiB(1);
  job.credit_bytes = MiB(4);
  const JobResult sched = RunTrainingJob(job);

  std::printf("Figure 2: contrived 3-layer DNN, FIFO vs priority schedule + partitioning\n\n");
  std::printf("  FIFO schedule       : %s per iteration\n", fifo.avg_iter_time.ToString().c_str());
  std::printf("  better schedule     : %s per iteration\n", sched.avg_iter_time.ToString().c_str());
  std::printf("  training speed-up   : %s (paper's contrived example: ~44%%)\n",
              bench::GainPercent(sched.samples_per_sec, fifo.samples_per_sec).c_str());
  return 0;
}
