// Link send-chain churn for the dynamic-network perf gate (micro_sim and
// obs_overhead): one Link carries a chain of back-to-back messages whose
// delivery callbacks send the successor — the NIC-bound pattern every PS
// worker uplink produces. Measured twice, on the legacy fixed-rate path and
// with an identity RateModel installed (enabled-but-idle dynamics), the
// ratio is the price of the integrating transmit path when nothing varies.
// The simulated timings are bit-identical by the zero-cost contract (see
// src/net/link.h); this measures host CPU only.
#ifndef BENCH_LINK_CHURN_H_
#define BENCH_LINK_CHURN_H_

#include <cstdint>
#include <functional>

#include "bench/churn.h"
#include "src/common/units.h"
#include "src/net/link.h"
#include "src/net/rate_model.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace bench {

struct LinkChurnResult {
  double msgs_per_sec = 0.0;
  uint64_t checksum = 0;  // must match between the static and idle variants
};

// One round: `messages` chained sends over a fresh simulator + link, sizes
// cycling through a small deterministic set so the per-message arithmetic is
// exercised across the wheel's time scales. Returns CPU-time throughput.
inline LinkChurnResult RunLinkChurn(bool idle_model, int messages) {
  Simulator sim;
  Link link(&sim, "bench.up", Bandwidth::Gbps(10), TransportModel::Tcp());
  if (idle_model) {
    link.SetRateModel(RateModel());  // identity schedule: dynamic path, idle
  }
  static const Bytes kSizes[] = {KiB(4), KiB(64), KiB(512), MiB(1)};
  uint64_t checksum = 0;
  int remaining = messages;
  std::function<void()> send_next = [&] {
    if (remaining <= 0) {
      return;
    }
    const Bytes size = kSizes[remaining % 4];
    --remaining;
    link.Send(size, [&] {
      checksum += static_cast<uint64_t>(sim.Now().nanos() & 0xffff);
      send_next();
    });
  };
  const double start = CpuSeconds();
  send_next();
  sim.Run();
  const double sec = CpuSeconds() - start;
  LinkChurnResult result;
  result.msgs_per_sec = sec > 0 ? messages / sec : 0.0;
  result.checksum = checksum;
  return result;
}

inline LinkChurnResult MeasureLinkChurn(bool idle_model, int messages, int rounds) {
  LinkChurnResult best;
  for (int r = 0; r < rounds; ++r) {
    const LinkChurnResult run = RunLinkChurn(idle_model, messages);
    if (run.msgs_per_sec > best.msgs_per_sec) {
      best.msgs_per_sec = run.msgs_per_sec;
    }
    best.checksum = run.checksum;
  }
  return best;
}

}  // namespace bench
}  // namespace bsched

#endif  // BENCH_LINK_CHURN_H_
