// Regenerates Table 1: best partition size and credit size (MB) found by
// exhaustive grid search for VGG16 / ResNet50 / Transformer under MXNet PS
// RDMA and MXNet NCCL RDMA, 32 GPUs, 100 Gbps.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/harness.h"
#include "src/common/table.h"
#include "src/model/zoo.h"
#include "src/tuning/auto_tuner.h"
#include "src/tuning/search.h"

using namespace bsched;

namespace {

constexpr int kLattice = 8;

TunedParams GridBest(const ModelProfile& model, const Setup& setup) {
  JobConfig job = bench::MakeJob(model, setup, 4, Bandwidth::Gbps(100));
  job.measure_iters = 3;
  AutoTunerOptions opt;
  opt.noise_frac = 0.0;
  opt.partition_lo = KiB(256);
  AutoTuner tuner(job, opt);
  GridSearch grid(2, kLattice);
  TunedParams best{};
  double best_speed = 0.0;
  for (int t = 0; t < grid.total_points(); ++t) {
    const std::vector<double> x = grid.Suggest();
    const Bytes partition = tuner.PartitionFromUnit(x[0]);
    const Bytes credit = tuner.CreditFromUnit(x[1]);
    const double speed = tuner.EvaluateObjective(partition, credit);
    if (speed > best_speed) {
      best_speed = speed;
      best = TunedParams{partition, std::max(credit, partition)};
    }
  }
  return best;
}

std::string Mb(Bytes b) { return Table::Num(static_cast<double>(b) / 1e6, 1); }

}  // namespace

int main() {
  std::printf("Table 1: best (partition MB, credit MB) per model and architecture\n"
              "(grid search over an %dx%d log lattice; 32 GPUs, 100 Gbps)\n\n",
              kLattice, kLattice);
  Table table({"arch", "VGG16", "ResNet50", "Transformer"});
  for (const Setup& setup : {Setup::MxnetPsRdma(), Setup::MxnetNcclRdma()}) {
    std::vector<std::string> row = {setup.name};
    for (const auto& model : {Vgg16(), ResNet50(), Transformer()}) {
      const TunedParams best = GridBest(model, setup);
      row.push_back("(" + Mb(best.partition_bytes) + ", " + Mb(best.credit_bytes) + ")");
    }
    table.AddRow(std::move(row));
  }
  table.RenderAscii(std::cout);
  std::printf("\nPaper's Table 1: PS (6,21)/(3,17)/(5,29); NCCL (88,171)/(56,64)/(56,103).\n"
              "Expected shape: NCCL needs much larger partitions/credits than PS; best\n"
              "values differ across models.\n");
  return 0;
}
