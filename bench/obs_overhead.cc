// Instrumentation-overhead benchmark: proves the observability layer is
// zero-cost when disabled and cheap when enabled.
//
//  1. Event-loop churn (the micro_sim workload, shared via bench/churn.h)
//     with instrumentation disabled, compared against the BENCH_sim.json
//     baseline micro_sim wrote: the hook sites compiled into the hot paths
//     must not cost measurable events/sec. Slower than the baseline by more
//     than --tolerance fails the run (exit 1) — the zero-cost-when-disabled
//     assertion wired into `ctest -L perf` (default 3%; the ctest invocation
//     widens it above the CI container's cross-process noise floor, and a
//     miss is confirmed with a re-measure before failing).
//  2. The same churn with a TimeSeriesRecorder ticking on the simulator
//     every simulated millisecond (counter + gauge + sketch sources): the
//     sampling-enabled event loop must stay within --sampling-tolerance of
//     the same baseline (default 5%), or the run fails — re-measured once
//     before failing, like the disabled gate.
//  3. A reference training job in three modes — off / metrics / metrics +
//     trace — reporting the enabled-mode wall-clock overhead (informational;
//     enabled tracing allocates span strings and is allowed to cost more).
//
// Writes BENCH_obs.json next to BENCH_sim.json.
//
// Flags: --rounds N        best-of rounds per measurement (default 3)
//        --churn-events N  events per churn round (default 300000)
//        --out PATH        output JSON (default BENCH_obs.json)
//        --baseline PATH   BENCH_sim.json to compare against (missing file
//                          or empty path skips the comparison)
//        --tolerance F     allowed slowdown vs baseline (default 0.03)
//        --sampling-tolerance F  allowed sampling-enabled slowdown vs the
//                          same baseline (default 0.05)
//        --idle-tolerance F  allowed link-churn slowdown of the
//                          enabled-but-idle RateModel path vs the static
//                          link path measured in the same process (default
//                          0.03 — the dynamic fabric's zero-cost gate,
//                          mirroring micro_sim's --max-idle-regression)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/churn.h"
#include "bench/link_churn.h"
#include "src/common/flags.h"
#include "src/common/trace.h"
#include "src/model/zoo.h"
#include "src/obs/json_lite.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

enum class ObsMode { kOff, kMetrics, kMetricsAndTrace };

JobConfig ReferenceJob() {
  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  job.mode = SchedMode::kByteScheduler;
  job.warmup_iters = 1;
  job.measure_iters = 2;
  return job;
}

// Best-of wall-clock seconds of the reference job in one observability mode.
// Each timed round runs the job several times (a single simulation finishes
// in ~1 ms, too short to time) with fresh sinks per run, so enabled-mode
// costs include sink writes but not file I/O.
double MeasureJobSec(ObsMode mode, int rounds) {
  constexpr int kRepsPerRound = 20;
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kRepsPerRound; ++rep) {
      TraceRecorder trace;
      MetricsRegistry metrics;
      JobConfig job = ReferenceJob();
      if (mode != ObsMode::kOff) {
        job.metrics = &metrics;
      }
      if (mode == ObsMode::kMetricsAndTrace) {
        job.trace = &trace;
      }
      RunTrainingJob(job);
    }
    best = std::min(best, bench::SecondsSince(start) / kRepsPerRound);
  }
  return best;
}

// The churn workload with sampling enabled: a TimeSeriesRecorder scope ticks
// on the churn simulator every simulated millisecond, sampling a counter, a
// gauge and a sketch from a registry populated before the run. The churn sim
// advances ~100ns per link plus the 50ms retry-timer tail, so a round sees
// tick events interleaved throughout — the cost being gated is the recorder's
// timer chain and row formatting, on top of the identical event-loop work.
bench::ChurnResult MeasureSamplingChurn(int events, int rounds, uint64_t* ticks_out) {
  bench::ChurnResult best;
  for (int r = 0; r < rounds; ++r) {
    Simulator sim;
    MetricsRegistry registry;
    registry.counter("churn.links")->Inc(static_cast<uint64_t>(events));
    registry.gauge("churn.lane")->Set(events);
    Histogram* payload = registry.histogram("churn.payload");
    for (int i = 0; i < 16; ++i) {
      payload->Observe(100 + i);
    }
    TimeSeriesRecorder recorder(&registry, SimTime::Millis(1));
    const int scope =
        recorder.AddScope("churn", &sim, [&sim] { return sim.PendingEvents() > 0; });
    recorder.SampleCounter(scope, "churn.links");
    recorder.SampleGauge(scope, "churn.lane");
    recorder.SampleSketch(scope, "churn.payload");
    recorder.Start();
    const double start = bench::CpuSeconds();
    const uint64_t checksum = bench::RunChurn<Simulator, EventHandle>(sim, events);
    const double sec = bench::CpuSeconds() - start;
    const double rate = 2.0 * events / sec;
    if (rate > best.events_per_sec) {
      best.events_per_sec = rate;
      *ticks_out = recorder.total_ticks();
    }
    best.checksum = checksum;
  }
  return best;
}

// events_per_sec from a BENCH_sim.json; 0 when the file is missing or does
// not parse.
double BaselineEventsPerSec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return 0.0;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  obs::JsonValue root;
  std::string error;
  if (!obs::ParseJson(buffer.str(), &root, &error)) {
    std::fprintf(stderr, "warning: cannot parse %s: %s\n", path.c_str(), error.c_str());
    return 0.0;
  }
  const obs::JsonValue* loop = root.Find("event_loop");
  if (loop == nullptr) {
    return 0.0;
  }
  const obs::JsonValue* rate = loop->Find("events_per_sec");
  return rate != nullptr ? rate->NumberOr(0.0) : 0.0;
}

}  // namespace
}  // namespace bsched

int main(int argc, char** argv) {
  using namespace bsched;

  const Flags flags(argc, argv);
  const int rounds = static_cast<int>(flags.GetInt("rounds", 3));
  const int churn_events = static_cast<int>(flags.GetInt("churn-events", 300000));
  const std::string out_path = flags.GetString("out", "BENCH_obs.json");
  const std::string baseline_path = flags.GetString("baseline", "BENCH_sim.json");
  const double tolerance = flags.GetDouble("tolerance", 0.03);
  const double sampling_tolerance = flags.GetDouble("sampling-tolerance", 0.05);
  const double idle_tolerance = flags.GetDouble("idle-tolerance", 0.03);

  std::printf("obs_overhead: instrumentation cost (rounds=%d)\n", rounds);

  // 1. Disabled-instrumentation event loop vs the micro_sim baseline.
  const bench::ChurnResult churn =
      bench::MeasureChurn<Simulator, EventHandle>(churn_events, rounds);
  const double baseline = BaselineEventsPerSec(baseline_path);
  double slowdown = 0.0;
  bool within_tolerance = true;
  if (baseline > 0.0) {
    double rate = churn.events_per_sec;
    if (1.0 - rate / baseline > tolerance) {
      // The baseline comes from a different process window; confirm a miss
      // with an independent re-measure so container noise has to strike
      // twice before the gate trips.
      const bench::ChurnResult confirm =
          bench::MeasureChurn<Simulator, EventHandle>(churn_events, rounds);
      rate = std::max(rate, confirm.events_per_sec);
    }
    slowdown = 1.0 - rate / baseline;
    within_tolerance = slowdown <= tolerance;
    std::printf("  event loop (obs disabled): %.2fM events/sec vs baseline %.2fM (%+.1f%%)%s\n",
                churn.events_per_sec / 1e6, baseline / 1e6, -100.0 * slowdown,
                within_tolerance ? "" : "  ** EXCEEDS TOLERANCE **");
  } else {
    std::printf("  event loop (obs disabled): %.2fM events/sec (no baseline at %s)\n",
                churn.events_per_sec / 1e6, baseline_path.c_str());
  }

  // 2. Sampling-enabled event loop vs the same baseline (the churn overhead
  //    gate the time-series recorder must stay under).
  uint64_t sampling_ticks = 0;
  bench::ChurnResult sampling =
      MeasureSamplingChurn(churn_events, rounds, &sampling_ticks);
  double sampling_slowdown = 0.0;
  bool sampling_within_tolerance = true;
  if (baseline > 0.0) {
    double rate = sampling.events_per_sec;
    if (1.0 - rate / baseline > sampling_tolerance) {
      uint64_t confirm_ticks = 0;
      const bench::ChurnResult confirm =
          MeasureSamplingChurn(churn_events, rounds, &confirm_ticks);
      rate = std::max(rate, confirm.events_per_sec);
    }
    sampling_slowdown = 1.0 - rate / baseline;
    sampling_within_tolerance = sampling_slowdown <= sampling_tolerance;
    std::printf(
        "  event loop (sampling on): %.2fM events/sec vs baseline %.2fM (%+.1f%%, %llu ticks)%s\n",
        sampling.events_per_sec / 1e6, baseline / 1e6, -100.0 * sampling_slowdown,
        static_cast<unsigned long long>(sampling_ticks),
        sampling_within_tolerance ? "" : "  ** EXCEEDS TOLERANCE **");
  } else {
    std::printf("  event loop (sampling on): %.2fM events/sec, %llu ticks (no baseline at %s)\n",
                sampling.events_per_sec / 1e6,
                static_cast<unsigned long long>(sampling_ticks), baseline_path.c_str());
  }

  // 2b. Enabled-but-idle dynamic-network path: the integrating Link transmit
  //     path with an identity RateModel installed must track the static link
  //     path (same-process ratio, so the tight default holds even where the
  //     cross-process gates above need widening).
  const int link_msgs = static_cast<int>(flags.GetInt("link-msgs", 200000));
  const bench::LinkChurnResult link_static =
      bench::MeasureLinkChurn(false, link_msgs, rounds);
  const bench::LinkChurnResult link_idle = bench::MeasureLinkChurn(true, link_msgs, rounds);
  if (link_static.checksum != link_idle.checksum) {
    std::fprintf(stderr, "FATAL: link churn timings diverge (static %llu, idle-model %llu)\n",
                 static_cast<unsigned long long>(link_static.checksum),
                 static_cast<unsigned long long>(link_idle.checksum));
    return 1;
  }
  double idle_overhead = 1.0 - link_idle.msgs_per_sec / link_static.msgs_per_sec;
  if (idle_overhead > idle_tolerance) {
    const bench::LinkChurnResult s2 = bench::MeasureLinkChurn(false, link_msgs, rounds);
    const bench::LinkChurnResult i2 = bench::MeasureLinkChurn(true, link_msgs, rounds);
    idle_overhead = std::min(idle_overhead, 1.0 - i2.msgs_per_sec / s2.msgs_per_sec);
  }
  const bool idle_within_tolerance = idle_overhead <= idle_tolerance;
  std::printf("  link churn (idle rate-model): %.2fM msgs/sec vs static %.2fM (%+.1f%%)%s\n",
              link_idle.msgs_per_sec / 1e6, link_static.msgs_per_sec / 1e6,
              -100.0 * idle_overhead,
              idle_within_tolerance ? "" : "  ** EXCEEDS TOLERANCE **");

  // 3. Enabled-mode cost on a reference training job (informational).
  const double off_sec = MeasureJobSec(ObsMode::kOff, rounds);
  const double metrics_sec = MeasureJobSec(ObsMode::kMetrics, rounds);
  const double full_sec = MeasureJobSec(ObsMode::kMetricsAndTrace, rounds);
  std::printf("  reference job: off %.3fs, +metrics %.3fs (%+.1f%%), +trace %.3fs (%+.1f%%)\n",
              off_sec, metrics_sec, 100.0 * (metrics_sec / off_sec - 1.0), full_sec,
              100.0 * (full_sec / off_sec - 1.0));

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"obs_overhead\",\n");
  std::fprintf(out, "  \"rounds\": %d,\n", rounds);
  std::fprintf(out, "  \"event_loop_disabled\": {\n");
  std::fprintf(out, "    \"events\": %d,\n", churn_events);
  std::fprintf(out, "    \"events_per_sec\": %.0f,\n", churn.events_per_sec);
  std::fprintf(out, "    \"baseline_events_per_sec\": %.0f,\n", baseline);
  std::fprintf(out, "    \"slowdown\": %.4f,\n", slowdown);
  std::fprintf(out, "    \"tolerance\": %.4f,\n", tolerance);
  std::fprintf(out, "    \"within_tolerance\": %s\n", within_tolerance ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"event_loop_sampling\": {\n");
  std::fprintf(out, "    \"events\": %d,\n", churn_events);
  std::fprintf(out, "    \"ticks\": %llu,\n", static_cast<unsigned long long>(sampling_ticks));
  std::fprintf(out, "    \"events_per_sec\": %.0f,\n", sampling.events_per_sec);
  std::fprintf(out, "    \"baseline_events_per_sec\": %.0f,\n", baseline);
  std::fprintf(out, "    \"slowdown\": %.4f,\n", sampling_slowdown);
  std::fprintf(out, "    \"tolerance\": %.4f,\n", sampling_tolerance);
  std::fprintf(out, "    \"within_tolerance\": %s\n",
               sampling_within_tolerance ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"link_churn_idle\": {\n");
  std::fprintf(out, "    \"messages\": %d,\n", link_msgs);
  std::fprintf(out, "    \"static_msgs_per_sec\": %.0f,\n", link_static.msgs_per_sec);
  std::fprintf(out, "    \"idle_msgs_per_sec\": %.0f,\n", link_idle.msgs_per_sec);
  std::fprintf(out, "    \"slowdown\": %.4f,\n", idle_overhead);
  std::fprintf(out, "    \"tolerance\": %.4f,\n", idle_tolerance);
  std::fprintf(out, "    \"within_tolerance\": %s\n", idle_within_tolerance ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"reference_job\": {\n");
  std::fprintf(out, "    \"off_sec\": %.4f,\n", off_sec);
  std::fprintf(out, "    \"metrics_sec\": %.4f,\n", metrics_sec);
  std::fprintf(out, "    \"metrics_trace_sec\": %.4f,\n", full_sec);
  std::fprintf(out, "    \"metrics_overhead\": %.4f,\n", metrics_sec / off_sec - 1.0);
  std::fprintf(out, "    \"metrics_trace_overhead\": %.4f\n", full_sec / off_sec - 1.0);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  wrote %s\n", out_path.c_str());
  return within_tolerance && sampling_within_tolerance && idle_within_tolerance ? 0 : 1;
}
