// Instrumentation-overhead benchmark: proves the observability layer is
// zero-cost when disabled and cheap when enabled.
//
//  1. Event-loop churn (the micro_sim workload, shared via bench/churn.h)
//     with instrumentation disabled, compared against the BENCH_sim.json
//     baseline micro_sim wrote: the hook sites compiled into the hot paths
//     must not cost measurable events/sec. Slower than the baseline by more
//     than --tolerance fails the run (exit 1) — the zero-cost-when-disabled
//     assertion wired into `ctest -L perf` (default 3%; the ctest invocation
//     widens it above the CI container's cross-process noise floor, and a
//     miss is confirmed with a re-measure before failing).
//  2. A reference training job in three modes — off / metrics / metrics +
//     trace — reporting the enabled-mode wall-clock overhead (informational;
//     enabled tracing allocates span strings and is allowed to cost more).
//
// Writes BENCH_obs.json next to BENCH_sim.json.
//
// Flags: --rounds N        best-of rounds per measurement (default 3)
//        --churn-events N  events per churn round (default 300000)
//        --out PATH        output JSON (default BENCH_obs.json)
//        --baseline PATH   BENCH_sim.json to compare against (missing file
//                          or empty path skips the comparison)
//        --tolerance F     allowed slowdown vs baseline (default 0.03)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/churn.h"
#include "src/common/flags.h"
#include "src/common/trace.h"
#include "src/model/zoo.h"
#include "src/obs/json_lite.h"
#include "src/obs/metrics.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

enum class ObsMode { kOff, kMetrics, kMetricsAndTrace };

JobConfig ReferenceJob() {
  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 2;
  job.bandwidth = Bandwidth::Gbps(100);
  job.mode = SchedMode::kByteScheduler;
  job.warmup_iters = 1;
  job.measure_iters = 2;
  return job;
}

// Best-of wall-clock seconds of the reference job in one observability mode.
// Each timed round runs the job several times (a single simulation finishes
// in ~1 ms, too short to time) with fresh sinks per run, so enabled-mode
// costs include sink writes but not file I/O.
double MeasureJobSec(ObsMode mode, int rounds) {
  constexpr int kRepsPerRound = 20;
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kRepsPerRound; ++rep) {
      TraceRecorder trace;
      MetricsRegistry metrics;
      JobConfig job = ReferenceJob();
      if (mode != ObsMode::kOff) {
        job.metrics = &metrics;
      }
      if (mode == ObsMode::kMetricsAndTrace) {
        job.trace = &trace;
      }
      RunTrainingJob(job);
    }
    best = std::min(best, bench::SecondsSince(start) / kRepsPerRound);
  }
  return best;
}

// events_per_sec from a BENCH_sim.json; 0 when the file is missing or does
// not parse.
double BaselineEventsPerSec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return 0.0;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  obs::JsonValue root;
  std::string error;
  if (!obs::ParseJson(buffer.str(), &root, &error)) {
    std::fprintf(stderr, "warning: cannot parse %s: %s\n", path.c_str(), error.c_str());
    return 0.0;
  }
  const obs::JsonValue* loop = root.Find("event_loop");
  if (loop == nullptr) {
    return 0.0;
  }
  const obs::JsonValue* rate = loop->Find("events_per_sec");
  return rate != nullptr ? rate->NumberOr(0.0) : 0.0;
}

}  // namespace
}  // namespace bsched

int main(int argc, char** argv) {
  using namespace bsched;

  const Flags flags(argc, argv);
  const int rounds = static_cast<int>(flags.GetInt("rounds", 3));
  const int churn_events = static_cast<int>(flags.GetInt("churn-events", 300000));
  const std::string out_path = flags.GetString("out", "BENCH_obs.json");
  const std::string baseline_path = flags.GetString("baseline", "BENCH_sim.json");
  const double tolerance = flags.GetDouble("tolerance", 0.03);

  std::printf("obs_overhead: instrumentation cost (rounds=%d)\n", rounds);

  // 1. Disabled-instrumentation event loop vs the micro_sim baseline.
  const bench::ChurnResult churn =
      bench::MeasureChurn<Simulator, EventHandle>(churn_events, rounds);
  const double baseline = BaselineEventsPerSec(baseline_path);
  double slowdown = 0.0;
  bool within_tolerance = true;
  if (baseline > 0.0) {
    double rate = churn.events_per_sec;
    if (1.0 - rate / baseline > tolerance) {
      // The baseline comes from a different process window; confirm a miss
      // with an independent re-measure so container noise has to strike
      // twice before the gate trips.
      const bench::ChurnResult confirm =
          bench::MeasureChurn<Simulator, EventHandle>(churn_events, rounds);
      rate = std::max(rate, confirm.events_per_sec);
    }
    slowdown = 1.0 - rate / baseline;
    within_tolerance = slowdown <= tolerance;
    std::printf("  event loop (obs disabled): %.2fM events/sec vs baseline %.2fM (%+.1f%%)%s\n",
                churn.events_per_sec / 1e6, baseline / 1e6, -100.0 * slowdown,
                within_tolerance ? "" : "  ** EXCEEDS TOLERANCE **");
  } else {
    std::printf("  event loop (obs disabled): %.2fM events/sec (no baseline at %s)\n",
                churn.events_per_sec / 1e6, baseline_path.c_str());
  }

  // 2. Enabled-mode cost on a reference training job (informational).
  const double off_sec = MeasureJobSec(ObsMode::kOff, rounds);
  const double metrics_sec = MeasureJobSec(ObsMode::kMetrics, rounds);
  const double full_sec = MeasureJobSec(ObsMode::kMetricsAndTrace, rounds);
  std::printf("  reference job: off %.3fs, +metrics %.3fs (%+.1f%%), +trace %.3fs (%+.1f%%)\n",
              off_sec, metrics_sec, 100.0 * (metrics_sec / off_sec - 1.0), full_sec,
              100.0 * (full_sec / off_sec - 1.0));

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"obs_overhead\",\n");
  std::fprintf(out, "  \"rounds\": %d,\n", rounds);
  std::fprintf(out, "  \"event_loop_disabled\": {\n");
  std::fprintf(out, "    \"events\": %d,\n", churn_events);
  std::fprintf(out, "    \"events_per_sec\": %.0f,\n", churn.events_per_sec);
  std::fprintf(out, "    \"baseline_events_per_sec\": %.0f,\n", baseline);
  std::fprintf(out, "    \"slowdown\": %.4f,\n", slowdown);
  std::fprintf(out, "    \"tolerance\": %.4f,\n", tolerance);
  std::fprintf(out, "    \"within_tolerance\": %s\n", within_tolerance ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"reference_job\": {\n");
  std::fprintf(out, "    \"off_sec\": %.4f,\n", off_sec);
  std::fprintf(out, "    \"metrics_sec\": %.4f,\n", metrics_sec);
  std::fprintf(out, "    \"metrics_trace_sec\": %.4f,\n", full_sec);
  std::fprintf(out, "    \"metrics_overhead\": %.4f,\n", metrics_sec / off_sec - 1.0);
  std::fprintf(out, "    \"metrics_trace_overhead\": %.4f\n", full_sec / off_sec - 1.0);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  wrote %s\n", out_path.c_str());
  return within_tolerance ? 0 : 1;
}
