// Perf baseline harness: measures the discrete-event loop on a synthetic
// churn workload (schedule / cancel / nested reschedule, the pattern the
// scheduler's retry timers and transport completions produce) and the
// wall-clock of one reference figure sweep at --jobs 1 vs --jobs N, then
// writes BENCH_sim.json so future PRs can compare against this baseline.
//
// The event-loop measurement also runs the same workload on LegacySimulator,
// an in-tree copy of the pre-pooling event loop (per-event std::function +
// shared_ptr<bool> cancellation token on a std::priority_queue), so the
// speedup of the pooled/small-buffer kernel is measured, not asserted.
//
// Flags: --jobs N          parallel sweep workers (default: hardware concurrency)
//        --out PATH        output JSON path (default: BENCH_sim.json)
//        --churn-events N  events per churn round (default: 300000)
//        --rounds N        churn rounds, best-of (default: 3)
//        --skip-sweep      measure the event loop only (quick smoke mode)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/churn.h"
#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/exec/sweep_runner.h"
#include "src/model/zoo.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

using bench::ChurnResult;
using bench::LegacySimulator;
using bench::MeasureChurn;
using bench::SecondsSince;

// ---- reference figure sweep -----------------------------------------------

double MeasureSweep(int jobs) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<bench::ScalingPane> grid =
      bench::ComputeScalingGrid(Vgg16(), /*include_p3=*/true, jobs);
  double sink = 0.0;
  for (const bench::ScalingPane& pane : grid) {
    for (const bench::ScalingCell& cell : pane.cells) {
      sink += cell.sched;
    }
  }
  const double sec = SecondsSince(start);
  std::printf("  figure sweep (vgg16 grid, jobs=%d): %.3f s (checksum %.1f)\n", jobs, sec, sink);
  return sec;
}

}  // namespace
}  // namespace bsched

int main(int argc, char** argv) {
  using namespace bsched;

  const Flags flags(argc, argv);
  const int jobs = bench::InitBenchJobs(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_sim.json");
  const int churn_events = static_cast<int>(flags.GetInt("churn-events", 300000));
  const int rounds = static_cast<int>(flags.GetInt("rounds", 3));
  const bool skip_sweep = flags.GetBool("skip-sweep", false);

  std::printf("micro_sim: event-loop and sweep perf baseline (jobs=%d)\n", jobs);

  const ChurnResult pooled =
      MeasureChurn<Simulator, EventHandle>(churn_events, rounds);
  const ChurnResult legacy =
      MeasureChurn<LegacySimulator, LegacySimulator::Handle>(churn_events, rounds);
  if (pooled.checksum != legacy.checksum) {
    std::fprintf(stderr, "FATAL: churn checksums diverge (pooled %llu, legacy %llu)\n",
                 static_cast<unsigned long long>(pooled.checksum),
                 static_cast<unsigned long long>(legacy.checksum));
    return 1;
  }
  const double speedup_vs_legacy = pooled.events_per_sec / legacy.events_per_sec;
  std::printf("  event loop: %.2fM events/sec (legacy %.2fM) -> %.2fx\n",
              pooled.events_per_sec / 1e6, legacy.events_per_sec / 1e6, speedup_vs_legacy);

  double serial_sec = 0.0;
  double parallel_sec = 0.0;
  if (!skip_sweep) {
    serial_sec = MeasureSweep(1);
    parallel_sec = MeasureSweep(jobs);
    std::printf("  sweep speedup at jobs=%d: %.2fx\n", jobs,
                parallel_sec > 0 ? serial_sec / parallel_sec : 0.0);
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"micro_sim\",\n");
  std::fprintf(out, "  \"jobs\": %d,\n", jobs);
  std::fprintf(out, "  \"hardware_concurrency\": %d,\n", SweepRunner::DefaultJobs());
  std::fprintf(out, "  \"event_loop\": {\n");
  std::fprintf(out, "    \"workload\": \"churn\",\n");
  std::fprintf(out, "    \"events\": %d,\n", churn_events);
  std::fprintf(out, "    \"rounds\": %d,\n", rounds);
  std::fprintf(out, "    \"events_per_sec\": %.0f,\n", pooled.events_per_sec);
  std::fprintf(out, "    \"legacy_events_per_sec\": %.0f,\n", legacy.events_per_sec);
  std::fprintf(out, "    \"speedup_vs_legacy\": %.3f\n", speedup_vs_legacy);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"figure_sweep\": {\n");
  std::fprintf(out, "    \"model\": \"vgg16\",\n");
  std::fprintf(out, "    \"cells\": 20,\n");
  std::fprintf(out, "    \"measured\": %s,\n", skip_sweep ? "false" : "true");
  std::fprintf(out, "    \"serial_sec\": %.4f,\n", serial_sec);
  std::fprintf(out, "    \"parallel_jobs\": %d,\n", jobs);
  std::fprintf(out, "    \"parallel_sec\": %.4f,\n", parallel_sec);
  std::fprintf(out, "    \"speedup\": %.3f\n",
               parallel_sec > 0 ? serial_sec / parallel_sec : 0.0);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  wrote %s\n", out_path.c_str());
  return 0;
}
