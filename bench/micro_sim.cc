// Perf baseline harness: measures the discrete-event loop on a synthetic
// churn workload (schedule / cancel / nested reschedule, the pattern the
// scheduler's retry timers and transport completions produce) and the
// wall-clock of one reference figure sweep at --jobs 1 vs --jobs N, then
// writes BENCH_sim.json so future PRs can compare against this baseline.
//
// The event-loop measurement runs the same workload on three engines:
//  - the timer-wheel Simulator (the default production queue),
//  - the binary-heap Simulator (QueuePolicy::kBinaryHeap, the differential
//    baseline the wheel must never fall behind by more than 10%),
//  - LegacySimulator, an in-tree copy of the pre-pooling event loop
//    (per-event std::function + shared_ptr<bool> token on a
//    std::priority_queue), so speedups are measured, not asserted.
//
// A shard-scaling section times one reference PS job under the sharded
// coordinator at --shards 1/2/4/8 and records host_cpus alongside: on a
// single-core container the barrier overhead makes sharding a slowdown, and
// the honest numbers let a multi-core reader judge the scaling themselves.
//
// When the output file from a previous run exists (or --baseline points at
// one), the run fails if wheel churn throughput regressed more than 10%
// against it — this is the `ctest -L perf` regression gate.
//
// Flags: --jobs N          parallel sweep workers (default: hardware concurrency)
//        --out PATH        output JSON path (default: BENCH_sim.json)
//        --baseline PATH   prior BENCH_sim.json to gate against (default: --out)
//        --churn-events N  events per churn round (default: 300000)
//        --rounds N        churn rounds, best-of (default: 3)
//        --skip-sweep      measure the event loop only (quick smoke mode)
//        --max-regression F       allowed churn slowdown vs baseline
//                                 (default 0.10 — the >10% regression gate)
//        --min-wheel-vs-heap F    wheel/heap churn floor (default 0.9)
//        --max-idle-regression F  allowed link-churn slowdown of the
//                                 enabled-but-idle RateModel path vs the
//                                 static link path (default 0.03 — the
//                                 dynamic fabric's zero-cost perf gate; a
//                                 same-process ratio, so it tolerates much
//                                 tighter bounds than the cross-process
//                                 gates above)
// The gate defaults assume reasonably quiet hardware; CI on oversubscribed
// single-core containers passes wider values (see bench/CMakeLists.txt).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/churn.h"
#include "bench/harness.h"
#include "bench/link_churn.h"
#include "src/common/flags.h"
#include "src/exec/sweep_runner.h"
#include "src/model/zoo.h"
#include "src/obs/json_lite.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

using bench::ChurnResult;
using bench::LegacySimulator;
using bench::MeasureChurn;
using bench::SecondsSince;

// MeasureChurn default-constructs its Sim; this pins the non-default policy.
struct HeapSimulator : Simulator {
  HeapSimulator() : Simulator(QueuePolicy::kBinaryHeap) {}
};

// ---- reference figure sweep -----------------------------------------------

double MeasureSweep(int jobs) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<bench::ScalingPane> grid =
      bench::ComputeScalingGrid(Vgg16(), /*include_p3=*/true, jobs);
  double sink = 0.0;
  for (const bench::ScalingPane& pane : grid) {
    for (const bench::ScalingCell& cell : pane.cells) {
      sink += cell.sched;
    }
  }
  const double sec = SecondsSince(start);
  std::printf("  figure sweep (vgg16 grid, jobs=%d): %.3f s (checksum %.1f)\n", jobs, sec, sink);
  return sec;
}

// ---- shard scaling --------------------------------------------------------

struct ShardRow {
  int shards = 0;  // 0 = serial single-Simulator path
  double wall_sec = 0.0;
  double events_per_sec = 0.0;
  double samples_per_sec = 0.0;  // bit-identical across shards >= 1
};

ShardRow MeasureShards(int shards) {
  JobConfig job = bench::WithMode(
      bench::MakeJob(Vgg16(), Setup::MxnetPsTcp(), /*num_machines=*/4, Bandwidth::Gbps(10)),
      SchedMode::kByteScheduler);
  job.warmup_iters = 1;
  job.measure_iters = 3;
  job.shards = shards;
  const auto start = std::chrono::steady_clock::now();
  const JobResult result = RunTrainingJob(job);
  ShardRow row;
  row.shards = shards;
  row.wall_sec = SecondsSince(start);
  row.events_per_sec = row.wall_sec > 0 ? static_cast<double>(result.sim_events) / row.wall_sec : 0;
  row.samples_per_sec = result.samples_per_sec;
  std::printf("  shard scaling: shards=%d  %.3f s  %.2fM events/sec  (%.1f img/s)\n", shards,
              row.wall_sec, row.events_per_sec / 1e6, row.samples_per_sec);
  return row;
}

// Reads the previous run's wheel churn throughput; 0 when absent/unreadable.
double BaselineEventsPerSec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return 0.0;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  obs::JsonValue root;
  if (!obs::ParseJson(buf.str(), &root)) {
    return 0.0;
  }
  const obs::JsonValue* loop = root.Find("event_loop");
  const obs::JsonValue* rate = loop != nullptr ? loop->Find("events_per_sec") : nullptr;
  return rate != nullptr ? rate->NumberOr(0.0) : 0.0;
}

}  // namespace
}  // namespace bsched

int main(int argc, char** argv) {
  using namespace bsched;

  const Flags flags(argc, argv);
  const int jobs = bench::InitBenchJobs(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_sim.json");
  const std::string baseline_path = flags.GetString("baseline", out_path);
  const int churn_events = static_cast<int>(flags.GetInt("churn-events", 300000));
  const int rounds = static_cast<int>(flags.GetInt("rounds", 3));
  const bool skip_sweep = flags.GetBool("skip-sweep", false);
  const double max_regression = flags.GetDouble("max-regression", 0.10);
  const double min_wheel_vs_heap = flags.GetDouble("min-wheel-vs-heap", 0.9);
  const double max_idle_regression = flags.GetDouble("max-idle-regression", 0.03);
  const int host_cpus = static_cast<int>(std::thread::hardware_concurrency());

  // Read the gate baseline before this run overwrites the file.
  const double baseline_rate = BaselineEventsPerSec(baseline_path);

  std::printf("micro_sim: event-loop and sweep perf baseline (jobs=%d, host_cpus=%d)\n", jobs,
              host_cpus);

  const ChurnResult wheel = MeasureChurn<Simulator, EventHandle>(churn_events, rounds);
  const ChurnResult heap = MeasureChurn<HeapSimulator, EventHandle>(churn_events, rounds);
  const ChurnResult legacy =
      MeasureChurn<LegacySimulator, LegacySimulator::Handle>(churn_events, rounds);
  if (wheel.checksum != legacy.checksum || heap.checksum != legacy.checksum) {
    std::fprintf(stderr, "FATAL: churn checksums diverge (wheel %llu, heap %llu, legacy %llu)\n",
                 static_cast<unsigned long long>(wheel.checksum),
                 static_cast<unsigned long long>(heap.checksum),
                 static_cast<unsigned long long>(legacy.checksum));
    return 1;
  }
  const double speedup_vs_legacy = wheel.events_per_sec / legacy.events_per_sec;
  const double wheel_vs_heap = wheel.events_per_sec / heap.events_per_sec;
  std::printf("  event loop: wheel %.2fM events/sec, heap %.2fM, legacy %.2fM\n",
              wheel.events_per_sec / 1e6, heap.events_per_sec / 1e6, legacy.events_per_sec / 1e6);
  std::printf("  wheel vs legacy: %.2fx   wheel vs heap: %.2fx\n", speedup_vs_legacy,
              wheel_vs_heap);

  // Dynamic-network zero-cost gate: the integrating transmit path with an
  // identity RateModel installed must track the legacy fixed-rate link path.
  // The simulated timings are bit-identical by contract (tests/net_test.cc
  // asserts that); this measures the host-CPU price of the idle machinery.
  const int link_msgs = static_cast<int>(flags.GetInt("link-msgs", 200000));
  const bench::LinkChurnResult link_static = bench::MeasureLinkChurn(false, link_msgs, rounds);
  const bench::LinkChurnResult link_idle = bench::MeasureLinkChurn(true, link_msgs, rounds);
  if (link_static.checksum != link_idle.checksum) {
    std::fprintf(stderr, "FATAL: link churn timings diverge (static %llu, idle-model %llu)\n",
                 static_cast<unsigned long long>(link_static.checksum),
                 static_cast<unsigned long long>(link_idle.checksum));
    return 1;
  }
  const double idle_overhead = 1.0 - link_idle.msgs_per_sec / link_static.msgs_per_sec;
  std::printf("  link churn: static %.2fM msgs/sec, idle rate-model %.2fM (%+.1f%%)\n",
              link_static.msgs_per_sec / 1e6, link_idle.msgs_per_sec / 1e6,
              -100.0 * idle_overhead);

  std::vector<ShardRow> shard_rows;
  if (!skip_sweep) {
    for (int shards : {0, 1, 2, 4, 8}) {
      shard_rows.push_back(MeasureShards(shards));
    }
    // Cheap determinism cross-check while we are here: every sharded row
    // must report the same simulated speed regardless of shard count.
    for (size_t i = 2; i < shard_rows.size(); ++i) {
      if (shard_rows[i].samples_per_sec != shard_rows[1].samples_per_sec) {
        std::fprintf(stderr, "FATAL: sharded speed diverges at shards=%d (%.17g vs %.17g)\n",
                     shard_rows[i].shards, shard_rows[i].samples_per_sec,
                     shard_rows[1].samples_per_sec);
        return 1;
      }
    }
  }

  double serial_sec = 0.0;
  double parallel_sec = 0.0;
  if (!skip_sweep) {
    serial_sec = MeasureSweep(1);
    parallel_sec = MeasureSweep(jobs);
    std::printf("  sweep speedup at jobs=%d: %.2fx\n", jobs,
                parallel_sec > 0 ? serial_sec / parallel_sec : 0.0);
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"micro_sim\",\n");
  std::fprintf(out, "  \"jobs\": %d,\n", jobs);
  std::fprintf(out, "  \"hardware_concurrency\": %d,\n", SweepRunner::DefaultJobs());
  std::fprintf(out, "  \"host_cpus\": %d,\n", host_cpus);
  std::fprintf(out, "  \"event_loop\": {\n");
  std::fprintf(out, "    \"workload\": \"churn\",\n");
  std::fprintf(out, "    \"events\": %d,\n", churn_events);
  std::fprintf(out, "    \"rounds\": %d,\n", rounds);
  std::fprintf(out, "    \"queue\": \"timer_wheel\",\n");
  std::fprintf(out, "    \"events_per_sec\": %.0f,\n", wheel.events_per_sec);
  std::fprintf(out, "    \"heap_events_per_sec\": %.0f,\n", heap.events_per_sec);
  std::fprintf(out, "    \"legacy_events_per_sec\": %.0f,\n", legacy.events_per_sec);
  std::fprintf(out, "    \"wheel_vs_heap\": %.3f,\n", wheel_vs_heap);
  std::fprintf(out, "    \"speedup_vs_legacy\": %.3f\n", speedup_vs_legacy);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"rate_model\": {\n");
  std::fprintf(out, "    \"workload\": \"link_churn\",\n");
  std::fprintf(out, "    \"messages\": %d,\n", link_msgs);
  std::fprintf(out, "    \"static_msgs_per_sec\": %.0f,\n", link_static.msgs_per_sec);
  std::fprintf(out, "    \"idle_msgs_per_sec\": %.0f,\n", link_idle.msgs_per_sec);
  std::fprintf(out, "    \"idle_overhead\": %.4f,\n", idle_overhead);
  std::fprintf(out, "    \"max_idle_regression\": %.4f\n", max_idle_regression);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"shard_scaling\": {\n");
  std::fprintf(out, "    \"model\": \"vgg16\",\n");
  std::fprintf(out, "    \"setup\": \"mxnet_ps_tcp\",\n");
  std::fprintf(out, "    \"measured\": %s,\n", shard_rows.empty() ? "false" : "true");
  std::fprintf(out, "    \"rows\": [");
  for (size_t i = 0; i < shard_rows.size(); ++i) {
    std::fprintf(out,
                 "%s\n      {\"shards\": %d, \"wall_sec\": %.4f, \"events_per_sec\": %.0f}",
                 i == 0 ? "" : ",", shard_rows[i].shards, shard_rows[i].wall_sec,
                 shard_rows[i].events_per_sec);
  }
  std::fprintf(out, "%s]\n", shard_rows.empty() ? "" : "\n    ");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"figure_sweep\": {\n");
  std::fprintf(out, "    \"model\": \"vgg16\",\n");
  std::fprintf(out, "    \"cells\": 20,\n");
  std::fprintf(out, "    \"measured\": %s,\n", skip_sweep ? "false" : "true");
  std::fprintf(out, "    \"serial_sec\": %.4f,\n", serial_sec);
  std::fprintf(out, "    \"parallel_jobs\": %d,\n", jobs);
  std::fprintf(out, "    \"parallel_sec\": %.4f,\n", parallel_sec);
  std::fprintf(out, "    \"speedup\": %.3f\n",
               parallel_sec > 0 ? serial_sec / parallel_sec : 0.0);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  wrote %s\n", out_path.c_str());

  // ---- regression gates (`ctest -L perf` fails on either) -----------------
  // Shared-container noise routinely exceeds 10% in a single measurement
  // window, so each gate confirms a miss with an independent re-measure and
  // fails only when the regression survives both samples.
  int failures = 0;
  double gated_ratio = wheel_vs_heap;
  if (gated_ratio < min_wheel_vs_heap) {
    const ChurnResult w2 = MeasureChurn<Simulator, EventHandle>(churn_events, rounds);
    const ChurnResult h2 = MeasureChurn<HeapSimulator, EventHandle>(churn_events, rounds);
    gated_ratio = std::max(gated_ratio, w2.events_per_sec / h2.events_per_sec);
  }
  if (gated_ratio < min_wheel_vs_heap) {
    std::fprintf(stderr, "PERF GATE: timer wheel fell below %.2fx of the binary heap (%.3fx)\n",
                 min_wheel_vs_heap, gated_ratio);
    ++failures;
  }
  {
    double gated_overhead = idle_overhead;
    if (gated_overhead > max_idle_regression) {
      const bench::LinkChurnResult s2 = bench::MeasureLinkChurn(false, link_msgs, rounds);
      const bench::LinkChurnResult i2 = bench::MeasureLinkChurn(true, link_msgs, rounds);
      gated_overhead = std::min(gated_overhead, 1.0 - i2.msgs_per_sec / s2.msgs_per_sec);
    }
    if (gated_overhead > max_idle_regression) {
      std::fprintf(stderr,
                   "PERF GATE: idle rate-model link churn regressed >%.0f%% vs the static "
                   "path (%+.1f%%)\n",
                   100.0 * max_idle_regression, 100.0 * gated_overhead);
      ++failures;
    }
  }
  if (baseline_rate > 0.0) {
    const double floor = (1.0 - max_regression) * baseline_rate;
    double gated_rate = wheel.events_per_sec;
    if (gated_rate < floor) {
      const ChurnResult confirm = MeasureChurn<Simulator, EventHandle>(churn_events, rounds);
      gated_rate = std::max(gated_rate, confirm.events_per_sec);
    }
    if (gated_rate < floor) {
      std::fprintf(stderr,
                   "PERF GATE: churn throughput regressed >%.0f%% vs %s (%.0f -> %.0f events/sec)\n",
                   100.0 * max_regression, baseline_path.c_str(), baseline_rate, gated_rate);
      ++failures;
    } else {
      std::printf("  perf gate: %.0f events/sec vs baseline %.0f (ok)\n", gated_rate,
                  baseline_rate);
    }
  }
  return failures == 0 ? 0 : 1;
}
