// Perf baseline harness: measures the discrete-event loop on a synthetic
// churn workload (schedule / cancel / nested reschedule, the pattern the
// scheduler's retry timers and transport completions produce) and the
// wall-clock of one reference figure sweep at --jobs 1 vs --jobs N, then
// writes BENCH_sim.json so future PRs can compare against this baseline.
//
// The event-loop measurement also runs the same workload on LegacySimulator,
// an in-tree copy of the pre-pooling event loop (per-event std::function +
// shared_ptr<bool> cancellation token on a std::priority_queue), so the
// speedup of the pooled/small-buffer kernel is measured, not asserted.
//
// Flags: --jobs N          parallel sweep workers (default: hardware concurrency)
//        --out PATH        output JSON path (default: BENCH_sim.json)
//        --churn-events N  events per churn round (default: 300000)
//        --rounds N        churn rounds, best-of (default: 3)
//        --skip-sweep      measure the event loop only (quick smoke mode)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/exec/sweep_runner.h"
#include "src/model/zoo.h"
#include "src/sim/simulator.h"

namespace bsched {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// ---- legacy event loop (pre-PR reference) ---------------------------------

class LegacySimulator {
 public:
  struct Handle {
    std::shared_ptr<bool> cancelled;
    void Cancel() {
      if (cancelled != nullptr) {
        *cancelled = true;
      }
    }
  };

  SimTime Now() const { return now_; }

  Handle Schedule(SimTime delay, std::function<void()> fn) {
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), cancelled});
    return Handle{std::move(cancelled)};
  }

  uint64_t Run() {
    uint64_t count = 0;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (*ev.cancelled) {
        continue;
      }
      now_ = ev.when;
      ++count;
      ev.fn();
    }
    return count;
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// ---- churn workload -------------------------------------------------------

// The workload every timer-heavy subsystem generates: each fired event
// reschedules a successor carrying ~40 bytes of captured state, arms a
// "retry timer" a few steps out, and cancels the previous timer — so a
// third of all scheduled events die cancelled, some only at queue head.
template <typename Sim, typename Handle>
uint64_t RunChurn(Sim& sim, int events) {
  uint64_t checksum = 0;
  Handle retry_timer{};
  int remaining = events;
  std::function<void(int)> chain = [&](int lane) {
    checksum += static_cast<uint64_t>(lane);
    if (--remaining <= 0) {
      return;
    }
    retry_timer.Cancel();
    // The successor captures the lane, a payload, and the chain itself.
    const int64_t payload = remaining;
    sim.Schedule(SimTime::Nanos(100 + lane), [&chain, lane, payload] {
      chain((lane + static_cast<int>(payload)) % 7);
    });
    retry_timer = sim.Schedule(SimTime::Millis(50), [&checksum] { checksum += 1; });
  };
  chain(0);
  sim.Run();
  return checksum;
}

struct ChurnResult {
  double events_per_sec = 0.0;
  uint64_t checksum = 0;
};

template <typename Sim, typename Handle>
ChurnResult MeasureChurn(int events, int rounds) {
  ChurnResult best;
  for (int r = 0; r < rounds; ++r) {
    Sim sim;
    const auto start = std::chrono::steady_clock::now();
    const uint64_t checksum = RunChurn<Sim, Handle>(sim, events);
    const double sec = SecondsSince(start);
    // ~2 scheduled events (successor + retry timer) per fired chain link.
    const double rate = 2.0 * events / sec;
    if (rate > best.events_per_sec) {
      best.events_per_sec = rate;
    }
    best.checksum = checksum;
  }
  return best;
}

// ---- reference figure sweep -----------------------------------------------

double MeasureSweep(int jobs) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<bench::ScalingPane> grid =
      bench::ComputeScalingGrid(Vgg16(), /*include_p3=*/true, jobs);
  double sink = 0.0;
  for (const bench::ScalingPane& pane : grid) {
    for (const bench::ScalingCell& cell : pane.cells) {
      sink += cell.sched;
    }
  }
  const double sec = SecondsSince(start);
  std::printf("  figure sweep (vgg16 grid, jobs=%d): %.3f s (checksum %.1f)\n", jobs, sec, sink);
  return sec;
}

}  // namespace
}  // namespace bsched

int main(int argc, char** argv) {
  using namespace bsched;

  const Flags flags(argc, argv);
  const int jobs = bench::InitBenchJobs(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_sim.json");
  const int churn_events = static_cast<int>(flags.GetInt("churn-events", 300000));
  const int rounds = static_cast<int>(flags.GetInt("rounds", 3));
  const bool skip_sweep = flags.GetBool("skip-sweep", false);

  std::printf("micro_sim: event-loop and sweep perf baseline (jobs=%d)\n", jobs);

  const ChurnResult pooled =
      MeasureChurn<Simulator, EventHandle>(churn_events, rounds);
  const ChurnResult legacy =
      MeasureChurn<LegacySimulator, LegacySimulator::Handle>(churn_events, rounds);
  if (pooled.checksum != legacy.checksum) {
    std::fprintf(stderr, "FATAL: churn checksums diverge (pooled %llu, legacy %llu)\n",
                 static_cast<unsigned long long>(pooled.checksum),
                 static_cast<unsigned long long>(legacy.checksum));
    return 1;
  }
  const double speedup_vs_legacy = pooled.events_per_sec / legacy.events_per_sec;
  std::printf("  event loop: %.2fM events/sec (legacy %.2fM) -> %.2fx\n",
              pooled.events_per_sec / 1e6, legacy.events_per_sec / 1e6, speedup_vs_legacy);

  double serial_sec = 0.0;
  double parallel_sec = 0.0;
  if (!skip_sweep) {
    serial_sec = MeasureSweep(1);
    parallel_sec = MeasureSweep(jobs);
    std::printf("  sweep speedup at jobs=%d: %.2fx\n", jobs,
                parallel_sec > 0 ? serial_sec / parallel_sec : 0.0);
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"micro_sim\",\n");
  std::fprintf(out, "  \"jobs\": %d,\n", jobs);
  std::fprintf(out, "  \"hardware_concurrency\": %d,\n", SweepRunner::DefaultJobs());
  std::fprintf(out, "  \"event_loop\": {\n");
  std::fprintf(out, "    \"workload\": \"churn\",\n");
  std::fprintf(out, "    \"events\": %d,\n", churn_events);
  std::fprintf(out, "    \"rounds\": %d,\n", rounds);
  std::fprintf(out, "    \"events_per_sec\": %.0f,\n", pooled.events_per_sec);
  std::fprintf(out, "    \"legacy_events_per_sec\": %.0f,\n", legacy.events_per_sec);
  std::fprintf(out, "    \"speedup_vs_legacy\": %.3f\n", speedup_vs_legacy);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"figure_sweep\": {\n");
  std::fprintf(out, "    \"model\": \"vgg16\",\n");
  std::fprintf(out, "    \"cells\": 20,\n");
  std::fprintf(out, "    \"measured\": %s,\n", skip_sweep ? "false" : "true");
  std::fprintf(out, "    \"serial_sec\": %.4f,\n", serial_sec);
  std::fprintf(out, "    \"parallel_jobs\": %d,\n", jobs);
  std::fprintf(out, "    \"parallel_sec\": %.4f,\n", parallel_sec);
  std::fprintf(out, "    \"speedup\": %.3f\n",
               parallel_sec > 0 ? serial_sec / parallel_sec : 0.0);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  wrote %s\n", out_path.c_str());
  return 0;
}
