// §7 extension "co-scheduling in a shared cluster": two training jobs share
// the same machines' NICs and PS shards. Compares each job running alone,
// both running with independent schedulers (blind contention in the fabric's
// FIFO queues), and both running under one coordinated per-worker Core with
// global layer priorities.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/harness.h"
#include "src/common/table.h"
#include "src/model/zoo.h"

using namespace bsched;

namespace {

JobConfig PsJob(const ModelProfile& model) {
  JobConfig job = bench::MakeJob(model, Setup::MxnetPsRdma(), 4, Bandwidth::Gbps(100));
  return bench::WithMode(job, SchedMode::kByteScheduler);
}

}  // namespace

int main() {
  std::printf("Co-scheduling (sec. 7): two jobs sharing one 4-machine PS cluster\n"
              "(MXNet PS RDMA, 100 Gbps, ByteScheduler in every configuration)\n\n");

  const JobConfig a = PsJob(Vgg16());
  const JobConfig b = PsJob(Transformer());
  const double a_alone = bench::RunSpeed(a);
  const double b_alone = bench::RunSpeed(b);
  const auto indep = RunCoscheduledPsJobs({a, b}, CoschedulePolicy::kIndependent);
  const auto coord = RunCoscheduledPsJobs({a, b}, CoschedulePolicy::kCoordinated);

  Table t({"configuration", "VGG16 (img/s)", "Transformer (tokens/s)"});
  t.AddRow({"each job alone", Table::Num(a_alone, 0), Table::Num(b_alone, 0)});
  t.AddRow({"shared, independent schedulers", Table::Num(indep[0].samples_per_sec, 0),
            Table::Num(indep[1].samples_per_sec, 0)});
  t.AddRow({"shared, coordinated scheduler", Table::Num(coord[0].samples_per_sec, 0),
            Table::Num(coord[1].samples_per_sec, 0)});
  t.RenderAscii(std::cout);

  const double indep_sum =
      indep[0].samples_per_sec / a_alone + indep[1].samples_per_sec / b_alone;
  const double coord_sum =
      coord[0].samples_per_sec / a_alone + coord[1].samples_per_sec / b_alone;
  std::printf("\nnormalized combined throughput: independent %.2f vs coordinated %.2f\n",
              indep_sum, coord_sum);
  std::printf("Expected shape: sharing slows both jobs. Naive coordination (one shared\n"
              "Core, global layer priority) shifts bandwidth toward the job whose largest\n"
              "tensors sit near the input (Transformer) and starves the other -- it is\n"
              "not Pareto-better, which is precisely why the paper leaves cross-job\n"
              "co-scheduling as an open problem (sec. 7).\n");
  return 0;
}
