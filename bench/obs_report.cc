// obs_report: offline inspector for the observability artifacts the figure
// binaries emit (--trace=<path> --metrics=<path>). Loads a Chrome/Perfetto
// trace and/or a metrics snapshot and prints:
//   - per-track utilization (busy time / wall clock),
//   - per-worker compute/communication overlap (the quantity ByteScheduler
//     optimizes — compare against Figure 2),
//   - a straggler summary (per-worker GPU busy-time spread),
//   - flow-arc statistics: how many partition arcs the trace carries and a
//     sample end-to-end path across scheduler/link/shard tracks,
//   - counter / gauge / histogram tables from the metrics snapshot.
//
// Flags: --trace=PATH    Chrome trace JSON (as written by --trace)
//        --metrics=PATH  metrics snapshot JSON (as written by --metrics)
//        --timeseries=PATH  sim-time series CSV (as written by --timeseries);
//                        prints the --timeline section (per scope/metric
//                        aggregate of the sampled series)
//        --timeline      synonym: implies --timeseries with its default path
//        --critical-path replay the trace's flow arcs into a per-iteration
//                        critical-path decomposition (compute / transport /
//                        credit-wait / recovery) plus top-k stragglers
//        --critical-path-csv=PATH  also export the decomposition as CSV
//                        (one row per iteration; implies --critical-path)
//        --top-k=N       straggler partitions to list (default 5)
//        --trace-b=PATH  second trace from an identical run: verify every
//                        span's track id is stable across the two runs
//        --check         validate the artifacts instead of just printing:
//                        exit 1 unless the trace contains at least one flow
//                        arc crossing >= 3 tracks, the snapshot carries the
//                        scheduler/link/fault acceptance metrics, every
//                        --critical-path iteration reaches --min-coverage
//                        (default 0.95) and --trace-b track ids match.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/obs/critical_path.h"
#include "src/obs/json_lite.h"
#include "src/obs/metrics.h"

namespace bsched {
namespace {

struct Span {
  int tid = 0;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds
  std::string name;
};

struct FlowPoint {
  int tid = 0;
  double ts = 0.0;
  char ph = 't';  // 's' start, 't' step, 'f' end
};

struct TraceData {
  std::map<int, std::string> track_names;  // tid -> thread_name
  std::vector<Span> spans;
  std::map<uint64_t, std::vector<FlowPoint>> flows;  // flow id -> points
};

struct MetricsData {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool LoadTrace(const std::string& path, TraceData* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "error: cannot read trace %s\n", path.c_str());
    return false;
  }
  obs::JsonValue root;
  std::string error;
  if (!obs::ParseJson(text, &root, &error) || !root.is_array()) {
    std::fprintf(stderr, "error: %s is not a Chrome trace array (%s)\n", path.c_str(),
                 error.c_str());
    return false;
  }
  for (const obs::JsonValue& ev : root.array) {
    if (!ev.is_object()) {
      continue;
    }
    const obs::JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str.empty()) {
      continue;
    }
    const int tid = static_cast<int>(ev.Find("tid") != nullptr ? ev.Find("tid")->IntOr(0) : 0);
    const double ts = ev.Find("ts") != nullptr ? ev.Find("ts")->NumberOr(0.0) : 0.0;
    switch (ph->str[0]) {
      case 'M': {
        const obs::JsonValue* name = ev.Find("name");
        const obs::JsonValue* args = ev.Find("args");
        if (name != nullptr && name->StringOr("") == "thread_name" && args != nullptr) {
          const obs::JsonValue* track = args->Find("name");
          if (track != nullptr && track->is_string()) {
            out->track_names[tid] = track->str;
          }
        }
        break;
      }
      case 'X': {
        Span span;
        span.tid = tid;
        span.ts = ts;
        span.dur = ev.Find("dur") != nullptr ? ev.Find("dur")->NumberOr(0.0) : 0.0;
        const obs::JsonValue* name = ev.Find("name");
        span.name = name != nullptr ? name->StringOr("") : "";
        out->spans.push_back(std::move(span));
        break;
      }
      case 's':
      case 't':
      case 'f': {
        const obs::JsonValue* id = ev.Find("id");
        if (id != nullptr && id->is_number()) {
          out->flows[static_cast<uint64_t>(id->number)].push_back(FlowPoint{tid, ts, ph->str[0]});
        }
        break;
      }
      default:
        break;
    }
  }
  return true;
}

bool LoadMetrics(const std::string& path, MetricsData* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "error: cannot read metrics %s\n", path.c_str());
    return false;
  }
  obs::JsonValue root;
  std::string error;
  if (!obs::ParseJson(text, &root, &error) || !root.is_object()) {
    std::fprintf(stderr, "error: %s is not a metrics snapshot (%s)\n", path.c_str(),
                 error.c_str());
    return false;
  }
  if (const obs::JsonValue* counters = root.Find("counters"); counters != nullptr) {
    for (const auto& [name, value] : counters->object) {
      out->counters[name] = static_cast<uint64_t>(value.IntOr(0));
    }
  }
  if (const obs::JsonValue* gauges = root.Find("gauges"); gauges != nullptr) {
    for (const auto& [name, value] : gauges->object) {
      out->gauges[name] = value.IntOr(0);
    }
  }
  if (const obs::JsonValue* histograms = root.Find("histograms"); histograms != nullptr) {
    for (const auto& [name, value] : histograms->object) {
      HistogramSnapshot snap;
      snap.count = static_cast<uint64_t>(value.Find("count") != nullptr
                                             ? value.Find("count")->IntOr(0)
                                             : 0);
      snap.sum = value.Find("sum") != nullptr ? value.Find("sum")->IntOr(0) : 0;
      if (const obs::JsonValue* buckets = value.Find("buckets");
          buckets != nullptr && buckets->is_array()) {
        for (const obs::JsonValue& pair : buckets->array) {
          if (pair.is_array() && pair.array.size() == 2) {
            snap.buckets.emplace_back(static_cast<int>(pair.array[0].IntOr(0)),
                                      static_cast<uint64_t>(pair.array[1].IntOr(0)));
          }
        }
      }
      out->histograms[name] = std::move(snap);
    }
  }
  return true;
}

// ---- time-series CSV (as written by TimeSeriesRecorder) -------------------

// Aggregate of one (scope, metric) series across all its ticks.
struct SeriesAgg {
  std::string kind;
  uint64_t ticks = 0;
  double last = 0.0;       // value at the final tick (counter/gauge/probe)
  double peak = -1e300;    // max value across ticks
  uint64_t count = 0;      // sketch: total observations across all windows
  double peak_p99 = 0.0;   // sketch: worst per-window p99
};

struct TimelineData {
  std::map<std::pair<std::string, std::string>, SeriesAgg> series;
  int64_t first_ns = 0;
  int64_t second_ns = 0;  // second distinct tick time (cadence = second-first)
  int64_t last_ns = 0;
  uint64_t rows = 0;
};

std::vector<std::string> SplitCsvRow(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

bool LoadTimeline(const std::string& path, TimelineData* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "error: cannot read timeseries %s\n", path.c_str());
    return false;
  }
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line.rfind("time_ns,scope,metric,kind,value", 0) != 0) {
    std::fprintf(stderr, "error: %s is not a TimeSeriesRecorder CSV\n", path.c_str());
    return false;
  }
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> f = SplitCsvRow(line);
    if (f.size() < 10) {
      std::fprintf(stderr, "error: malformed timeseries row: %s\n", line.c_str());
      return false;
    }
    const int64_t time_ns = std::strtoll(f[0].c_str(), nullptr, 10);
    if (out->rows == 0) {
      out->first_ns = time_ns;
    } else if (out->second_ns == 0 && time_ns > out->first_ns) {
      out->second_ns = time_ns;
    }
    out->last_ns = std::max(out->last_ns, time_ns);
    ++out->rows;
    SeriesAgg& agg = out->series[{f[1], f[2]}];
    agg.kind = f[3];
    ++agg.ticks;
    if (f[3] == "sketch") {
      agg.count += static_cast<uint64_t>(std::strtoll(f[5].c_str(), nullptr, 10));
      agg.peak_p99 = std::max(agg.peak_p99, std::strtod(f[9].c_str(), nullptr));
    } else {
      agg.last = std::strtod(f[4].c_str(), nullptr);
      agg.peak = std::max(agg.peak, agg.last);
    }
  }
  return true;
}

// ---- interval arithmetic (all in trace microseconds) ----------------------

using Intervals = std::vector<std::pair<double, double>>;

Intervals Merge(Intervals spans) {
  std::sort(spans.begin(), spans.end());
  Intervals merged;
  for (const auto& [start, end] : spans) {
    if (!merged.empty() && start <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, end);
    } else {
      merged.emplace_back(start, end);
    }
  }
  return merged;
}

double TotalLength(const Intervals& merged) {
  double total = 0.0;
  for (const auto& [start, end] : merged) {
    total += end - start;
  }
  return total;
}

// Total length of the intersection of two merged interval lists.
double Intersection(const Intervals& a, const Intervals& b) {
  double total = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) {
      total += hi - lo;
    }
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

std::string TrackName(const TraceData& trace, int tid) {
  const auto it = trace.track_names.find(tid);
  return it != trace.track_names.end() ? it->second : "tid" + std::to_string(tid);
}

int DistinctTracks(const std::vector<FlowPoint>& points) {
  std::vector<int> tids;
  for (const FlowPoint& p : points) {
    tids.push_back(p.tid);
  }
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  return static_cast<int>(tids.size());
}

// ---- report sections ------------------------------------------------------

struct TraceSummary {
  double wall_us = 0.0;
  int multi_track_arcs = 0;  // flow arcs crossing >= 3 distinct tracks
};

TraceSummary ReportTrace(const TraceData& trace) {
  TraceSummary summary;
  std::map<int, Intervals> by_track;
  double first = 1e300;
  double last = -1e300;
  for (const Span& span : trace.spans) {
    by_track[span.tid].emplace_back(span.ts, span.ts + span.dur);
    first = std::min(first, span.ts);
    last = std::max(last, span.ts + span.dur);
  }
  if (trace.spans.empty()) {
    std::printf("trace: no spans\n\n");
    return summary;
  }
  summary.wall_us = last - first;
  std::printf("trace: %zu spans, %zu flow arcs, %zu tracks, wall clock %.3f ms\n",
              trace.spans.size(), trace.flows.size(), by_track.size(), summary.wall_us / 1e3);

  // Per-track utilization.
  Table util({"track", "spans", "busy ms", "util %"});
  std::map<int, Intervals> merged_by_track;
  for (auto& [tid, spans] : by_track) {
    merged_by_track[tid] = Merge(std::move(spans));
  }
  std::map<int, size_t> span_counts;
  for (const Span& span : trace.spans) {
    ++span_counts[span.tid];
  }
  for (const auto& [tid, merged] : merged_by_track) {
    const double busy = TotalLength(merged);
    util.AddRow({TrackName(trace, tid), std::to_string(span_counts[tid]),
                 Table::Num(busy / 1e3, 3), Table::Num(100.0 * busy / summary.wall_us, 1)});
  }
  std::printf("\n-- track utilization --\n");
  util.RenderAscii(std::cout);

  // Compute/communication overlap per worker (Figure 2's quantity).
  std::map<int, int> gpu_tid;   // worker -> tid of workerN/gpu
  std::map<int, int> comm_tid;  // worker -> tid of workerN/comm
  for (const auto& [tid, name] : trace.track_names) {
    if (name.rfind("worker", 0) != 0) {
      continue;
    }
    const size_t slash = name.find('/');
    if (slash == std::string::npos) {
      continue;
    }
    const int worker = std::atoi(name.substr(6, slash - 6).c_str());
    const std::string kind = name.substr(slash + 1);
    if (kind == "gpu") {
      gpu_tid[worker] = tid;
    } else if (kind == "comm") {
      comm_tid[worker] = tid;
    }
  }
  if (!gpu_tid.empty() && !comm_tid.empty()) {
    Table overlap({"worker", "gpu ms", "comm ms", "overlap ms", "overlap %"});
    std::vector<double> gpu_busy;
    for (const auto& [worker, gtid] : gpu_tid) {
      const auto ct = comm_tid.find(worker);
      if (ct == comm_tid.end()) {
        continue;
      }
      const Intervals& gpu = merged_by_track[gtid];
      const Intervals& comm = merged_by_track[ct->second];
      const double gpu_ms = TotalLength(gpu) / 1e3;
      const double comm_ms = TotalLength(comm) / 1e3;
      const double both_ms = Intersection(gpu, comm) / 1e3;
      const double denom = std::min(gpu_ms, comm_ms);
      gpu_busy.push_back(gpu_ms);
      overlap.AddRow({std::to_string(worker), Table::Num(gpu_ms, 3), Table::Num(comm_ms, 3),
                      Table::Num(both_ms, 3),
                      Table::Num(denom > 0 ? 100.0 * both_ms / denom : 0.0, 1)});
    }
    std::printf("\n-- compute/communication overlap (cf. Fig. 2) --\n");
    overlap.RenderAscii(std::cout);

    // Straggler summary: spread of per-worker GPU busy time.
    if (gpu_busy.size() > 1) {
      double mean = 0.0;
      for (double b : gpu_busy) {
        mean += b;
      }
      mean /= static_cast<double>(gpu_busy.size());
      const auto slowest = std::max_element(gpu_busy.begin(), gpu_busy.end());
      std::printf("\nstraggler: worker %zu gpu-busy %.3f ms vs mean %.3f ms (%.2fx)\n",
                  static_cast<size_t>(slowest - gpu_busy.begin()), *slowest, mean,
                  mean > 0 ? *slowest / mean : 0.0);
    }
  }

  // Flow arcs: a partition's life across tracks.
  int complete = 0;
  const std::vector<FlowPoint>* sample = nullptr;
  for (const auto& [id, points] : trace.flows) {
    bool has_start = false;
    bool has_end = false;
    for (const FlowPoint& p : points) {
      has_start |= p.ph == 's';
      has_end |= p.ph == 'f';
    }
    if (has_start && has_end) {
      ++complete;
    }
    if (DistinctTracks(points) >= 3) {
      ++summary.multi_track_arcs;
      if (sample == nullptr && has_start && has_end) {
        sample = &points;
      }
    }
  }
  std::printf("\n-- flow arcs --\n");
  std::printf("arcs: %zu total, %d complete (start+end), %d crossing >= 3 tracks\n",
              trace.flows.size(), complete, summary.multi_track_arcs);
  if (sample != nullptr) {
    std::vector<FlowPoint> path = *sample;
    std::stable_sort(path.begin(), path.end(),
                     [](const FlowPoint& a, const FlowPoint& b) { return a.ts < b.ts; });
    std::printf("sample arc:");
    for (const FlowPoint& p : path) {
      std::printf(" -> %s", TrackName(trace, p.tid).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
  return summary;
}

void ReportMetrics(const MetricsData& metrics) {
  if (!metrics.counters.empty()) {
    Table table({"counter", "value"});
    for (const auto& [name, value] : metrics.counters) {
      table.AddRow({name, std::to_string(value)});
    }
    std::printf("-- counters --\n");
    table.RenderAscii(std::cout);
    std::printf("\n");
  }
  if (!metrics.gauges.empty()) {
    Table table({"gauge", "value"});
    for (const auto& [name, value] : metrics.gauges) {
      table.AddRow({name, std::to_string(value)});
    }
    std::printf("-- gauges --\n");
    table.RenderAscii(std::cout);
    std::printf("\n");
  }
  if (!metrics.histograms.empty()) {
    Table table({"histogram", "count", "mean", "p50", "p90", "p99"});
    for (const auto& [name, snap] : metrics.histograms) {
      const double mean =
          snap.count > 0 ? static_cast<double>(snap.sum) / static_cast<double>(snap.count) : 0.0;
      table.AddRow({name, std::to_string(snap.count), Table::Num(mean, 1),
                    Table::Num(snap.Quantile(50), 1), Table::Num(snap.Quantile(90), 1),
                    Table::Num(snap.Quantile(99), 1)});
    }
    std::printf("-- histograms (log2 buckets; quantiles approximate) --\n");
    table.RenderAscii(std::cout);
    std::printf("\n");
  }
}

void ReportTimeline(const TimelineData& timeline) {
  std::printf("-- timeline (sim-time series) --\n");
  const int64_t cadence =
      timeline.second_ns > timeline.first_ns ? timeline.second_ns - timeline.first_ns : 0;
  std::printf("%llu rows, %zu series, sim time %.3f..%.3f ms, cadence %.1f us\n",
              static_cast<unsigned long long>(timeline.rows), timeline.series.size(),
              static_cast<double>(timeline.first_ns) / 1e6,
              static_cast<double>(timeline.last_ns) / 1e6, static_cast<double>(cadence) / 1e3);
  Table table({"scope", "metric", "kind", "ticks", "last", "peak", "obs", "peak p99"});
  for (const auto& [key, agg] : timeline.series) {
    const bool sketch = agg.kind == "sketch";
    table.AddRow({key.first, key.second, agg.kind, std::to_string(agg.ticks),
                  sketch ? "-" : Table::Num(agg.last, 0), sketch ? "-" : Table::Num(agg.peak, 0),
                  sketch ? std::to_string(agg.count) : "-",
                  sketch ? Table::Num(agg.peak_p99, 0) : "-"});
  }
  table.RenderAscii(std::cout);
  std::printf("\n");
}

obs::CriticalPathReport ReportCriticalPath(const std::string& trace_path, int top_k,
                                           const std::string& csv_path, bool* loaded) {
  *loaded = false;
  obs::CriticalPathReport report;
  std::string text;
  if (!ReadFile(trace_path, &text)) {
    std::fprintf(stderr, "error: cannot read trace %s\n", trace_path.c_str());
    return report;
  }
  obs::CpInput input;
  std::string error;
  if (!obs::LoadCpInputFromChromeTrace(text, &input, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", trace_path.c_str(), error.c_str());
    return report;
  }
  report = obs::AnalyzeCriticalPath(input, top_k);
  *loaded = true;
  std::printf("-- critical path (per-iteration longest-path decomposition) --\n");
  if (report.iterations.empty()) {
    std::printf("no iteration windows (trace carries no per-worker backprop spans)\n\n");
    return report;
  }
  Table table({"iter", "worker", "total ms", "compute %", "transport %", "credit-wait %",
               "recovery %", "coverage %"});
  for (const obs::IterationBreakdown& it : report.iterations) {
    const double total = it.total_us();
    auto pct = [total](double us) { return total > 0 ? 100.0 * us / total : 0.0; };
    table.AddRow({std::to_string(it.iter), std::to_string(it.critical_worker),
                  Table::Num(total / 1e3, 3), Table::Num(pct(it.compute_us), 1),
                  Table::Num(pct(it.transport_us), 1), Table::Num(pct(it.credit_wait_us), 1),
                  Table::Num(pct(it.recovery_us), 1), Table::Num(100.0 * it.coverage(), 1)});
  }
  table.RenderAscii(std::cout);
  std::printf("min coverage: %.1f%%\n", 100.0 * report.MinCoverage());
  if (!report.stragglers.empty()) {
    Table straggle({"rank", "partition", "iter", "duration us"});
    for (size_t i = 0; i < report.stragglers.size(); ++i) {
      const obs::StragglerPartition& s = report.stragglers[i];
      straggle.AddRow({std::to_string(i + 1), s.name, std::to_string(s.iter),
                       Table::Num(s.duration_us(), 1)});
    }
    std::printf("\n-- straggler partitions (longest flow arcs) --\n");
    straggle.RenderAscii(std::cout);
  }
  std::printf("\n");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    obs::WriteCriticalPathCsv(report, out);
    std::printf("critical-path csv: %s (%zu iterations)\n\n", csv_path.c_str(),
                report.iterations.size());
  }
  return report;
}

// Satellite check: span track ids must be stable across two identical runs —
// the TraceRecorder assigns tids in first-use order, so any cross-run drift
// means the instrumented run's track creation order is nondeterministic.
bool CheckTrackStability(const TraceData& a, const TraceData& b) {
  bool ok = true;
  for (const auto& [tid, name] : a.track_names) {
    const auto it = b.track_names.find(tid);
    if (it == b.track_names.end()) {
      std::fprintf(stderr, "TRACK MISMATCH: tid %d (%s) missing from second trace\n", tid,
                   name.c_str());
      ok = false;
    } else if (it->second != name) {
      std::fprintf(stderr, "TRACK MISMATCH: tid %d is %s vs %s\n", tid, name.c_str(),
                   it->second.c_str());
      ok = false;
    }
  }
  for (const auto& [tid, name] : b.track_names) {
    if (a.track_names.find(tid) == a.track_names.end()) {
      std::fprintf(stderr, "TRACK MISMATCH: tid %d (%s) missing from first trace\n", tid,
                   name.c_str());
      ok = false;
    }
  }
  std::map<int, size_t> spans_a;
  std::map<int, size_t> spans_b;
  for (const Span& s : a.spans) {
    ++spans_a[s.tid];
  }
  for (const Span& s : b.spans) {
    ++spans_b[s.tid];
  }
  if (spans_a != spans_b) {
    std::fprintf(stderr, "TRACK MISMATCH: per-track span counts differ between runs\n");
    ok = false;
  }
  std::printf("-- track stability --\n%s: %zu tracks, %zu spans vs %zu spans\n\n",
              ok ? "stable" : "UNSTABLE", a.track_names.size(), a.spans.size(),
              b.spans.size());
  return ok;
}

// Acceptance validation: the artifacts carry an end-to-end partition arc and
// the scheduler/link/fault metrics the figures rely on.
bool CheckArtifacts(bool have_trace, const TraceSummary& trace_summary, bool have_metrics,
                    const MetricsData& metrics) {
  bool ok = true;
  if (have_trace && trace_summary.multi_track_arcs < 1) {
    std::fprintf(stderr, "CHECK FAILED: no flow arc crosses >= 3 tracks\n");
    ok = false;
  }
  if (have_metrics) {
    auto has_histogram = [&](const std::string& suffix) {
      for (const auto& [name, snap] : metrics.histograms) {
        if (name.rfind("sched.", 0) == 0 && name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0 &&
            snap.count > 0) {
          return true;
        }
      }
      return false;
    };
    if (!has_histogram(".queue_depth")) {
      std::fprintf(stderr, "CHECK FAILED: no populated sched.*.queue_depth histogram\n");
      ok = false;
    }
    if (!has_histogram(".credit_in_use")) {
      std::fprintf(stderr, "CHECK FAILED: no populated sched.*.credit_in_use histogram\n");
      ok = false;
    }
    bool link_busy = false;
    for (const auto& entry : metrics.gauges) {
      static const std::string kSuffix = ".busy_ns";
      const std::string& name = entry.first;
      if (name.rfind("net.", 0) == 0 && name.size() > kSuffix.size() &&
          name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0) {
        link_busy = true;
        break;
      }
    }
    if (!link_busy) {
      std::fprintf(stderr, "CHECK FAILED: no net.*.busy_ns gauge\n");
      ok = false;
    }
    if (metrics.counters.find("fault.core_retries") == metrics.counters.end()) {
      std::fprintf(stderr, "CHECK FAILED: no fault.core_retries counter\n");
      ok = false;
    }
  }
  return ok;
}

}  // namespace
}  // namespace bsched

int main(int argc, char** argv) {
  using namespace bsched;

  const Flags flags(argc, argv);
  const std::string trace_path = flags.GetString("trace", "");
  const std::string metrics_path = flags.GetString("metrics", "");
  const std::string trace_b_path = flags.GetString("trace-b", "");
  std::string timeseries_path = flags.GetString("timeseries", "");
  if (timeseries_path.empty() && flags.GetBool("timeline", false)) {
    timeseries_path = "timeseries.csv";
  }
  const std::string cp_csv_path = flags.GetString("critical-path-csv", "");
  const bool critical_path = flags.GetBool("critical-path", false) || !cp_csv_path.empty();
  const int top_k = static_cast<int>(flags.GetInt("top-k", 5));
  const double min_coverage = flags.GetDouble("min-coverage", 0.95);
  const bool check = flags.GetBool("check", false);
  if (trace_path.empty() && metrics_path.empty() && timeseries_path.empty()) {
    std::fprintf(stderr,
                 "usage: obs_report --trace=trace.json --metrics=metrics.json\n"
                 "                  [--timeseries=timeseries.csv] [--critical-path]\n"
                 "                  [--critical-path-csv=PATH] [--trace-b=PATH] [--check]\n"
                 "(produce the inputs with e.g. `quickstart --obs`)\n");
    return 2;
  }
  if (critical_path && trace_path.empty()) {
    std::fprintf(stderr, "error: --critical-path needs --trace=PATH\n");
    return 2;
  }

  TraceData trace;
  TraceSummary trace_summary;
  const bool have_trace = !trace_path.empty();
  if (have_trace) {
    if (!LoadTrace(trace_path, &trace)) {
      return 2;
    }
    trace_summary = ReportTrace(trace);
  }

  bool tracks_stable = true;
  if (!trace_b_path.empty()) {
    if (!have_trace) {
      std::fprintf(stderr, "error: --trace-b needs --trace=PATH\n");
      return 2;
    }
    TraceData trace_b;
    if (!LoadTrace(trace_b_path, &trace_b)) {
      return 2;
    }
    tracks_stable = CheckTrackStability(trace, trace_b);
  }

  obs::CriticalPathReport cp_report;
  bool cp_loaded = true;
  if (critical_path) {
    cp_report = ReportCriticalPath(trace_path, top_k, cp_csv_path, &cp_loaded);
  }

  TimelineData timeline;
  const bool have_timeline = !timeseries_path.empty();
  if (have_timeline) {
    if (!LoadTimeline(timeseries_path, &timeline)) {
      return 2;
    }
    ReportTimeline(timeline);
  }

  MetricsData metrics;
  const bool have_metrics = !metrics_path.empty();
  if (have_metrics) {
    if (!LoadMetrics(metrics_path, &metrics)) {
      return 2;
    }
    ReportMetrics(metrics);
  }

  if (check) {
    bool ok = CheckArtifacts(have_trace, trace_summary, have_metrics, metrics);
    if (!tracks_stable) {
      std::fprintf(stderr, "CHECK FAILED: span track ids differ between identical runs\n");
      ok = false;
    }
    if (critical_path) {
      if (!cp_loaded || cp_report.iterations.empty()) {
        std::fprintf(stderr, "CHECK FAILED: critical-path analysis produced no iterations\n");
        ok = false;
      } else if (cp_report.MinCoverage() < min_coverage) {
        std::fprintf(stderr, "CHECK FAILED: critical-path coverage %.3f < %.3f\n",
                     cp_report.MinCoverage(), min_coverage);
        ok = false;
      }
    }
    if (have_timeline && timeline.rows == 0) {
      std::fprintf(stderr, "CHECK FAILED: timeseries CSV carries no sample rows\n");
      ok = false;
    }
    if (!ok) {
      return 1;
    }
    std::printf("check: OK\n");
  }
  return 0;
}
