// obs_report: offline inspector for the observability artifacts the figure
// binaries emit (--trace=<path> --metrics=<path>). Loads a Chrome/Perfetto
// trace and/or a metrics snapshot and prints:
//   - per-track utilization (busy time / wall clock),
//   - per-worker compute/communication overlap (the quantity ByteScheduler
//     optimizes — compare against Figure 2),
//   - a straggler summary (per-worker GPU busy-time spread),
//   - flow-arc statistics: how many partition arcs the trace carries and a
//     sample end-to-end path across scheduler/link/shard tracks,
//   - counter / gauge / histogram tables from the metrics snapshot.
//
// Flags: --trace=PATH    Chrome trace JSON (as written by --trace)
//        --metrics=PATH  metrics snapshot JSON (as written by --metrics)
//        --check         validate the artifacts instead of just printing:
//                        exit 1 unless the trace contains at least one flow
//                        arc crossing >= 3 tracks and the snapshot carries
//                        the scheduler/link/fault acceptance metrics.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/obs/json_lite.h"
#include "src/obs/metrics.h"

namespace bsched {
namespace {

struct Span {
  int tid = 0;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds
  std::string name;
};

struct FlowPoint {
  int tid = 0;
  double ts = 0.0;
  char ph = 't';  // 's' start, 't' step, 'f' end
};

struct TraceData {
  std::map<int, std::string> track_names;  // tid -> thread_name
  std::vector<Span> spans;
  std::map<uint64_t, std::vector<FlowPoint>> flows;  // flow id -> points
};

struct MetricsData {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool LoadTrace(const std::string& path, TraceData* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "error: cannot read trace %s\n", path.c_str());
    return false;
  }
  obs::JsonValue root;
  std::string error;
  if (!obs::ParseJson(text, &root, &error) || !root.is_array()) {
    std::fprintf(stderr, "error: %s is not a Chrome trace array (%s)\n", path.c_str(),
                 error.c_str());
    return false;
  }
  for (const obs::JsonValue& ev : root.array) {
    if (!ev.is_object()) {
      continue;
    }
    const obs::JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->str.empty()) {
      continue;
    }
    const int tid = static_cast<int>(ev.Find("tid") != nullptr ? ev.Find("tid")->IntOr(0) : 0);
    const double ts = ev.Find("ts") != nullptr ? ev.Find("ts")->NumberOr(0.0) : 0.0;
    switch (ph->str[0]) {
      case 'M': {
        const obs::JsonValue* name = ev.Find("name");
        const obs::JsonValue* args = ev.Find("args");
        if (name != nullptr && name->StringOr("") == "thread_name" && args != nullptr) {
          const obs::JsonValue* track = args->Find("name");
          if (track != nullptr && track->is_string()) {
            out->track_names[tid] = track->str;
          }
        }
        break;
      }
      case 'X': {
        Span span;
        span.tid = tid;
        span.ts = ts;
        span.dur = ev.Find("dur") != nullptr ? ev.Find("dur")->NumberOr(0.0) : 0.0;
        const obs::JsonValue* name = ev.Find("name");
        span.name = name != nullptr ? name->StringOr("") : "";
        out->spans.push_back(std::move(span));
        break;
      }
      case 's':
      case 't':
      case 'f': {
        const obs::JsonValue* id = ev.Find("id");
        if (id != nullptr && id->is_number()) {
          out->flows[static_cast<uint64_t>(id->number)].push_back(FlowPoint{tid, ts, ph->str[0]});
        }
        break;
      }
      default:
        break;
    }
  }
  return true;
}

bool LoadMetrics(const std::string& path, MetricsData* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "error: cannot read metrics %s\n", path.c_str());
    return false;
  }
  obs::JsonValue root;
  std::string error;
  if (!obs::ParseJson(text, &root, &error) || !root.is_object()) {
    std::fprintf(stderr, "error: %s is not a metrics snapshot (%s)\n", path.c_str(),
                 error.c_str());
    return false;
  }
  if (const obs::JsonValue* counters = root.Find("counters"); counters != nullptr) {
    for (const auto& [name, value] : counters->object) {
      out->counters[name] = static_cast<uint64_t>(value.IntOr(0));
    }
  }
  if (const obs::JsonValue* gauges = root.Find("gauges"); gauges != nullptr) {
    for (const auto& [name, value] : gauges->object) {
      out->gauges[name] = value.IntOr(0);
    }
  }
  if (const obs::JsonValue* histograms = root.Find("histograms"); histograms != nullptr) {
    for (const auto& [name, value] : histograms->object) {
      HistogramSnapshot snap;
      snap.count = static_cast<uint64_t>(value.Find("count") != nullptr
                                             ? value.Find("count")->IntOr(0)
                                             : 0);
      snap.sum = value.Find("sum") != nullptr ? value.Find("sum")->IntOr(0) : 0;
      if (const obs::JsonValue* buckets = value.Find("buckets");
          buckets != nullptr && buckets->is_array()) {
        for (const obs::JsonValue& pair : buckets->array) {
          if (pair.is_array() && pair.array.size() == 2) {
            snap.buckets.emplace_back(static_cast<int>(pair.array[0].IntOr(0)),
                                      static_cast<uint64_t>(pair.array[1].IntOr(0)));
          }
        }
      }
      out->histograms[name] = std::move(snap);
    }
  }
  return true;
}

// ---- interval arithmetic (all in trace microseconds) ----------------------

using Intervals = std::vector<std::pair<double, double>>;

Intervals Merge(Intervals spans) {
  std::sort(spans.begin(), spans.end());
  Intervals merged;
  for (const auto& [start, end] : spans) {
    if (!merged.empty() && start <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, end);
    } else {
      merged.emplace_back(start, end);
    }
  }
  return merged;
}

double TotalLength(const Intervals& merged) {
  double total = 0.0;
  for (const auto& [start, end] : merged) {
    total += end - start;
  }
  return total;
}

// Total length of the intersection of two merged interval lists.
double Intersection(const Intervals& a, const Intervals& b) {
  double total = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) {
      total += hi - lo;
    }
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

std::string TrackName(const TraceData& trace, int tid) {
  const auto it = trace.track_names.find(tid);
  return it != trace.track_names.end() ? it->second : "tid" + std::to_string(tid);
}

int DistinctTracks(const std::vector<FlowPoint>& points) {
  std::vector<int> tids;
  for (const FlowPoint& p : points) {
    tids.push_back(p.tid);
  }
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  return static_cast<int>(tids.size());
}

// ---- report sections ------------------------------------------------------

struct TraceSummary {
  double wall_us = 0.0;
  int multi_track_arcs = 0;  // flow arcs crossing >= 3 distinct tracks
};

TraceSummary ReportTrace(const TraceData& trace) {
  TraceSummary summary;
  std::map<int, Intervals> by_track;
  double first = 1e300;
  double last = -1e300;
  for (const Span& span : trace.spans) {
    by_track[span.tid].emplace_back(span.ts, span.ts + span.dur);
    first = std::min(first, span.ts);
    last = std::max(last, span.ts + span.dur);
  }
  if (trace.spans.empty()) {
    std::printf("trace: no spans\n\n");
    return summary;
  }
  summary.wall_us = last - first;
  std::printf("trace: %zu spans, %zu flow arcs, %zu tracks, wall clock %.3f ms\n",
              trace.spans.size(), trace.flows.size(), by_track.size(), summary.wall_us / 1e3);

  // Per-track utilization.
  Table util({"track", "spans", "busy ms", "util %"});
  std::map<int, Intervals> merged_by_track;
  for (auto& [tid, spans] : by_track) {
    merged_by_track[tid] = Merge(std::move(spans));
  }
  std::map<int, size_t> span_counts;
  for (const Span& span : trace.spans) {
    ++span_counts[span.tid];
  }
  for (const auto& [tid, merged] : merged_by_track) {
    const double busy = TotalLength(merged);
    util.AddRow({TrackName(trace, tid), std::to_string(span_counts[tid]),
                 Table::Num(busy / 1e3, 3), Table::Num(100.0 * busy / summary.wall_us, 1)});
  }
  std::printf("\n-- track utilization --\n");
  util.RenderAscii(std::cout);

  // Compute/communication overlap per worker (Figure 2's quantity).
  std::map<int, int> gpu_tid;   // worker -> tid of workerN/gpu
  std::map<int, int> comm_tid;  // worker -> tid of workerN/comm
  for (const auto& [tid, name] : trace.track_names) {
    if (name.rfind("worker", 0) != 0) {
      continue;
    }
    const size_t slash = name.find('/');
    if (slash == std::string::npos) {
      continue;
    }
    const int worker = std::atoi(name.substr(6, slash - 6).c_str());
    const std::string kind = name.substr(slash + 1);
    if (kind == "gpu") {
      gpu_tid[worker] = tid;
    } else if (kind == "comm") {
      comm_tid[worker] = tid;
    }
  }
  if (!gpu_tid.empty() && !comm_tid.empty()) {
    Table overlap({"worker", "gpu ms", "comm ms", "overlap ms", "overlap %"});
    std::vector<double> gpu_busy;
    for (const auto& [worker, gtid] : gpu_tid) {
      const auto ct = comm_tid.find(worker);
      if (ct == comm_tid.end()) {
        continue;
      }
      const Intervals& gpu = merged_by_track[gtid];
      const Intervals& comm = merged_by_track[ct->second];
      const double gpu_ms = TotalLength(gpu) / 1e3;
      const double comm_ms = TotalLength(comm) / 1e3;
      const double both_ms = Intersection(gpu, comm) / 1e3;
      const double denom = std::min(gpu_ms, comm_ms);
      gpu_busy.push_back(gpu_ms);
      overlap.AddRow({std::to_string(worker), Table::Num(gpu_ms, 3), Table::Num(comm_ms, 3),
                      Table::Num(both_ms, 3),
                      Table::Num(denom > 0 ? 100.0 * both_ms / denom : 0.0, 1)});
    }
    std::printf("\n-- compute/communication overlap (cf. Fig. 2) --\n");
    overlap.RenderAscii(std::cout);

    // Straggler summary: spread of per-worker GPU busy time.
    if (gpu_busy.size() > 1) {
      double mean = 0.0;
      for (double b : gpu_busy) {
        mean += b;
      }
      mean /= static_cast<double>(gpu_busy.size());
      const auto slowest = std::max_element(gpu_busy.begin(), gpu_busy.end());
      std::printf("\nstraggler: worker %zu gpu-busy %.3f ms vs mean %.3f ms (%.2fx)\n",
                  static_cast<size_t>(slowest - gpu_busy.begin()), *slowest, mean,
                  mean > 0 ? *slowest / mean : 0.0);
    }
  }

  // Flow arcs: a partition's life across tracks.
  int complete = 0;
  const std::vector<FlowPoint>* sample = nullptr;
  for (const auto& [id, points] : trace.flows) {
    bool has_start = false;
    bool has_end = false;
    for (const FlowPoint& p : points) {
      has_start |= p.ph == 's';
      has_end |= p.ph == 'f';
    }
    if (has_start && has_end) {
      ++complete;
    }
    if (DistinctTracks(points) >= 3) {
      ++summary.multi_track_arcs;
      if (sample == nullptr && has_start && has_end) {
        sample = &points;
      }
    }
  }
  std::printf("\n-- flow arcs --\n");
  std::printf("arcs: %zu total, %d complete (start+end), %d crossing >= 3 tracks\n",
              trace.flows.size(), complete, summary.multi_track_arcs);
  if (sample != nullptr) {
    std::vector<FlowPoint> path = *sample;
    std::stable_sort(path.begin(), path.end(),
                     [](const FlowPoint& a, const FlowPoint& b) { return a.ts < b.ts; });
    std::printf("sample arc:");
    for (const FlowPoint& p : path) {
      std::printf(" -> %s", TrackName(trace, p.tid).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
  return summary;
}

void ReportMetrics(const MetricsData& metrics) {
  if (!metrics.counters.empty()) {
    Table table({"counter", "value"});
    for (const auto& [name, value] : metrics.counters) {
      table.AddRow({name, std::to_string(value)});
    }
    std::printf("-- counters --\n");
    table.RenderAscii(std::cout);
    std::printf("\n");
  }
  if (!metrics.gauges.empty()) {
    Table table({"gauge", "value"});
    for (const auto& [name, value] : metrics.gauges) {
      table.AddRow({name, std::to_string(value)});
    }
    std::printf("-- gauges --\n");
    table.RenderAscii(std::cout);
    std::printf("\n");
  }
  if (!metrics.histograms.empty()) {
    Table table({"histogram", "count", "mean", "p50", "p90", "p99"});
    for (const auto& [name, snap] : metrics.histograms) {
      const double mean =
          snap.count > 0 ? static_cast<double>(snap.sum) / static_cast<double>(snap.count) : 0.0;
      table.AddRow({name, std::to_string(snap.count), Table::Num(mean, 1),
                    Table::Num(snap.Quantile(50), 1), Table::Num(snap.Quantile(90), 1),
                    Table::Num(snap.Quantile(99), 1)});
    }
    std::printf("-- histograms (log2 buckets; quantiles approximate) --\n");
    table.RenderAscii(std::cout);
    std::printf("\n");
  }
}

// Acceptance validation: the artifacts carry an end-to-end partition arc and
// the scheduler/link/fault metrics the figures rely on.
bool CheckArtifacts(bool have_trace, const TraceSummary& trace_summary, bool have_metrics,
                    const MetricsData& metrics) {
  bool ok = true;
  if (have_trace && trace_summary.multi_track_arcs < 1) {
    std::fprintf(stderr, "CHECK FAILED: no flow arc crosses >= 3 tracks\n");
    ok = false;
  }
  if (have_metrics) {
    auto has_histogram = [&](const std::string& suffix) {
      for (const auto& [name, snap] : metrics.histograms) {
        if (name.rfind("sched.", 0) == 0 && name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0 &&
            snap.count > 0) {
          return true;
        }
      }
      return false;
    };
    if (!has_histogram(".queue_depth")) {
      std::fprintf(stderr, "CHECK FAILED: no populated sched.*.queue_depth histogram\n");
      ok = false;
    }
    if (!has_histogram(".credit_in_use")) {
      std::fprintf(stderr, "CHECK FAILED: no populated sched.*.credit_in_use histogram\n");
      ok = false;
    }
    bool link_busy = false;
    for (const auto& entry : metrics.gauges) {
      static const std::string kSuffix = ".busy_ns";
      const std::string& name = entry.first;
      if (name.rfind("net.", 0) == 0 && name.size() > kSuffix.size() &&
          name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0) {
        link_busy = true;
        break;
      }
    }
    if (!link_busy) {
      std::fprintf(stderr, "CHECK FAILED: no net.*.busy_ns gauge\n");
      ok = false;
    }
    if (metrics.counters.find("fault.core_retries") == metrics.counters.end()) {
      std::fprintf(stderr, "CHECK FAILED: no fault.core_retries counter\n");
      ok = false;
    }
  }
  return ok;
}

}  // namespace
}  // namespace bsched

int main(int argc, char** argv) {
  using namespace bsched;

  const Flags flags(argc, argv);
  const std::string trace_path = flags.GetString("trace", "");
  const std::string metrics_path = flags.GetString("metrics", "");
  const bool check = flags.GetBool("check", false);
  if (trace_path.empty() && metrics_path.empty()) {
    std::fprintf(stderr,
                 "usage: obs_report --trace=trace.json --metrics=metrics.json [--check]\n"
                 "(produce the inputs with e.g. `quickstart --obs`)\n");
    return 2;
  }

  TraceData trace;
  TraceSummary trace_summary;
  const bool have_trace = !trace_path.empty();
  if (have_trace) {
    if (!LoadTrace(trace_path, &trace)) {
      return 2;
    }
    trace_summary = ReportTrace(trace);
  }

  MetricsData metrics;
  const bool have_metrics = !metrics_path.empty();
  if (have_metrics) {
    if (!LoadMetrics(metrics_path, &metrics)) {
      return 2;
    }
    ReportMetrics(metrics);
  }

  if (check) {
    if (!CheckArtifacts(have_trace, trace_summary, have_metrics, metrics)) {
      return 1;
    }
    std::printf("check: OK\n");
  }
  return 0;
}
