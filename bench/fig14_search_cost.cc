// Regenerates Figure 14: search cost (number of trials until reaching the
// optimal configuration, as identified by grid search) of BO vs SGD-with-
// momentum vs random vs grid, for VGG16 and Transformer on MXNet PS RDMA and
// MXNet NCCL RDMA. Follows the paper's methodology: the objective is the
// profiled training speed on an 8x8 (partition, credit) lattice; an algorithm
// stops when it samples a lattice point within 1% of the lattice optimum.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/model/zoo.h"
#include "src/tuning/auto_tuner.h"
#include "src/tuning/search.h"

using namespace bsched;

namespace {

constexpr int kLattice = 8;
constexpr int kRepeats = 8;
constexpr int kMaxTrials = 64;  // grid needs the full lattice in the worst case

// Caches the true objective on the lattice so each (model, arch) needs at
// most 64 simulation runs regardless of how many algorithms/seeds search it.
class LatticeObjective {
 public:
  explicit LatticeObjective(AutoTuner* tuner) : tuner_(tuner) {}

  int SnapIndex(double u) const {
    return std::min(kLattice - 1, static_cast<int>(std::lround(u * (kLattice - 1))));
  }

  double True(int i, int j) {
    const auto key = std::make_pair(i, j);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      return it->second;
    }
    const double u = static_cast<double>(i) / (kLattice - 1);
    const double v = static_cast<double>(j) / (kLattice - 1);
    const double speed =
        tuner_->EvaluateObjective(tuner_->PartitionFromUnit(u), tuner_->CreditFromUnit(v));
    cache_.emplace(key, speed);
    return speed;
  }

  double Optimum() {
    double best = 0.0;
    for (int i = 0; i < kLattice; ++i) {
      for (int j = 0; j < kLattice; ++j) {
        best = std::max(best, True(i, j));
      }
    }
    return best;
  }

 private:
  AutoTuner* tuner_;
  std::map<std::pair<int, int>, double> cache_;
};

// Runs one search until it hits 99% of the lattice optimum; returns trials.
int TrialsToOptimum(ParamSearch& search, LatticeObjective& objective, double optimum,
                    uint64_t seed) {
  Rng noise(seed ^ 0xabcdef);
  for (int trial = 1; trial <= kMaxTrials; ++trial) {
    const std::vector<double> x = search.Suggest();
    const int i = objective.SnapIndex(x[0]);
    const int j = objective.SnapIndex(x[1]);
    const double truth = objective.True(i, j);
    search.Observe(x, truth * (1.0 + 0.01 * noise.NextGaussian()));
    if (truth >= 0.99 * optimum) {
      return trial;
    }
  }
  return kMaxTrials;
}

void RunPane(const char* label, const ModelProfile& model, const Setup& setup) {
  JobConfig job = bench::MakeJob(model, setup, 4, Bandwidth::Gbps(100));
  job.measure_iters = 3;
  AutoTunerOptions opt;
  opt.noise_frac = 0.0;  // the lattice holds true values; noise added per seed
  AutoTuner tuner(job, opt);
  LatticeObjective objective(&tuner);
  const double optimum = objective.Optimum();

  Table table({"algorithm", "trials (mean)", "trials (std)"});
  for (const char* algo : {"BO", "SGD", "Random", "Grid"}) {
    if (std::string(algo) == "Grid") {
      // Grid search cannot certify the optimum before sweeping the whole
      // lattice, so its cost is the full sweep.
      table.AddRow({algo, Table::Num(kLattice * kLattice, 1), Table::Num(0.0, 1)});
      continue;
    }
    RunningStats stats;
    for (uint64_t seed = 1; seed <= kRepeats; ++seed) {
      std::unique_ptr<ParamSearch> search;
      if (std::string(algo) == "BO") {
        search = std::make_unique<BayesianOptimizer>(2, seed);
      } else if (std::string(algo) == "SGD") {
        search = std::make_unique<SgdMomentumSearch>(2, seed);
      } else if (std::string(algo) == "Random") {
        search = std::make_unique<RandomSearch>(2, seed);
      } else {
        search = std::make_unique<GridSearch>(2, kLattice);
      }
      stats.Add(TrialsToOptimum(*search, objective, optimum, seed));
    }
    table.AddRow({algo, Table::Num(stats.mean(), 1), Table::Num(stats.stddev(), 1)});
  }
  std::printf("-- %s --\n", label);
  table.RenderAscii(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBenchJobs(argc, argv);
  std::printf("Figure 14: search cost of auto-tuning algorithms (trials to reach the\n"
              "grid-search optimum; %d seeds each)\n\n", kRepeats);
  RunPane("VGG16, MXNet PS RDMA", Vgg16(), Setup::MxnetPsRdma());
  RunPane("Transformer, MXNet PS RDMA", Transformer(), Setup::MxnetPsRdma());
  RunPane("VGG16, MXNet NCCL RDMA", Vgg16(), Setup::MxnetNcclRdma());
  RunPane("Transformer, MXNet NCCL RDMA", Transformer(), Setup::MxnetNcclRdma());
  std::printf("Expected shape: BO reaches the optimum in fewer trials and with lower\n"
              "variance than random search and SGD-with-momentum; grid search is the\n"
              "deterministic worst case.\n");
  // --trace/--metrics/--timeseries/--obs: artifacts from the first pane's
  // job at the tuned operating point.
  bench::MaybeWriteObsArtifacts(
      bench::MakeJob(Vgg16(), Setup::MxnetPsRdma(), 4, Bandwidth::Gbps(100)));
  return 0;
}
