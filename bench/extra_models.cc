// Regenerates the §6.2 "Different DNN models" datapoints: AlexNet and VGG19
// speedups with 32 GPUs on MXNet PS RDMA (paper: 96% and 60%).
#include <cstdio>
#include <iostream>

#include "bench/harness.h"
#include "src/common/table.h"
#include "src/model/zoo.h"

using namespace bsched;

int main() {
  std::printf("Extra models (sec. 6.2): 32 GPUs, MXNet PS RDMA, 100 Gbps\n\n");
  Table table({"model", "baseline", "bytescheduler", "speedup", "paper"});
  struct Row {
    ModelProfile model;
    const char* paper;
  };
  for (const Row& row : {Row{AlexNet(), "~96%"}, Row{Vgg19(), "~60%"}}) {
    JobConfig job = bench::MakeJob(row.model, Setup::MxnetPsRdma(), 4, Bandwidth::Gbps(100));
    const double baseline = bench::RunSpeed(bench::WithMode(job, SchedMode::kVanilla));
    const double sched = bench::RunSpeed(bench::WithMode(job, SchedMode::kByteScheduler));
    table.AddRow({row.model.name, Table::Num(baseline, 0), Table::Num(sched, 0),
                  bench::GainPercent(sched, baseline), row.paper});
  }
  table.RenderAscii(std::cout);
  return 0;
}
