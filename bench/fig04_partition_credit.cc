// Regenerates Figure 4: VGG16 on MXNet PS TCP with FIFO communication
// scheduling, (a) training speed vs partition size and (b) vs credit size,
// each at 1 Gbps and 10 Gbps. Shows the partition-overhead/preemption
// trade-off that motivates auto-tuning (§2.3).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/harness.h"
#include "src/common/table.h"
#include "src/model/zoo.h"

using namespace bsched;

namespace {

double SpeedWith(Bandwidth bw, Bytes partition, Bytes credit) {
  JobConfig job = bench::MakeJob(Vgg16(), Setup::MxnetPsTcp(), 4, bw);
  job.mode = SchedMode::kByteScheduler;  // scheduler plumbing, FIFO policy
  SchedulerConfig cfg;
  cfg.policy = SchedulerConfig::Policy::kFifo;
  cfg.partition_bytes = partition;
  cfg.credit_bytes = credit;
  job.sched_override = cfg;
  job.measure_iters = 3;
  return bench::RunSpeed(job);
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBenchJobs(argc, argv);  // --shards K runs every cell sharded
  const std::vector<Bytes> sizes = {KiB(80),  KiB(160), KiB(240), KiB(320),
                                    KiB(400), KiB(480), KiB(560), KiB(640), KiB(750)};
  std::printf("Figure 4: VGG16, MXNet PS TCP, FIFO scheduling, 32 GPUs");
  if (bench::BenchShards() > 0) {
    std::printf(" [sharded DES, %d shards]", bench::BenchShards());
  }
  std::printf("\n\n");

  std::printf("(a) speed vs partition size (credit = 8x partition)\n");
  Table a({"partition(KB)", "1Gbps (img/s)", "10Gbps (img/s)"});
  for (Bytes p : sizes) {
    a.AddRow({Table::Num(static_cast<double>(p) / 1024, 0),
              Table::Num(SpeedWith(Bandwidth::Gbps(1), p, 8 * p), 1),
              Table::Num(SpeedWith(Bandwidth::Gbps(10), p, 8 * p), 1)});
  }
  a.RenderAscii(std::cout);

  std::printf("\n(b) speed vs credit size (partition = 320KB)\n");
  Table b({"credit(KB)", "1Gbps (img/s)", "10Gbps (img/s)"});
  for (Bytes c : sizes) {
    b.AddRow({Table::Num(static_cast<double>(c) / 1024, 0),
              Table::Num(SpeedWith(Bandwidth::Gbps(1), KiB(320), c), 1),
              Table::Num(SpeedWith(Bandwidth::Gbps(10), KiB(320), c), 1)});
  }
  b.RenderAscii(std::cout);
  std::printf(
      "\nExpected shape: speed rises with partition size (per-partition overhead), more\n"
      "pronounced at 10 Gbps; speed rises with credit size (pipelining), then flattens.\n");
  // --trace/--metrics/--timeseries/--obs: one representative cell (the
  // 10 Gbps fabric of pane (b), where credit starvation is visible) rerun
  // with the sinks attached — the fig04-style artifacts obs_report's
  // --critical-path decomposition consumes.
  bench::MaybeWriteObsArtifacts(
      bench::MakeJob(Vgg16(), Setup::MxnetPsTcp(), 4, Bandwidth::Gbps(10)));
  return 0;
}
