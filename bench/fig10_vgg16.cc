// Regenerates Figure 10: VGG16 training speed across the five setups and
// 8-64 GPUs, for baseline / ByteScheduler / P3 (MXNet PS TCP pane only) /
// linear scaling.
#include "bench/harness.h"
#include "src/model/zoo.h"

int main(int argc, char** argv) {
  bsched::bench::InitBenchJobs(argc, argv);
  bsched::bench::PrintScalingFigure("Figure 10: training VGG16", bsched::Vgg16(),
                                    /*include_p3=*/true);
  return 0;
}
