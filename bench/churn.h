// Shared event-loop churn workload for the perf benchmarks (micro_sim and
// obs_overhead): schedule / cancel / nested reschedule, the pattern the
// scheduler's retry timers and transport completions produce. Also carries
// LegacySimulator, an in-tree copy of the pre-pooling event loop (per-event
// std::function + shared_ptr<bool> cancellation token on a
// std::priority_queue), so the pooled kernel's speedup is measured against a
// fixed reference rather than asserted.
#ifndef BENCH_CHURN_H_
#define BENCH_CHURN_H_

#include <chrono>
#include <cstdint>
#include <ctime>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/common/units.h"

namespace bsched {
namespace bench {

inline double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Process CPU time. The churn rates are computed from this rather than wall
// time: on shared/oversubscribed containers a measurement window can lose the
// CPU for entire scheduler quanta, which shows up as 20%+ wall-clock noise
// while the CPU-time rate stays within a few percent — and a single-threaded
// event-loop benchmark burns CPU the whole round, so the two agree whenever
// the host is quiet.
inline double CpuSeconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

// ---- legacy event loop (pre-pooling reference) ----------------------------

class LegacySimulator {
 public:
  struct Handle {
    std::shared_ptr<bool> cancelled;
    void Cancel() {
      if (cancelled != nullptr) {
        *cancelled = true;
      }
    }
  };

  SimTime Now() const { return now_; }

  Handle Schedule(SimTime delay, std::function<void()> fn) {
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), cancelled});
    return Handle{std::move(cancelled)};
  }

  uint64_t Run() {
    uint64_t count = 0;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (*ev.cancelled) {
        continue;
      }
      now_ = ev.when;
      ++count;
      ev.fn();
    }
    return count;
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// ---- churn workload -------------------------------------------------------

// The workload every timer-heavy subsystem generates: each fired event
// reschedules a successor carrying ~40 bytes of captured state, arms a
// "retry timer" a few steps out, and cancels the previous timer — so a
// third of all scheduled events die cancelled, some only at queue head.
template <typename Sim, typename Handle>
uint64_t RunChurn(Sim& sim, int events) {
  uint64_t checksum = 0;
  Handle retry_timer{};
  int remaining = events;
  std::function<void(int)> chain = [&](int lane) {
    checksum += static_cast<uint64_t>(lane);
    if (--remaining <= 0) {
      return;
    }
    retry_timer.Cancel();
    // The successor captures the lane, a payload, and the chain itself.
    const int64_t payload = remaining;
    sim.Schedule(SimTime::Nanos(100 + lane), [&chain, lane, payload] {
      chain((lane + static_cast<int>(payload)) % 7);
    });
    retry_timer = sim.Schedule(SimTime::Millis(50), [&checksum] { checksum += 1; });
  };
  chain(0);
  sim.Run();
  return checksum;
}

struct ChurnResult {
  double events_per_sec = 0.0;
  uint64_t checksum = 0;
};

template <typename Sim, typename Handle>
ChurnResult MeasureChurn(int events, int rounds) {
  ChurnResult best;
  for (int r = 0; r < rounds; ++r) {
    Sim sim;
    const double start = CpuSeconds();
    const uint64_t checksum = RunChurn<Sim, Handle>(sim, events);
    const double sec = CpuSeconds() - start;
    // ~2 scheduled events (successor + retry timer) per fired chain link.
    const double rate = 2.0 * events / sec;
    if (rate > best.events_per_sec) {
      best.events_per_sec = rate;
    }
    best.checksum = checksum;
  }
  return best;
}

}  // namespace bench
}  // namespace bsched

#endif  // BENCH_CHURN_H_
