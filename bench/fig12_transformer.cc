// Regenerates Figure 12: Transformer training speed across the five setups
// and 8-64 GPUs, for baseline / ByteScheduler / P3 / linear scaling.
#include "bench/harness.h"
#include "src/model/zoo.h"

int main(int argc, char** argv) {
  bsched::bench::InitBenchJobs(argc, argv);
  bsched::bench::PrintScalingFigure("Figure 12: training Transformer", bsched::Transformer(),
                                    /*include_p3=*/true);
  return 0;
}
