// Microbenchmarks (google-benchmark) of the hot paths: scheduler Core
// enqueue/admission, the discrete-event loop, and GP posterior evaluation.
// These bound the scheduling overhead that §4.1 assumes negligible.
#include <benchmark/benchmark.h>

#include <deque>
#include <functional>
#include <vector>

#include "src/comm/backend.h"
#include "src/common/rng.h"
#include "src/core/scheduler_core.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/tuning/gaussian_process.h"

namespace bsched {
namespace {

// Backend that completes every subtask immediately.
class NullBackend : public CommBackend {
 public:
  void Start(const SubCommTask&, std::function<void()> on_finish) override { on_finish(); }
};

void BM_CoreEnqueueAndSchedule(benchmark::State& state) {
  const Bytes tensor = MiB(8);
  const Bytes partition = KiB(static_cast<int64_t>(state.range(0)));
  for (auto _ : state) {
    NullBackend backend;
    SchedulerCore core(SchedulerConfig::ByteScheduler(partition, MiB(16)), &backend);
    CommTaskDesc desc;
    desc.layer = 0;
    desc.tensor_bytes = tensor;
    desc.type = CommOpType::kPush;
    CommTaskId id = core.Enqueue(desc);
    core.NotifyReady(id);
    benchmark::DoNotOptimize(core.tasks_finished());
  }
  state.SetItemsProcessed(state.iterations() * (tensor / partition));
}
BENCHMARK(BM_CoreEnqueueAndSchedule)->Arg(64)->Arg(256)->Arg(1024);

void BM_PriorityAdmissionChurn(benchmark::State& state) {
  const int num_tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    NullBackend backend;
    SchedulerCore core(SchedulerConfig::ByteScheduler(KiB(256), MiB(4)), &backend);
    for (int i = 0; i < num_tasks; ++i) {
      CommTaskDesc desc;
      desc.layer = num_tasks - i;  // reverse priority arrival (BP order)
      desc.tensor_bytes = KiB(512);
      CommTaskId id = core.Enqueue(desc);
      core.NotifyReady(id);
    }
    benchmark::DoNotOptimize(core.subtasks_started());
  }
  state.SetItemsProcessed(state.iterations() * num_tasks);
}
BENCHMARK(BM_PriorityAdmissionChurn)->Arg(16)->Arg(64)->Arg(256);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Resource resource(&sim, "r");
    for (int i = 0; i < 1000; ++i) {
      resource.Submit(SimTime::Micros(1), nullptr);
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.processed_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_GpPredict(benchmark::State& state) {
  const int samples = static_cast<int>(state.range(0));
  GaussianProcess gp(2);
  Rng rng(1);
  for (int i = 0; i < samples; ++i) {
    gp.Add({rng.NextDouble(), rng.NextDouble()}, rng.NextDouble());
  }
  std::vector<double> x = {0.5, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.Predict(x));
    x[0] = x[0] < 0.99 ? x[0] + 0.001 : 0.0;  // defeat caching
  }
}
BENCHMARK(BM_GpPredict)->Arg(10)->Arg(30)->Arg(60);

}  // namespace
}  // namespace bsched

BENCHMARK_MAIN();
