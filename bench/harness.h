// Shared helpers for the figure-regeneration benchmarks: each bench binary
// prints the rows/series of one table or figure from the paper's evaluation.
#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/model/profile.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

namespace bsched {
namespace bench {

// Default cluster scales of Figures 10-12.
inline const std::vector<int> kGpuCounts = {8, 16, 32, 64};
inline constexpr int kGpusPerMachine = 8;

// The five setups of Figures 10-12, in paper order.
std::vector<Setup> PaperSetups();

JobConfig MakeJob(const ModelProfile& model, const Setup& setup, int num_machines,
                  Bandwidth bandwidth);

// Applies a scheduling mode; for ByteScheduler, installs the heuristic tuned
// parameters for the job's architecture/transport/bandwidth.
JobConfig WithMode(JobConfig job, SchedMode mode);

double RunSpeed(const JobConfig& job);

// Prints one model-scaling figure (the Figure 10/11/12 family): per setup, a
// speed table over GPU counts for baseline / ByteScheduler / linear scaling
// (and P3 in the MXNet PS TCP pane when requested), plus the speed-up range
// the paper quotes in each pane's caption.
void PrintScalingFigure(const std::string& title, const ModelProfile& model, bool include_p3);

std::string GainPercent(double sched, double baseline);

}  // namespace bench
}  // namespace bsched

#endif  // BENCH_HARNESS_H_
