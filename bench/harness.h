// Shared helpers for the figure-regeneration benchmarks: each bench binary
// prints the rows/series of one table or figure from the paper's evaluation.
#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/model/profile.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

namespace bsched {
namespace bench {

// Default cluster scales of Figures 10-12.
inline const std::vector<int> kGpuCounts = {8, 16, 32, 64};
inline constexpr int kGpusPerMachine = 8;

// The five setups of Figures 10-12, in paper order.
std::vector<Setup> PaperSetups();

JobConfig MakeJob(const ModelProfile& model, const Setup& setup, int num_machines,
                  Bandwidth bandwidth);

// Applies a scheduling mode; for ByteScheduler, installs the heuristic tuned
// parameters for the job's architecture/transport/bandwidth.
JobConfig WithMode(JobConfig job, SchedMode mode);

double RunSpeed(const JobConfig& job);

// One (setup, GPU count) cell of a model-scaling figure.
struct ScalingCell {
  int gpus = 0;
  double baseline = 0.0;
  double sched = 0.0;
  double linear = 0.0;
  bool has_p3 = false;
  double p3 = 0.0;
};

// One pane (setup) of a model-scaling figure, cells in kGpuCounts order.
struct ScalingPane {
  std::string setup;
  std::vector<ScalingCell> cells;
};

// Computes the Figure 10/11/12 grid: every (setup, GPU count) cell across
// PaperSetups(). Cells are independent simulations; jobs > 1 evaluates them
// concurrently with bit-identical output (0 = SweepRunner default, i.e. the
// --jobs flag or the hardware concurrency).
std::vector<ScalingPane> ComputeScalingGrid(const ModelProfile& model, bool include_p3,
                                            int jobs = 0);

// Prints one model-scaling figure (the Figure 10/11/12 family): per setup, a
// speed table over GPU counts for baseline / ByteScheduler / linear scaling
// (and P3 in the MXNet PS TCP pane when requested), plus the speed-up range
// the paper quotes in each pane's caption.
void PrintScalingFigure(const std::string& title, const ModelProfile& model, bool include_p3);

std::string GainPercent(double sched, double baseline);

// Parses the common bench flags (--jobs N, default hardware concurrency) and
// installs the result as the process-wide sweep worker count, plus the
// shared observability flags (--trace / --metrics / --obs) consumed by
// MaybeWriteObsArtifacts and the sharded-execution flag (--shards K) applied
// by MakeJob. Returns the effective jobs value.
int InitBenchJobs(int argc, const char* const* argv);

// Shard count from --shards (0 = serial single-Simulator execution). MakeJob
// applies it to PS-architecture jobs only; results are bit-identical at any
// K >= 1 (see JobConfig::shards).
int BenchShards();

// When InitBenchJobs saw --trace/--metrics/--timeseries/--sample-every/
// --obs: reruns `job` (forced to ByteScheduler mode, serially — the trace
// sink is single-threaded) with the observability sinks attached and writes
// the requested artifact files (Chrome trace, metrics snapshot, sim-time
// series CSV). No-op otherwise. PrintScalingFigure calls this with its first
// (setup, GPU count) cell, so every figure binary emits artifacts for free.
void MaybeWriteObsArtifacts(const JobConfig& job);

}  // namespace bench
}  // namespace bsched

#endif  // BENCH_HARNESS_H_
