// Regenerates Figure 13: training speed under different network bandwidths
// (1/10/25/40/100 Gbps, 32 GPUs) for baseline, Fixed Scheduler (parameters
// tuned once at 1 Gbps, reused everywhere) and Tuned Scheduler (BO auto-tuned
// per bandwidth), on MXNet PS RDMA and MXNet NCCL RDMA.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/harness.h"
#include "src/common/table.h"
#include "src/exec/sweep_runner.h"
#include "src/model/zoo.h"
#include "src/tuning/auto_tuner.h"

using namespace bsched;

namespace {

const std::vector<double> kGbps = {1, 10, 25, 40, 100};

TunedParams BoTune(const JobConfig& job) {
  AutoTunerOptions opt;
  opt.max_trials = 8;
  opt.partition_lo = KiB(256);
  opt.seed = 17;
  opt.profile_iters = 2;
  AutoTuner tuner(job, opt);
  return tuner.TuneWithBo().best;
}

void RunPane(const char* label, const ModelProfile& model, const Setup& setup) {
  // "Fixed" parameters: tuned once for 1 Gbps, reused at all bandwidths.
  JobConfig at_1g = bench::MakeJob(model, setup, 4, Bandwidth::Gbps(1));
  at_1g.measure_iters = 3;
  const TunedParams fixed = BoTune(at_1g);

  Table table({"Gbps", "baseline", "fixed sched", "tuned sched", "tuned vs base"});
  double min_gain = 1e300;
  double max_gain = -1e300;
  struct Cell {
    double baseline;
    double fixed_speed;
    double tuned_speed;
  };
  // Per-bandwidth cells (including their BO tuning runs) are independent;
  // sweep them concurrently and render in bandwidth order.
  SweepRunner runner;
  const std::vector<Cell> cells = runner.ParallelFor(kGbps.size(), [&](size_t i) {
    JobConfig job = bench::MakeJob(model, setup, 4, Bandwidth::Gbps(kGbps[i]));
    job.measure_iters = 3;
    Cell cell;
    cell.baseline = bench::RunSpeed(bench::WithMode(job, SchedMode::kVanilla));

    JobConfig fixed_job = job;
    fixed_job.mode = SchedMode::kByteScheduler;
    fixed_job.partition_bytes = fixed.partition_bytes;
    fixed_job.credit_bytes = fixed.credit_bytes;
    cell.fixed_speed = bench::RunSpeed(fixed_job);

    const TunedParams tuned = BoTune(job);
    JobConfig tuned_job = job;
    tuned_job.mode = SchedMode::kByteScheduler;
    tuned_job.partition_bytes = tuned.partition_bytes;
    tuned_job.credit_bytes = tuned.credit_bytes;
    cell.tuned_speed = bench::RunSpeed(tuned_job);
    return cell;
  });
  for (size_t i = 0; i < kGbps.size(); ++i) {
    const Cell& cell = cells[i];
    const double gain = cell.tuned_speed / cell.baseline - 1.0;
    min_gain = std::min(min_gain, gain);
    max_gain = std::max(max_gain, gain);
    table.AddRow({Table::Num(kGbps[i], 0), Table::Num(cell.baseline, 0),
                  Table::Num(cell.fixed_speed, 0), Table::Num(cell.tuned_speed, 0),
                  bench::GainPercent(cell.tuned_speed, cell.baseline)});
  }
  std::printf("-- %s (tuned speedup %0.0f%%-%0.0f%%) --\n", label, 100 * min_gain,
              100 * max_gain);
  table.RenderAscii(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBenchJobs(argc, argv);
  std::printf("Figure 13: speed vs bandwidth, 32 GPUs, baseline / fixed / tuned scheduler\n\n");
  struct Pane {
    const char* label;
    ModelProfile model;
    Setup setup;
  };
  const std::vector<Pane> panes = {
      {"(a) VGG16, PS", Vgg16(), Setup::MxnetPsRdma()},
      {"(b) VGG16, NCCL", Vgg16(), Setup::MxnetNcclRdma()},
      {"(c) ResNet50, PS", ResNet50(), Setup::MxnetPsRdma()},
      {"(d) ResNet50, NCCL", ResNet50(), Setup::MxnetNcclRdma()},
      {"(e) Transformer, PS", Transformer(), Setup::MxnetPsRdma()},
      {"(f) Transformer, NCCL", Transformer(), Setup::MxnetNcclRdma()},
  };
  for (const Pane& pane : panes) {
    RunPane(pane.label, pane.model, pane.setup);
  }
  std::printf("Expected shape: tuned >= fixed >= baseline almost everywhere; fixed (1 Gbps\n"
              "parameters) degrades at high bandwidth; ResNet50 gains shrink as bandwidth\n"
              "grows while VGG16/Transformer gains persist.\n");
  // --trace/--metrics/--timeseries/--obs: artifacts from the first pane's
  // 10 Gbps cell, where the fixed-vs-tuned gap is widest.
  bench::MaybeWriteObsArtifacts(
      bench::MakeJob(Vgg16(), Setup::MxnetPsRdma(), 4, Bandwidth::Gbps(10)));
  return 0;
}
