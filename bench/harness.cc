#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/common/flags.h"
#include "src/common/trace.h"
#include "src/exec/sweep_runner.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"

namespace bsched {
namespace bench {
namespace {

// Artifact paths captured by InitBenchJobs for MaybeWriteObsArtifacts.
ObsFlags g_obs_flags;

// --shards value captured by InitBenchJobs; applied by MakeJob.
int g_shards = 0;

}  // namespace

std::vector<Setup> PaperSetups() {
  return {Setup::MxnetPsTcp(), Setup::MxnetPsRdma(), Setup::TensorFlowPsTcp(),
          Setup::MxnetNcclRdma(), Setup::PyTorchNcclTcp()};
}

JobConfig MakeJob(const ModelProfile& model, const Setup& setup, int num_machines,
                  Bandwidth bandwidth) {
  JobConfig job;
  job.model = model;
  job.setup = setup;
  job.num_machines = num_machines;
  job.gpus_per_machine = kGpusPerMachine;
  job.bandwidth = bandwidth;
  job.warmup_iters = 2;
  job.measure_iters = 5;
  // Sharded parallel-DES is PS-only; all-reduce cells quietly stay serial so
  // one --shards flag can drive a mixed-architecture figure.
  if (setup.arch == ArchType::kPs) {
    job.shards = g_shards;
  }
  return job;
}

JobConfig WithMode(JobConfig job, SchedMode mode) {
  job.mode = mode;
  if (mode == SchedMode::kByteScheduler) {
    const TunedParams tuned =
        DefaultTunedParams(job.model, job.setup.arch, job.setup.transport, job.bandwidth);
    job.partition_bytes = tuned.partition_bytes;
    job.credit_bytes = tuned.credit_bytes;
  }
  return job;
}

double RunSpeed(const JobConfig& job) { return RunTrainingJob(job).samples_per_sec; }

std::string GainPercent(double sched, double baseline) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * (sched / baseline - 1.0));
  return buf;
}

std::vector<ScalingPane> ComputeScalingGrid(const ModelProfile& model, bool include_p3,
                                            int jobs) {
  const std::vector<Setup> setups = PaperSetups();
  const size_t cells_per_pane = kGpuCounts.size();

  // Every (setup, GPU count) cell is an independent set of simulations, so
  // the flattened grid evaluates concurrently; results come back in input
  // order, keeping the printed figure bit-identical to a serial sweep.
  SweepRunner runner(jobs);
  std::vector<ScalingCell> cells = runner.ParallelFor(
      setups.size() * cells_per_pane, [&](size_t index) {
        const Setup& setup = setups[index / cells_per_pane];
        const bool p3_pane = include_p3 && setup.name == Setup::MxnetPsTcp().name;
        const int gpus = kGpuCounts[index % cells_per_pane];
        ScalingCell cell;
        cell.gpus = gpus;
        const JobConfig base = MakeJob(model, setup, gpus / kGpusPerMachine, Bandwidth::Gbps(100));
        cell.baseline = RunSpeed(WithMode(base, SchedMode::kVanilla));
        cell.sched = RunSpeed(WithMode(base, SchedMode::kByteScheduler));
        cell.linear = PaperLinearScaling(WithMode(base, SchedMode::kVanilla));
        if (p3_pane) {
          cell.has_p3 = true;
          cell.p3 = RunSpeed(WithMode(base, SchedMode::kP3));
        }
        return cell;
      });

  std::vector<ScalingPane> panes(setups.size());
  for (size_t s = 0; s < setups.size(); ++s) {
    panes[s].setup = setups[s].name;
    panes[s].cells.assign(cells.begin() + s * cells_per_pane,
                          cells.begin() + (s + 1) * cells_per_pane);
  }
  return panes;
}

void PrintScalingFigure(const std::string& title, const ModelProfile& model, bool include_p3) {
  std::printf("%s\n", title.c_str());
  std::printf("speed unit: %s/sec; per-GPU batch %d; 100 Gbps fabric\n\n", model.sample_unit.c_str(),
              model.batch_per_gpu);
  for (const ScalingPane& pane : ComputeScalingGrid(model, include_p3)) {
    const bool p3_pane = !pane.cells.empty() && pane.cells.front().has_p3;
    std::vector<std::string> header = {"#GPUs", "baseline", "bytescheduler"};
    if (p3_pane) {
      header.push_back("p3");
    }
    header.push_back("linear");
    header.push_back("speedup");
    Table table(std::move(header));
    double min_gain = 1e300;
    double max_gain = -1e300;
    for (const ScalingCell& cell : pane.cells) {
      const double gain = cell.sched / cell.baseline - 1.0;
      min_gain = std::min(min_gain, gain);
      max_gain = std::max(max_gain, gain);
      std::vector<std::string> row = {std::to_string(cell.gpus), Table::Num(cell.baseline, 0),
                                      Table::Num(cell.sched, 0)};
      if (p3_pane) {
        row.push_back(Table::Num(cell.p3, 0));
      }
      row.push_back(Table::Num(cell.linear, 0));
      row.push_back(GainPercent(cell.sched, cell.baseline));
      table.AddRow(std::move(row));
    }
    std::printf("-- %s (speedup %0.0f%%-%0.0f%%) --\n", pane.setup.c_str(), 100 * min_gain,
                100 * max_gain);
    table.RenderAscii(std::cout);
    std::printf("\n");
  }
  MaybeWriteObsArtifacts(
      MakeJob(model, PaperSetups().front(), kGpuCounts.front() / kGpusPerMachine,
              Bandwidth::Gbps(100)));
}

int InitBenchJobs(int argc, const char* const* argv) {
  const Flags flags(argc, argv);
  const int jobs = static_cast<int>(flags.GetInt("jobs", 0));
  SweepRunner::SetDefaultJobs(jobs);
  g_obs_flags = ParseObsFlags(flags);
  g_shards = static_cast<int>(flags.GetInt("shards", 0));
  return SweepRunner::DefaultJobs();
}

int BenchShards() { return g_shards; }

void MaybeWriteObsArtifacts(const JobConfig& job) {
  if (!g_obs_flags.enabled()) {
    return;
  }
  // One representative ByteScheduler run, executed serially on this thread:
  // the TraceRecorder is not thread-safe, so the figure sweeps above run
  // uninstrumented and this rerun owns all sinks exclusively.
  TraceRecorder trace;
  MetricsRegistry metrics;
  const bool want_timeseries = !g_obs_flags.timeseries_path.empty();
  TimeSeriesRecorder timeseries(
      &metrics, SimTime::Micros(g_obs_flags.sample_every_us > 0 ? g_obs_flags.sample_every_us
                                                                : 100));
  JobConfig run = WithMode(job, SchedMode::kByteScheduler);
  run.shards = 0;  // trace sinks require the serial path
  run.trace = g_obs_flags.trace_path.empty() ? nullptr : &trace;
  // The time-series recorder samples metric handles, so it implies metrics.
  run.metrics =
      g_obs_flags.metrics_path.empty() && !want_timeseries ? nullptr : &metrics;
  run.timeseries = want_timeseries ? &timeseries : nullptr;
  RunTrainingJob(run);
  if (!g_obs_flags.trace_path.empty()) {
    std::ofstream out(g_obs_flags.trace_path);
    trace.WriteChromeTrace(out);
    std::printf("trace artifact  : %s (%zu events, %s on %s)\n", g_obs_flags.trace_path.c_str(),
                trace.num_events(), run.model.name.c_str(), run.setup.name.c_str());
  }
  if (!g_obs_flags.metrics_path.empty()) {
    std::ofstream out(g_obs_flags.metrics_path);
    metrics.Snapshot().WriteJson(out);
    std::printf("metrics artifact: %s\n", g_obs_flags.metrics_path.c_str());
  }
  if (want_timeseries) {
    std::ofstream out(g_obs_flags.timeseries_path);
    timeseries.WriteCsv(out);
    std::printf("timeseries artifact: %s (%llu ticks @ %lldus)\n",
                g_obs_flags.timeseries_path.c_str(),
                static_cast<unsigned long long>(timeseries.total_ticks()),
                static_cast<long long>(g_obs_flags.sample_every_us));
  }
}

}  // namespace bench
}  // namespace bsched
