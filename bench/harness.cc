#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <iostream>

namespace bsched {
namespace bench {

std::vector<Setup> PaperSetups() {
  return {Setup::MxnetPsTcp(), Setup::MxnetPsRdma(), Setup::TensorFlowPsTcp(),
          Setup::MxnetNcclRdma(), Setup::PyTorchNcclTcp()};
}

JobConfig MakeJob(const ModelProfile& model, const Setup& setup, int num_machines,
                  Bandwidth bandwidth) {
  JobConfig job;
  job.model = model;
  job.setup = setup;
  job.num_machines = num_machines;
  job.gpus_per_machine = kGpusPerMachine;
  job.bandwidth = bandwidth;
  job.warmup_iters = 2;
  job.measure_iters = 5;
  return job;
}

JobConfig WithMode(JobConfig job, SchedMode mode) {
  job.mode = mode;
  if (mode == SchedMode::kByteScheduler) {
    const TunedParams tuned =
        DefaultTunedParams(job.model, job.setup.arch, job.setup.transport, job.bandwidth);
    job.partition_bytes = tuned.partition_bytes;
    job.credit_bytes = tuned.credit_bytes;
  }
  return job;
}

double RunSpeed(const JobConfig& job) { return RunTrainingJob(job).samples_per_sec; }

std::string GainPercent(double sched, double baseline) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * (sched / baseline - 1.0));
  return buf;
}

void PrintScalingFigure(const std::string& title, const ModelProfile& model, bool include_p3) {
  std::printf("%s\n", title.c_str());
  std::printf("speed unit: %s/sec; per-GPU batch %d; 100 Gbps fabric\n\n", model.sample_unit.c_str(),
              model.batch_per_gpu);
  for (const Setup& setup : PaperSetups()) {
    const bool p3_pane = include_p3 && setup.name == Setup::MxnetPsTcp().name;
    std::vector<std::string> header = {"#GPUs", "baseline", "bytescheduler"};
    if (p3_pane) {
      header.push_back("p3");
    }
    header.push_back("linear");
    header.push_back("speedup");
    Table table(std::move(header));
    double min_gain = 1e300;
    double max_gain = -1e300;
    for (int gpus : kGpuCounts) {
      const int machines = gpus / kGpusPerMachine;
      JobConfig base = MakeJob(model, setup, machines, Bandwidth::Gbps(100));
      const double baseline = RunSpeed(WithMode(base, SchedMode::kVanilla));
      const double sched = RunSpeed(WithMode(base, SchedMode::kByteScheduler));
      const double linear = PaperLinearScaling(WithMode(base, SchedMode::kVanilla));
      const double gain = sched / baseline - 1.0;
      min_gain = std::min(min_gain, gain);
      max_gain = std::max(max_gain, gain);
      std::vector<std::string> row = {std::to_string(gpus), Table::Num(baseline, 0),
                                      Table::Num(sched, 0)};
      if (p3_pane) {
        row.push_back(Table::Num(RunSpeed(WithMode(base, SchedMode::kP3)), 0));
      }
      row.push_back(Table::Num(linear, 0));
      row.push_back(GainPercent(sched, baseline));
      table.AddRow(std::move(row));
    }
    std::printf("-- %s (speedup %0.0f%%-%0.0f%%) --\n", setup.name.c_str(), 100 * min_gain,
                100 * max_gain);
    table.RenderAscii(std::cout);
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace bsched
