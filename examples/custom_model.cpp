// Bring-your-own-model: define a custom layer profile (a wide-and-deep-style
// recommender with a huge embedding at the input), then study how scheduling
// decisions interact with its skewed tensor-size distribution — including a
// per-layer look at where FIFO goes wrong.
//
// Run: ./build/examples/custom_model
#include <cstdio>

#include "src/model/profile.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

int main() {
  using namespace bsched;

  // A recommender: giant (row-sparse) embedding table at the input, a few
  // small dense layers behind it. Communication is utterly dominated by the
  // first tensor, which FIFO transmission sends *last*.
  ModelProfile model = MakeModel("wide-and-deep", "samples", 1024, 9000.0,
                                 {
                                     {"embedding", 120.0, 1.0},  // 480 MB
                                     {"dense1", 2.0, 0.8},
                                     {"dense2", 1.0, 0.6},
                                     {"dense3", 0.5, 0.4},
                                     {"head", 0.1, 0.2},
                                 });
  model.layers[0].splittable = false;  // row-sparse: ps-lite cannot split it

  JobConfig job;
  job.model = model;
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 4;
  job.bandwidth = Bandwidth::Gbps(100);

  std::printf("custom model '%s': %s parameters, largest tensor %s\n\n", model.name.c_str(),
              FormatBytes(model.TotalParamBytes()).c_str(),
              FormatBytes(model.MaxTensorBytes()).c_str());

  job.mode = SchedMode::kVanilla;
  const JobResult baseline = RunTrainingJob(job);
  std::printf("vanilla MXNet PS     : %8.0f samples/s  (shard imbalance %.2fx)\n",
              baseline.samples_per_sec, baseline.shard_load_imbalance);

  job.mode = SchedMode::kByteScheduler;
  for (Bytes partition : {MiB(64), MiB(16), MiB(4), MiB(1)}) {
    job.partition_bytes = partition;
    job.credit_bytes = 5 * partition;
    const JobResult r = RunTrainingJob(job);
    std::printf("bytescheduler δ=%-6s: %8.0f samples/s  (shard imbalance %.2fx, %+.0f%%)\n",
                FormatBytes(partition).c_str(), r.samples_per_sec, r.shard_load_imbalance,
                100.0 * (r.samples_per_sec / baseline.samples_per_sec - 1.0));
  }
  std::printf("\nSmaller partitions both balance the PS shards and let the dense layers'\n"
              "pulls preempt the embedding transfer, so the next forward pass starts on\n"
              "time; below the sweet spot, per-partition overhead wins back.\n");
  return 0;
}
