// Quickstart: run one distributed training job with the vanilla framework
// and once more with ByteScheduler, and print the speedup — the library's
// headline capability in ~40 lines.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "src/model/zoo.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

int main() {
  using namespace bsched;

  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 4;  // 32 GPUs
  job.bandwidth = Bandwidth::Gbps(100);

  // Vanilla MXNet: FIFO transmission of whole tensors.
  job.mode = SchedMode::kVanilla;
  const JobResult baseline = RunTrainingJob(job);

  // ByteScheduler: priority scheduling + tensor partitioning + credits.
  job.mode = SchedMode::kByteScheduler;
  const TunedParams tuned =
      DefaultTunedParams(job.model, job.setup.arch, job.setup.transport, job.bandwidth);
  job.partition_bytes = tuned.partition_bytes;
  job.credit_bytes = tuned.credit_bytes;
  const JobResult scheduled = RunTrainingJob(job);

  const double linear = LinearScalingSpeed(job.model, job.total_gpus());
  std::printf("VGG16 on %s, %d GPUs, %.0f Gbps\n", job.setup.name.c_str(), job.total_gpus(),
              job.bandwidth.ToGbps());
  std::printf("  baseline       : %8.1f images/sec (shard imbalance %.2fx)\n",
              baseline.samples_per_sec, baseline.shard_load_imbalance);
  std::printf("  bytescheduler  : %8.1f images/sec (partition %s, credit %s)\n",
              scheduled.samples_per_sec, FormatBytes(tuned.partition_bytes).c_str(),
              FormatBytes(tuned.credit_bytes).c_str());
  std::printf("  linear scaling : %8.1f images/sec\n", linear);
  std::printf("  speedup        : %+.1f%%\n",
              100.0 * (scheduled.samples_per_sec / baseline.samples_per_sec - 1.0));
  return 0;
}
