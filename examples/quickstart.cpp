// Quickstart: run one distributed training job with the vanilla framework
// and once more with ByteScheduler, and print the speedup — the library's
// headline capability in ~40 lines.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
//
// Flags: --jobs N        worker threads for the two independent simulations
//                        (default: hardware concurrency; results are
//                        bit-identical at any value)
//        --chaos[=seed]  rerun the ByteScheduler job under deterministic
//                        fault injection (message drops, latency spikes,
//                        stragglers, slow shards) and print the recovery
//                        statistics.
//        --volatility[=seed]  rerun the ByteScheduler job on a volatile
//                        network fabric (seeded random-walk link drift,
//                        on/off cross traffic, loss-driven AIMD pacing) and
//                        print the rate-control activity. Deterministic:
//                        the same seed always produces the same run.
//        --trace[=path]  write a Chrome/Perfetto trace of the ByteScheduler
//                        job (default path trace.json)
//        --metrics[=path] write its metrics snapshot (default metrics.json)
//        --timeseries[=path] sample per-worker metrics on a simulated-time
//                        cadence and write the series CSV (default
//                        timeseries.csv)
//        --sample-every=US  the sampling cadence in simulated microseconds
//                        (default 100; implies --timeseries when given alone)
//        --obs           shorthand for --trace --metrics --timeseries
//                        Inspect the artifacts with: ./build/bench/obs_report
#include <cstdio>
#include <fstream>
#include <vector>

#include "src/common/flags.h"
#include "src/common/trace.h"
#include "src/exec/sweep_runner.h"
#include "src/model/zoo.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

int main(int argc, char** argv) {
  using namespace bsched;

  const Flags flags(argc, argv);
  SweepRunner::SetDefaultJobs(static_cast<int>(flags.GetInt("jobs", 0)));
  const bool chaos = flags.Has("chaos");
  const uint64_t chaos_seed =
      flags.GetBool("chaos", false) ? 1 : static_cast<uint64_t>(flags.GetInt("chaos", 1));
  const bool volatility = flags.Has("volatility");
  const uint64_t volatility_seed =
      flags.GetBool("volatility", false)
          ? 1
          : static_cast<uint64_t>(flags.GetInt("volatility", 1));
  const ObsFlags obs = ParseObsFlags(flags);
  TraceRecorder trace;
  MetricsRegistry metrics;
  const bool want_timeseries = !obs.timeseries_path.empty();
  TimeSeriesRecorder timeseries(
      &metrics, SimTime::Micros(obs.sample_every_us > 0 ? obs.sample_every_us : 100));

  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 4;  // 32 GPUs
  job.bandwidth = Bandwidth::Gbps(100);

  // Vanilla MXNet (FIFO transmission of whole tensors) and ByteScheduler
  // (priority scheduling + tensor partitioning + credits) are independent
  // simulations: evaluate them concurrently.
  const TunedParams tuned =
      DefaultTunedParams(job.model, job.setup.arch, job.setup.transport, job.bandwidth);
  SweepRunner runner;
  const std::vector<JobResult> results = runner.ParallelFor(2, [&](size_t i) {
    JobConfig run = job;
    if (i == 0) {
      run.mode = SchedMode::kVanilla;
    } else {
      run.mode = SchedMode::kByteScheduler;
      run.partition_bytes = tuned.partition_bytes;
      run.credit_bytes = tuned.credit_bytes;
      if (obs.enabled() && !chaos) {
        // Observe the ByteScheduler job (the interesting schedule). The
        // sinks are attached to exactly one job — a TraceRecorder is not
        // thread-safe — and read only after ParallelFor joins. With --chaos
        // the sinks go to the chaos rerun below instead, so its trace shows
        // the retry/retransmit activity.
        run.trace = obs.trace_path.empty() ? nullptr : &trace;
        // The time-series recorder samples metric handles, so it needs the
        // registry even when no snapshot file was requested.
        run.metrics =
            obs.metrics_path.empty() && !want_timeseries ? nullptr : &metrics;
        run.timeseries = want_timeseries ? &timeseries : nullptr;
      }
    }
    return RunTrainingJob(run);
  });
  const JobResult& baseline = results[0];
  const JobResult& scheduled = results[1];

  const double linear = LinearScalingSpeed(job.model, job.total_gpus());
  std::printf("VGG16 on %s, %d GPUs, %.0f Gbps\n", job.setup.name.c_str(), job.total_gpus(),
              job.bandwidth.ToGbps());
  std::printf("  baseline       : %8.1f images/sec (shard imbalance %.2fx)\n",
              baseline.samples_per_sec, baseline.shard_load_imbalance);
  std::printf("  bytescheduler  : %8.1f images/sec (partition %s, credit %s)\n",
              scheduled.samples_per_sec, FormatBytes(tuned.partition_bytes).c_str(),
              FormatBytes(tuned.credit_bytes).c_str());
  std::printf("  linear scaling : %8.1f images/sec\n", linear);
  std::printf("  speedup        : %+.1f%%\n",
              100.0 * (scheduled.samples_per_sec / baseline.samples_per_sec - 1.0));

  if (chaos) {
    job.mode = SchedMode::kByteScheduler;
    job.partition_bytes = tuned.partition_bytes;
    job.credit_bytes = tuned.credit_bytes;
    job.chaos = FaultPlanConfig::Chaos(chaos_seed);
    if (obs.enabled()) {
      job.trace = obs.trace_path.empty() ? nullptr : &trace;
      job.metrics =
          obs.metrics_path.empty() && !want_timeseries ? nullptr : &metrics;
      job.timeseries = want_timeseries ? &timeseries : nullptr;
    }
    const JobResult chaotic = RunTrainingJob(job);
    std::printf("  chaos (seed %llu): %8.1f images/sec (%+.1f%% vs fault-free)\n",
                static_cast<unsigned long long>(chaos_seed), chaotic.samples_per_sec,
                100.0 * (chaotic.samples_per_sec / scheduled.samples_per_sec - 1.0));
    std::printf("    %s\n", chaotic.fault_stats.DebugString().c_str());
  }

  if (volatility) {
    job.mode = SchedMode::kByteScheduler;
    job.partition_bytes = tuned.partition_bytes;
    job.credit_bytes = tuned.credit_bytes;
    // The obs sinks (if any) already observed the calm ByteScheduler job or
    // the chaos rerun above; each recorder attaches to exactly one run.
    job.trace = nullptr;
    job.metrics = nullptr;
    job.timeseries = nullptr;
    NetDynamicsConfig dyn;
    dyn.seed = volatility_seed;
    dyn.volatility_amplitude = 0.7;
    dyn.volatility_period = SimTime::Millis(2);
    dyn.cross_flows = 2;
    dyn.cross_load = 0.5;
    dyn.down_scale = 0.8;
    dyn.aimd.enable = true;
    job.dynamics = dyn;
    const JobResult stormy = RunTrainingJob(job);
    std::printf("  volatility (seed %llu): %8.1f images/sec (%+.1f%% vs calm fabric)\n",
                static_cast<unsigned long long>(volatility_seed), stormy.samples_per_sec,
                100.0 * (stormy.samples_per_sec / scheduled.samples_per_sec - 1.0));
    std::printf("    aimd: %llu decreases, %llu increases; %llu in-flight repaces\n",
                static_cast<unsigned long long>(stormy.rate_ctrl_decreases),
                static_cast<unsigned long long>(stormy.rate_ctrl_increases),
                static_cast<unsigned long long>(stormy.link_repaces));
  }

  if (!obs.trace_path.empty()) {
    std::ofstream out(obs.trace_path);
    trace.WriteChromeTrace(out);
    std::printf("  trace          : %s (%zu events; open in ui.perfetto.dev)\n",
                obs.trace_path.c_str(), trace.num_events());
  }
  if (!obs.metrics_path.empty()) {
    std::ofstream out(obs.metrics_path);
    metrics.Snapshot().WriteJson(out);
    std::printf("  metrics        : %s\n", obs.metrics_path.c_str());
  }
  if (want_timeseries) {
    std::ofstream out(obs.timeseries_path);
    timeseries.WriteCsv(out);
    std::printf("  timeseries     : %s (%llu ticks @ %lldus)\n", obs.timeseries_path.c_str(),
                static_cast<unsigned long long>(timeseries.total_ticks()),
                static_cast<long long>(obs.sample_every_us));
  }
  if (obs.enabled()) {
    std::printf("  inspect with   : obs_report --trace=%s --metrics=%s --timeseries=%s\n",
                obs.trace_path.empty() ? "<none>" : obs.trace_path.c_str(),
                obs.metrics_path.empty() ? "<none>" : obs.metrics_path.c_str(),
                obs.timeseries_path.empty() ? "<none>" : obs.timeseries_path.c_str());
  }
  return 0;
}
