// Quickstart: run one distributed training job with the vanilla framework
// and once more with ByteScheduler, and print the speedup — the library's
// headline capability in ~40 lines.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
//
// Pass `--chaos[=seed]` to rerun the ByteScheduler job under deterministic
// fault injection (message drops, latency spikes, stragglers, slow shards)
// and print the recovery statistics.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/model/zoo.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

int main(int argc, char** argv) {
  using namespace bsched;

  bool chaos = false;
  uint64_t chaos_seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strncmp(argv[i], "--chaos=", 8) == 0) {
      chaos = true;
      chaos_seed = std::strtoull(argv[i] + 8, nullptr, 10);
    }
  }

  JobConfig job;
  job.model = Vgg16();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 4;  // 32 GPUs
  job.bandwidth = Bandwidth::Gbps(100);

  // Vanilla MXNet: FIFO transmission of whole tensors.
  job.mode = SchedMode::kVanilla;
  const JobResult baseline = RunTrainingJob(job);

  // ByteScheduler: priority scheduling + tensor partitioning + credits.
  job.mode = SchedMode::kByteScheduler;
  const TunedParams tuned =
      DefaultTunedParams(job.model, job.setup.arch, job.setup.transport, job.bandwidth);
  job.partition_bytes = tuned.partition_bytes;
  job.credit_bytes = tuned.credit_bytes;
  const JobResult scheduled = RunTrainingJob(job);

  const double linear = LinearScalingSpeed(job.model, job.total_gpus());
  std::printf("VGG16 on %s, %d GPUs, %.0f Gbps\n", job.setup.name.c_str(), job.total_gpus(),
              job.bandwidth.ToGbps());
  std::printf("  baseline       : %8.1f images/sec (shard imbalance %.2fx)\n",
              baseline.samples_per_sec, baseline.shard_load_imbalance);
  std::printf("  bytescheduler  : %8.1f images/sec (partition %s, credit %s)\n",
              scheduled.samples_per_sec, FormatBytes(tuned.partition_bytes).c_str(),
              FormatBytes(tuned.credit_bytes).c_str());
  std::printf("  linear scaling : %8.1f images/sec\n", linear);
  std::printf("  speedup        : %+.1f%%\n",
              100.0 * (scheduled.samples_per_sec / baseline.samples_per_sec - 1.0));

  if (chaos) {
    job.chaos = FaultPlanConfig::Chaos(chaos_seed);
    const JobResult chaotic = RunTrainingJob(job);
    std::printf("  chaos (seed %llu): %8.1f images/sec (%+.1f%% vs fault-free)\n",
                static_cast<unsigned long long>(chaos_seed), chaotic.samples_per_sec,
                100.0 * (chaotic.samples_per_sec / scheduled.samples_per_sec - 1.0));
    std::printf("    %s\n", chaotic.fault_stats.DebugString().c_str());
  }
  return 0;
}
