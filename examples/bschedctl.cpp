// bschedctl: command-line experiment runner. Configure a distributed
// training job entirely from flags, run it, and optionally dump a Chrome
// trace of the compute/communication overlap.
//
// Examples:
//   ./build/examples/bschedctl --model vgg16 --setup mxnet-ps-rdma \
//       --machines 4 --gbps 100 --mode bytescheduler
//   ./build/examples/bschedctl --model transformer --setup pytorch-nccl-tcp \
//       --mode baseline --trace /tmp/trace.json
//   ./build/examples/bschedctl --model resnet50 --mode bytescheduler \
//       --partition-kb 2048 --credit-kb 10240 --async
#include <cstdio>
#include <fstream>
#include <string>

#include "src/common/flags.h"
#include "src/common/trace.h"
#include "src/model/zoo.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

using namespace bsched;

namespace {

constexpr char kUsage[] = R"(usage: bschedctl [flags]
  --model      vgg16|vgg19|alexnet|resnet50|transformer   (default vgg16)
  --setup      mxnet-ps-tcp|mxnet-ps-rdma|tf-ps-tcp|mxnet-nccl-rdma|pytorch-nccl-tcp
  --mode       baseline|bytescheduler|p3                  (default bytescheduler)
  --machines   worker machines, 8 GPUs each               (default 4)
  --gbps       network bandwidth in Gbps                  (default 100)
  --partition-kb / --credit-kb   scheduler knobs (default: auto heuristic)
  --async      asynchronous PS training
  --iters      measured iterations                        (default 5)
  --trace      path to write a Chrome trace JSON
)";

Setup SetupByName(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "mxnet-ps-tcp") {
    return Setup::MxnetPsTcp();
  }
  if (name == "mxnet-ps-rdma") {
    return Setup::MxnetPsRdma();
  }
  if (name == "tf-ps-tcp") {
    return Setup::TensorFlowPsTcp();
  }
  if (name == "mxnet-nccl-rdma") {
    return Setup::MxnetNcclRdma();
  }
  if (name == "pytorch-nccl-tcp") {
    return Setup::PyTorchNcclTcp();
  }
  *ok = false;
  return Setup{};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("help") || !flags.errors().empty()) {
    std::fputs(kUsage, stderr);
    return flags.Has("help") ? 0 : 1;
  }

  JobConfig job;
  job.model = ModelByName(flags.GetString("model", "vgg16"));
  bool setup_ok = false;
  job.setup = SetupByName(flags.GetString("setup", "mxnet-ps-rdma"), &setup_ok);
  if (!setup_ok) {
    std::fprintf(stderr, "unknown --setup\n%s", kUsage);
    return 1;
  }
  job.num_machines = static_cast<int>(flags.GetInt("machines", 4));
  job.bandwidth = Bandwidth::Gbps(flags.GetDouble("gbps", 100));
  job.measure_iters = static_cast<int>(flags.GetInt("iters", 5));
  job.ps_async = flags.GetBool("async", false);

  const std::string mode = flags.GetString("mode", "bytescheduler");
  if (mode == "baseline") {
    job.mode = SchedMode::kVanilla;
  } else if (mode == "p3") {
    job.mode = SchedMode::kP3;
  } else if (mode == "bytescheduler") {
    job.mode = SchedMode::kByteScheduler;
    const TunedParams tuned =
        DefaultTunedParams(job.model, job.setup.arch, job.setup.transport, job.bandwidth);
    job.partition_bytes = KiB(flags.GetInt("partition-kb", tuned.partition_bytes / 1024));
    job.credit_bytes = KiB(flags.GetInt("credit-kb", tuned.credit_bytes / 1024));
  } else {
    std::fprintf(stderr, "unknown --mode\n%s", kUsage);
    return 1;
  }

  TraceRecorder trace;
  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    job.trace = &trace;
  }

  const JobResult result = RunTrainingJob(job);
  std::printf("model           : %s (%s params)\n", job.model.name.c_str(),
              FormatBytes(job.model.TotalParamBytes()).c_str());
  std::printf("setup           : %s, %d machines (%d GPUs), %.0f Gbps\n",
              job.setup.name.c_str(), job.num_machines, job.total_gpus(),
              job.bandwidth.ToGbps());
  std::printf("scheduler       : %s", ToString(job.mode));
  if (job.mode == SchedMode::kByteScheduler) {
    std::printf(" (partition %s, credit %s)", FormatBytes(job.partition_bytes).c_str(),
                FormatBytes(job.credit_bytes).c_str());
  }
  std::printf("\n");
  std::printf("iteration time  : %s\n", result.avg_iter_time.ToString().c_str());
  std::printf("training speed  : %.1f %s/sec (%.1f%% of linear scaling)\n",
              result.samples_per_sec, job.model.sample_unit.c_str(),
              100.0 * result.samples_per_sec / PaperLinearScaling(job));
  if (job.setup.arch == ArchType::kPs) {
    std::printf("shard imbalance : %.2fx\n", result.shard_load_imbalance);
  }
  std::printf("simulator events: %llu\n", static_cast<unsigned long long>(result.sim_events));

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace.WriteChromeTrace(out);
    std::printf("trace           : %s (%zu events; open in chrome://tracing)\n",
                trace_path.c_str(), trace.num_events());
  }
  return 0;
}
