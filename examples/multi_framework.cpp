// Genericity demo: the same scheduler Core accelerates every combination of
// framework engine (declarative/imperative, with or without a global
// barrier), gradient-synchronization architecture (PS / ring all-reduce) and
// transport (TCP / RDMA) — the paper's central claim. Runs VGG16 across the
// five evaluated setups and reports speed-ups.
//
// Run: ./build/examples/multi_framework
#include <cstdio>
#include <vector>

#include "src/model/zoo.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"

int main() {
  using namespace bsched;

  const std::vector<Setup> setups = {Setup::MxnetPsTcp(), Setup::MxnetPsRdma(),
                                     Setup::TensorFlowPsTcp(), Setup::MxnetNcclRdma(),
                                     Setup::PyTorchNcclTcp()};
  std::printf("VGG16, 32 GPUs, 100 Gbps: one scheduler, five framework/comm stacks\n\n");
  std::printf("%-20s %-10s %-10s %-10s %-14s %s\n", "setup", "engine", "barrier", "arch",
              "baseline", "bytescheduler");
  for (const Setup& setup : setups) {
    JobConfig job;
    job.model = Vgg16();
    job.setup = setup;
    job.num_machines = 4;
    job.bandwidth = Bandwidth::Gbps(100);

    job.mode = SchedMode::kVanilla;
    const double baseline = RunTrainingJob(job).samples_per_sec;

    job.mode = SchedMode::kByteScheduler;
    const TunedParams tuned =
        DefaultTunedParams(job.model, setup.arch, setup.transport, job.bandwidth);
    job.partition_bytes = tuned.partition_bytes;
    job.credit_bytes = tuned.credit_bytes;
    const double sched = RunTrainingJob(job).samples_per_sec;

    std::printf("%-20s %-10s %-10s %-10s %-14.0f %.0f (%+.0f%%)\n", setup.name.c_str(),
                IsImperative(setup.framework) ? "imperative" : "declarative",
                HasGlobalBarrier(setup.framework) ? "yes" : "no", ToString(setup.arch), baseline,
                sched, 100.0 * (sched / baseline - 1.0));
  }
  std::printf("\nEvery row uses the identical Core (Algorithm 1); only the thin plugin\n"
              "wiring (Dependency Proxies, hooks, barrier crossing) differs per engine.\n");
  return 0;
}
