// Auto-tuning walkthrough: tune ByteScheduler's partition and credit sizes
// for a Transformer job with Bayesian Optimization, print the trial trace,
// and compare against the untuned heuristic and a mis-tuned configuration.
//
// Run: ./build/examples/autotune_cluster
#include <cstdio>

#include "src/model/zoo.h"
#include "src/runtime/cluster.h"
#include "src/runtime/training_job.h"
#include "src/tuning/auto_tuner.h"

int main() {
  using namespace bsched;

  JobConfig job;
  job.model = Transformer();
  job.setup = Setup::MxnetPsRdma();
  job.num_machines = 4;
  job.bandwidth = Bandwidth::Gbps(25);

  AutoTunerOptions options;
  options.max_trials = 10;
  options.seed = 7;
  AutoTuner tuner(job, options);
  const AutoTuner::Result result = tuner.TuneWithBo();

  std::printf("Bayesian-Optimization auto-tuning: Transformer, %s, %.0f Gbps, %d GPUs\n\n",
              job.setup.name.c_str(), job.bandwidth.ToGbps(), job.total_gpus());
  std::printf("%-6s %-14s %-12s %s\n", "trial", "partition", "credit", "tokens/sec");
  for (size_t i = 0; i < result.trials.size(); ++i) {
    const AutoTuner::Trial& t = result.trials[i];
    std::printf("%-6zu %-14s %-12s %.0f\n", i + 1, FormatBytes(t.partition_bytes).c_str(),
                FormatBytes(t.credit_bytes).c_str(), t.speed);
  }
  std::printf("\nbest: partition %s, credit %s -> %.0f tokens/sec\n",
              FormatBytes(result.best.partition_bytes).c_str(),
              FormatBytes(result.best.credit_bytes).c_str(), result.best_speed);
  std::printf("virtual tuning cost: %.1f s (profiling + PS restarts)\n\n",
              result.tuning_cost_sec);

  // Compare: heuristic defaults and a deliberately bad configuration.
  job.mode = SchedMode::kByteScheduler;
  const TunedParams heuristic =
      DefaultTunedParams(job.model, job.setup.arch, job.setup.transport, job.bandwidth);
  job.partition_bytes = heuristic.partition_bytes;
  job.credit_bytes = heuristic.credit_bytes;
  std::printf("heuristic defaults (%s, %s): %.0f tokens/sec\n",
              FormatBytes(heuristic.partition_bytes).c_str(),
              FormatBytes(heuristic.credit_bytes).c_str(), RunTrainingJob(job).samples_per_sec);

  job.partition_bytes = KiB(64);
  job.credit_bytes = KiB(64);
  std::printf("mis-tuned (64KiB stop-and-wait):      %.0f tokens/sec\n",
              RunTrainingJob(job).samples_per_sec);
  return 0;
}
