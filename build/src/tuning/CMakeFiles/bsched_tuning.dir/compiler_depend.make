# Empty compiler generated dependencies file for bsched_tuning.
# This may be replaced when dependencies are built.
