file(REMOVE_RECURSE
  "libbsched_tuning.a"
)
