file(REMOVE_RECURSE
  "CMakeFiles/bsched_tuning.dir/auto_tuner.cc.o"
  "CMakeFiles/bsched_tuning.dir/auto_tuner.cc.o.d"
  "CMakeFiles/bsched_tuning.dir/gaussian_process.cc.o"
  "CMakeFiles/bsched_tuning.dir/gaussian_process.cc.o.d"
  "CMakeFiles/bsched_tuning.dir/search.cc.o"
  "CMakeFiles/bsched_tuning.dir/search.cc.o.d"
  "libbsched_tuning.a"
  "libbsched_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
