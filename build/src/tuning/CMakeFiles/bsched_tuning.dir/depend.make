# Empty dependencies file for bsched_tuning.
# This may be replaced when dependencies are built.
