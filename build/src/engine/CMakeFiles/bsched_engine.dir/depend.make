# Empty dependencies file for bsched_engine.
# This may be replaced when dependencies are built.
