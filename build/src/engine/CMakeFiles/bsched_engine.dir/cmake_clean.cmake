file(REMOVE_RECURSE
  "CMakeFiles/bsched_engine.dir/dag_engine.cc.o"
  "CMakeFiles/bsched_engine.dir/dag_engine.cc.o.d"
  "CMakeFiles/bsched_engine.dir/imperative_engine.cc.o"
  "CMakeFiles/bsched_engine.dir/imperative_engine.cc.o.d"
  "CMakeFiles/bsched_engine.dir/proxy.cc.o"
  "CMakeFiles/bsched_engine.dir/proxy.cc.o.d"
  "libbsched_engine.a"
  "libbsched_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
