file(REMOVE_RECURSE
  "libbsched_engine.a"
)
