file(REMOVE_RECURSE
  "libbsched_runtime.a"
)
