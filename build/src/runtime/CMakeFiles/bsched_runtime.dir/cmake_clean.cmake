file(REMOVE_RECURSE
  "CMakeFiles/bsched_runtime.dir/cluster.cc.o"
  "CMakeFiles/bsched_runtime.dir/cluster.cc.o.d"
  "CMakeFiles/bsched_runtime.dir/training_job.cc.o"
  "CMakeFiles/bsched_runtime.dir/training_job.cc.o.d"
  "libbsched_runtime.a"
  "libbsched_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
