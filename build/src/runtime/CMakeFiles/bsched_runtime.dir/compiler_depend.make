# Empty compiler generated dependencies file for bsched_runtime.
# This may be replaced when dependencies are built.
