file(REMOVE_RECURSE
  "CMakeFiles/bsched_net.dir/link.cc.o"
  "CMakeFiles/bsched_net.dir/link.cc.o.d"
  "CMakeFiles/bsched_net.dir/transport.cc.o"
  "CMakeFiles/bsched_net.dir/transport.cc.o.d"
  "libbsched_net.a"
  "libbsched_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
