# Empty dependencies file for bsched_net.
# This may be replaced when dependencies are built.
