file(REMOVE_RECURSE
  "libbsched_net.a"
)
