# Empty compiler generated dependencies file for bsched_net.
# This may be replaced when dependencies are built.
