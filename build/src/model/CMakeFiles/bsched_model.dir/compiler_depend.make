# Empty compiler generated dependencies file for bsched_model.
# This may be replaced when dependencies are built.
