file(REMOVE_RECURSE
  "libbsched_model.a"
)
