file(REMOVE_RECURSE
  "CMakeFiles/bsched_model.dir/profile.cc.o"
  "CMakeFiles/bsched_model.dir/profile.cc.o.d"
  "CMakeFiles/bsched_model.dir/zoo.cc.o"
  "CMakeFiles/bsched_model.dir/zoo.cc.o.d"
  "libbsched_model.a"
  "libbsched_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
