file(REMOVE_RECURSE
  "libbsched_common.a"
)
