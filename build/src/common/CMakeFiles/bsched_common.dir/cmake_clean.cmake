file(REMOVE_RECURSE
  "CMakeFiles/bsched_common.dir/flags.cc.o"
  "CMakeFiles/bsched_common.dir/flags.cc.o.d"
  "CMakeFiles/bsched_common.dir/rng.cc.o"
  "CMakeFiles/bsched_common.dir/rng.cc.o.d"
  "CMakeFiles/bsched_common.dir/stats.cc.o"
  "CMakeFiles/bsched_common.dir/stats.cc.o.d"
  "CMakeFiles/bsched_common.dir/table.cc.o"
  "CMakeFiles/bsched_common.dir/table.cc.o.d"
  "CMakeFiles/bsched_common.dir/trace.cc.o"
  "CMakeFiles/bsched_common.dir/trace.cc.o.d"
  "CMakeFiles/bsched_common.dir/units.cc.o"
  "CMakeFiles/bsched_common.dir/units.cc.o.d"
  "libbsched_common.a"
  "libbsched_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
