# Empty compiler generated dependencies file for bsched_common.
# This may be replaced when dependencies are built.
