# Empty compiler generated dependencies file for bsched_comm.
# This may be replaced when dependencies are built.
