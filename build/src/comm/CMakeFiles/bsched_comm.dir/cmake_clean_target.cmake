file(REMOVE_RECURSE
  "libbsched_comm.a"
)
