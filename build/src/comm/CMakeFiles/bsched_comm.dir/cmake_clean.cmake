file(REMOVE_RECURSE
  "CMakeFiles/bsched_comm.dir/allreduce_backend.cc.o"
  "CMakeFiles/bsched_comm.dir/allreduce_backend.cc.o.d"
  "CMakeFiles/bsched_comm.dir/ps_backend.cc.o"
  "CMakeFiles/bsched_comm.dir/ps_backend.cc.o.d"
  "libbsched_comm.a"
  "libbsched_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
