# Empty dependencies file for bsched_core_types.
# This may be replaced when dependencies are built.
