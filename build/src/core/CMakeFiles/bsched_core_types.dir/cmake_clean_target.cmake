file(REMOVE_RECURSE
  "libbsched_core_types.a"
)
