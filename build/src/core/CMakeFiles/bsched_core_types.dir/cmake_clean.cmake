file(REMOVE_RECURSE
  "CMakeFiles/bsched_core_types.dir/comm_task.cc.o"
  "CMakeFiles/bsched_core_types.dir/comm_task.cc.o.d"
  "libbsched_core_types.a"
  "libbsched_core_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_core_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
