file(REMOVE_RECURSE
  "CMakeFiles/bsched_core.dir/scheduler_core.cc.o"
  "CMakeFiles/bsched_core.dir/scheduler_core.cc.o.d"
  "libbsched_core.a"
  "libbsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
