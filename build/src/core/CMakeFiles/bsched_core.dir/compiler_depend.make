# Empty compiler generated dependencies file for bsched_core.
# This may be replaced when dependencies are built.
