file(REMOVE_RECURSE
  "libbsched_core.a"
)
