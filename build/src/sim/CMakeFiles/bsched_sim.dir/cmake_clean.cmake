file(REMOVE_RECURSE
  "CMakeFiles/bsched_sim.dir/resource.cc.o"
  "CMakeFiles/bsched_sim.dir/resource.cc.o.d"
  "CMakeFiles/bsched_sim.dir/simulator.cc.o"
  "CMakeFiles/bsched_sim.dir/simulator.cc.o.d"
  "libbsched_sim.a"
  "libbsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
