file(REMOVE_RECURSE
  "../bench/extra_models"
  "../bench/extra_models.pdb"
  "CMakeFiles/extra_models.dir/extra_models.cc.o"
  "CMakeFiles/extra_models.dir/extra_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
