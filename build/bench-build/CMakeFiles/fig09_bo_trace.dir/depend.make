# Empty dependencies file for fig09_bo_trace.
# This may be replaced when dependencies are built.
