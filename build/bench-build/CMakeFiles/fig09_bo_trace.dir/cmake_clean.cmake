file(REMOVE_RECURSE
  "../bench/fig09_bo_trace"
  "../bench/fig09_bo_trace.pdb"
  "CMakeFiles/fig09_bo_trace.dir/fig09_bo_trace.cc.o"
  "CMakeFiles/fig09_bo_trace.dir/fig09_bo_trace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
