# Empty dependencies file for fig10_vgg16.
# This may be replaced when dependencies are built.
