file(REMOVE_RECURSE
  "../bench/fig10_vgg16"
  "../bench/fig10_vgg16.pdb"
  "CMakeFiles/fig10_vgg16.dir/fig10_vgg16.cc.o"
  "CMakeFiles/fig10_vgg16.dir/fig10_vgg16.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vgg16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
