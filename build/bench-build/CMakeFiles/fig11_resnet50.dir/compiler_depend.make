# Empty compiler generated dependencies file for fig11_resnet50.
# This may be replaced when dependencies are built.
