file(REMOVE_RECURSE
  "../bench/fig11_resnet50"
  "../bench/fig11_resnet50.pdb"
  "CMakeFiles/fig11_resnet50.dir/fig11_resnet50.cc.o"
  "CMakeFiles/fig11_resnet50.dir/fig11_resnet50.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_resnet50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
