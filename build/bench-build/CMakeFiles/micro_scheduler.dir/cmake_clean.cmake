file(REMOVE_RECURSE
  "../bench/micro_scheduler"
  "../bench/micro_scheduler.pdb"
  "CMakeFiles/micro_scheduler.dir/micro_scheduler.cc.o"
  "CMakeFiles/micro_scheduler.dir/micro_scheduler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
