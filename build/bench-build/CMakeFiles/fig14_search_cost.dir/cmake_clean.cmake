file(REMOVE_RECURSE
  "../bench/fig14_search_cost"
  "../bench/fig14_search_cost.pdb"
  "CMakeFiles/fig14_search_cost.dir/fig14_search_cost.cc.o"
  "CMakeFiles/fig14_search_cost.dir/fig14_search_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_search_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
