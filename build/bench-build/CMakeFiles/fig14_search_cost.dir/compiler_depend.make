# Empty compiler generated dependencies file for fig14_search_cost.
# This may be replaced when dependencies are built.
