# Empty compiler generated dependencies file for fig04_partition_credit.
# This may be replaced when dependencies are built.
