file(REMOVE_RECURSE
  "../bench/fig04_partition_credit"
  "../bench/fig04_partition_credit.pdb"
  "CMakeFiles/fig04_partition_credit.dir/fig04_partition_credit.cc.o"
  "CMakeFiles/fig04_partition_credit.dir/fig04_partition_credit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_partition_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
