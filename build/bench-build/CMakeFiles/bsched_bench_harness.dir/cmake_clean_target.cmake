file(REMOVE_RECURSE
  "libbsched_bench_harness.a"
)
