# Empty dependencies file for bsched_bench_harness.
# This may be replaced when dependencies are built.
