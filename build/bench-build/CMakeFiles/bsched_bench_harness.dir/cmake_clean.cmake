file(REMOVE_RECURSE
  "CMakeFiles/bsched_bench_harness.dir/harness.cc.o"
  "CMakeFiles/bsched_bench_harness.dir/harness.cc.o.d"
  "libbsched_bench_harness.a"
  "libbsched_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
