# Empty dependencies file for fig02_contrived.
# This may be replaced when dependencies are built.
