file(REMOVE_RECURSE
  "../bench/fig02_contrived"
  "../bench/fig02_contrived.pdb"
  "CMakeFiles/fig02_contrived.dir/fig02_contrived.cc.o"
  "CMakeFiles/fig02_contrived.dir/fig02_contrived.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_contrived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
