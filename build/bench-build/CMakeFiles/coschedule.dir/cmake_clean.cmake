file(REMOVE_RECURSE
  "../bench/coschedule"
  "../bench/coschedule.pdb"
  "CMakeFiles/coschedule.dir/coschedule.cc.o"
  "CMakeFiles/coschedule.dir/coschedule.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coschedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
