# Empty compiler generated dependencies file for fig12_transformer.
# This may be replaced when dependencies are built.
