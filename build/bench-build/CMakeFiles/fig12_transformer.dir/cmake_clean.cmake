file(REMOVE_RECURSE
  "../bench/fig12_transformer"
  "../bench/fig12_transformer.pdb"
  "CMakeFiles/fig12_transformer.dir/fig12_transformer.cc.o"
  "CMakeFiles/fig12_transformer.dir/fig12_transformer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
