# Empty dependencies file for table1_best_params.
# This may be replaced when dependencies are built.
