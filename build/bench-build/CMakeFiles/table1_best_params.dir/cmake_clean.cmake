file(REMOVE_RECURSE
  "../bench/table1_best_params"
  "../bench/table1_best_params.pdb"
  "CMakeFiles/table1_best_params.dir/table1_best_params.cc.o"
  "CMakeFiles/table1_best_params.dir/table1_best_params.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_best_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
