# Empty compiler generated dependencies file for async_ps.
# This may be replaced when dependencies are built.
