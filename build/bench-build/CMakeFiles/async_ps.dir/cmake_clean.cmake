file(REMOVE_RECURSE
  "../bench/async_ps"
  "../bench/async_ps.pdb"
  "CMakeFiles/async_ps.dir/async_ps.cc.o"
  "CMakeFiles/async_ps.dir/async_ps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
