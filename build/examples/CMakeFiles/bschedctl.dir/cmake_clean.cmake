file(REMOVE_RECURSE
  "CMakeFiles/bschedctl.dir/bschedctl.cpp.o"
  "CMakeFiles/bschedctl.dir/bschedctl.cpp.o.d"
  "bschedctl"
  "bschedctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bschedctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
