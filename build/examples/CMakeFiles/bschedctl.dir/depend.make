# Empty dependencies file for bschedctl.
# This may be replaced when dependencies are built.
