# Empty compiler generated dependencies file for multi_framework.
# This may be replaced when dependencies are built.
