file(REMOVE_RECURSE
  "CMakeFiles/multi_framework.dir/multi_framework.cpp.o"
  "CMakeFiles/multi_framework.dir/multi_framework.cpp.o.d"
  "multi_framework"
  "multi_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
