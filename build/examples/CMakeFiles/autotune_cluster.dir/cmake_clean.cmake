file(REMOVE_RECURSE
  "CMakeFiles/autotune_cluster.dir/autotune_cluster.cpp.o"
  "CMakeFiles/autotune_cluster.dir/autotune_cluster.cpp.o.d"
  "autotune_cluster"
  "autotune_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
