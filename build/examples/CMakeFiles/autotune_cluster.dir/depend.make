# Empty dependencies file for autotune_cluster.
# This may be replaced when dependencies are built.
