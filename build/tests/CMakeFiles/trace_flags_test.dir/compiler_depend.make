# Empty compiler generated dependencies file for trace_flags_test.
# This may be replaced when dependencies are built.
