file(REMOVE_RECURSE
  "CMakeFiles/trace_flags_test.dir/trace_flags_test.cc.o"
  "CMakeFiles/trace_flags_test.dir/trace_flags_test.cc.o.d"
  "trace_flags_test"
  "trace_flags_test.pdb"
  "trace_flags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
