
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/bsched_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/bsched_model.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/bsched_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/bsched_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsched_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bsched_core_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
