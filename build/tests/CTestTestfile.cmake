# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_test[1]_include.cmake")
include("/root/repo/build/tests/theory_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_flags_test[1]_include.cmake")
include("/root/repo/build/tests/coschedule_test[1]_include.cmake")
